"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` with build isolation) cannot build. This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` work; all
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
