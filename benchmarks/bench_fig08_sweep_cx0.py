"""Figure 8: 3q TFIM, Ourense model, CNOT error pinned to zero."""

from conftest import write_result

from repro.experiments import fig08


def test_fig08(benchmark, results_dir):
    result = benchmark.pedantic(fig08, rounds=1, iterations=1)
    write_result(results_dir, "fig08", result.rows())

    # Shape: without CNOT noise, depth is not the deciding factor — the
    # best circuits are allowed to be deep.
    assert max(result.best_depth_series()) >= 3
    # Residual (1q/readout/thermal) noise still separates ref from ideal.
    assert result.reference_error() > 0.0
