"""Figure 12: 3q TFIM on (emulated) Manhattan hardware."""

from conftest import write_result

from repro.experiments import fig12


def test_fig12(benchmark, results_dir):
    result = benchmark.pedantic(fig12, rounds=1, iterations=1)
    write_result(results_dir, "fig12", result.rows())

    # Shape: almost all approximations beat the reference on hardware.
    assert result.fraction_beating_reference() > 0.55
    assert result.improvement() > 0.3
