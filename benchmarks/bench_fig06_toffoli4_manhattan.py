"""Figure 6: 4q Toffoli JS distance vs CNOT count, Manhattan model."""

from conftest import write_result

from repro.experiments import fig06
from repro.metrics import UNIFORM_NOISE_JS


def test_fig06(benchmark, results_dir):
    result = benchmark.pedantic(fig06, rounds=1, iterations=1)
    write_result(results_dir, "fig06", result.rows())

    # Shape: low-depth approximations outperform the reference.
    best = result.best()
    assert best.value < result.reference.value
    assert best.cnot_count < result.reference.cnot_count
    # Shape: the noise floor is the paper's 0.465 line.
    assert abs(result.noise_floor - UNIFORM_NOISE_JS) < 1e-12
    # Shape: some deep approximations perform worse than the reference.
    assert any(p.value > result.reference.value for p in result.points)
