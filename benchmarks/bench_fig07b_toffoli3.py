"""The 3q Toffoli negative result (paper §6.1, figure omitted).

"the 3-qubit approximate circuits performed poorly compared to the
optimized hand-crafted Toffoli gate commonly used, which uses only 6
CNOTs" — Observation 4's flip side.
"""

from conftest import write_result

from repro.experiments import fig07b


def test_fig07b(benchmark, results_dir):
    result = benchmark.pedantic(fig07b, rounds=1, iterations=1)
    write_result(results_dir, "fig07b", result.rows())

    assert result.reference.cnot_count == 6
    # Shape: approximations do NOT beat the short hand-crafted reference.
    assert result.fraction_better_than_reference() < 0.25
