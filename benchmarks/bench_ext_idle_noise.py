"""Extension: schedule-aware idle decoherence strengthens the depth penalty.

The paper's first noise source is decoherence over program runtime. With
idle windows materialised as ``delay`` gates (thermal relaxation while
waiting), deep reference circuits pay an *additional* duration cost that
short approximations avoid — the approximation advantage should not
shrink.
"""

import numpy as np
from conftest import write_result

from repro.apps.tfim import TFIMSpec, tfim_step_circuit
from repro.experiments import NoiseModelBackend, get_scale
from repro.experiments.pools import tfim_pools
from repro.noise import get_device
from repro.sim import StatevectorSimulator, average_magnetization
from repro.transpile import insert_idle_delays, merge_single_qubit_gates, to_basis_gates


def _study():
    scale = get_scale()
    spec = TFIMSpec(3)
    backend = NoiseModelBackend(get_device("toronto").noise_model(list(range(3))))
    ideal_sim = StatevectorSimulator()
    pools = tfim_pools(3, scale=scale, spec=spec)

    def run(circuit, idle):
        prepared = merge_single_qubit_gates(to_basis_gates(circuit))
        if idle:
            prepared = insert_idle_delays(prepared)
        return average_magnetization(backend.run(prepared))

    rows = ["[ext:idle-noise] 3q TFIM with schedule-aware idle decoherence"]
    improvements = {}
    for idle in (False, True):
        ref_errors, best_errors = [], []
        for step, pool in pools:
            reference = tfim_step_circuit(spec, step)
            ideal = average_magnetization(
                ideal_sim.run(to_basis_gates(reference)).probabilities()
            )
            ref_errors.append(abs(run(reference, idle) - ideal))
            best_errors.append(
                min(abs(run(c.circuit, idle) - ideal) for c in pool)
            )
        ref = float(np.mean(ref_errors))
        best = float(np.mean(best_errors))
        improvements[idle] = 1.0 - best / ref
        rows.append(
            f"idle={str(idle):<5} ref_err={ref:.4f} best_err={best:.4f} "
            f"improvement={improvements[idle]:.1%}"
        )
    return improvements, "\n".join(rows)


def test_idle_noise_extension(benchmark, results_dir):
    improvements, text = benchmark.pedantic(_study, rounds=1, iterations=1)
    write_result(results_dir, "ext_idle_noise", text)

    # Shape: the approximation advantage survives (and typically grows)
    # when idle decoherence is modelled.
    assert improvements[True] > 0.3
    assert improvements[True] >= improvements[False] - 0.1
