"""Figure 19: 4q Toffoli on Toronto hardware, automatic level-3 mapping."""

from conftest import write_result

from repro.experiments import fig17, fig18, fig19


def test_fig19(benchmark, results_dir):
    result = benchmark.pedantic(fig19, rounds=1, iterations=1)
    write_result(results_dir, "fig19", result.rows())

    best = fig17().best().value
    worst = fig18().best().value
    auto = result.best().value
    # Shape: the automatic mapping lands between the manual extremes
    # (within shot-noise tolerance), with fewer circuits below the
    # reference than the best manual mapping.
    assert auto <= worst + 0.05
    assert auto >= best - 0.05
    assert (
        result.fraction_better_than_reference()
        <= fig17().fraction_better_than_reference() + 0.05
    )
