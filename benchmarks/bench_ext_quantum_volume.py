"""Extension (paper §6.5): quantum volume of the emulated backends."""

from conftest import write_result

from repro.experiments import IdealBackend, NoiseModelBackend
from repro.hardware import achieved_quantum_volume, measure_quantum_volume
from repro.noise import get_device


def _study():
    rows = []
    outcomes = {}
    for label, backend in (
        ("ideal", IdealBackend()),
        ("ourense", NoiseModelBackend(get_device("ourense").noise_model())),
        (
            "ourense_x10",
            NoiseModelBackend(get_device("ourense").noise_model().scaled(10.0)),
        ),
    ):
        results = measure_quantum_volume(
            backend, widths=(2, 3), circuits_per_width=4
        )
        qv = achieved_quantum_volume(results)
        outcomes[label] = qv
        hops = ", ".join(
            f"m={w}: HOP {r.mean_hop:.3f}" for w, r in results.items()
        )
        rows.append(f"{label:<12} {hops} -> QV {qv}")
    return outcomes, "\n".join(["[ext:quantum-volume]"] + rows)


def test_quantum_volume(benchmark, results_dir):
    outcomes, text = benchmark.pedantic(_study, rounds=1, iterations=1)
    write_result(results_dir, "ext_quantum_volume", text)

    # Shape: QV degrades monotonically with noise.
    assert outcomes["ideal"] >= outcomes["ourense"] >= outcomes["ourense_x10"]
    assert outcomes["ideal"] == 8
    assert outcomes["ourense_x10"] == 1
