"""Figure 16: the Toronto calibration/noise report with mapping regions."""

from conftest import write_result

from repro.experiments import fig16
from repro.hardware import paper_mappings
from repro.noise import get_device


def test_fig16(benchmark, results_dir):
    report = benchmark.pedantic(fig16, rounds=1, iterations=1)
    write_result(results_dir, "fig16", report)

    device = get_device("toronto")
    assert f"device toronto ({device.num_qubits} qubits)" in report
    # Every coupler appears with its error.
    assert report.count("-") >= len(device.edges)
    # The four mapping rings are reported.
    for name in paper_mappings("toronto"):
        assert name in report
