"""Benchmark: compiled + batched density-matrix engine vs the serial path.

Not a paper figure — tracks the perf claim of the batched dense engine on
the paper's §6.2 sweep shape (figs. 8–10): the same TFIM circuit pool
re-simulated under every ``PAPER_SWEEP_LEVELS`` CNOT-error level of the
Ourense model. The serial baseline is the untouched
``DensityMatrixSimulator`` loop (one full propagation per
``(circuit, level)`` pair); the batched path compiles each circuit once
and propagates all levels per pass via ``sweep_pool_distributions``.

Run directly to (re)generate ``BENCH_sim_batched.json`` at the repository
root so later changes can be compared against it::

    PYTHONPATH=src python benchmarks/bench_batched_sim.py          # full
    PYTHONPATH=src python benchmarks/bench_batched_sim.py --quick  # smoke

Under pytest the quick measurement runs as an assertion: >= 4x speedup
with <= 1e-12 max abs difference in every final distribution.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

_ROOT = Path(__file__).resolve().parent.parent
_OUT = _ROOT / "BENCH_sim_batched.json"

_QUBITS = [0, 1, 2]
_DEVICE = "ourense"

#: Acceptance floor for the batched engine on the sweep workload.
SPEEDUP_FLOOR = 4.0
IDENTITY_ATOL = 1e-12


def _workload(max_circuits=None):
    """The fig08–10 pool: every 3q TFIM approximate circuit, all steps."""
    from repro.experiments import tfim_pools
    from repro.experiments.scale import get_scale
    from repro.utils.cache import seed_cache

    seed_cache(_ROOT / "tests" / "fixtures" / "repro_cache")
    scale = get_scale()
    circuits = [
        c.circuit.without_measurements()
        for _, pool in tfim_pools(3, scale=scale)
        for c in pool
    ]
    if max_circuits is not None:
        circuits = circuits[:max_circuits]
    return scale.name, circuits


def bench_sweep(max_circuits=None) -> dict:
    """Serial vs batched wall-clock on the 5-level CNOT sweep workload."""
    from repro.noise import PAPER_SWEEP_LEVELS, cnot_error_sweep
    from repro.noise.sweep import sweep_pool_distributions
    from repro.sim import DensityMatrixSimulator

    scale_name, circuits = _workload(max_circuits)
    models = cnot_error_sweep(_DEVICE, PAPER_SWEEP_LEVELS, qubits=_QUBITS)

    # Warm every cache both paths share (gate matrices, channel superops,
    # compiled noise lookups) outside the timers.
    warm = circuits[:1]
    for model in models:
        DensityMatrixSimulator(model).probabilities(warm[0])
    sweep_pool_distributions(
        warm, _DEVICE, PAPER_SWEEP_LEVELS, qubits=_QUBITS
    )

    started = time.perf_counter()
    serial = np.stack(
        [
            [
                DensityMatrixSimulator(model).probabilities(circuit)
                for circuit in circuits
            ]
            for model in models
        ]
    )
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = sweep_pool_distributions(
        circuits, _DEVICE, PAPER_SWEEP_LEVELS, qubits=_QUBITS
    )
    batched_seconds = time.perf_counter() - started

    max_abs_diff = float(np.max(np.abs(serial - batched)))
    pairs = len(circuits) * len(models)
    return {
        "workload": "fig08-10 CNOT sweep (3q TFIM pool)",
        "scale": scale_name,
        "device": _DEVICE,
        "levels": list(PAPER_SWEEP_LEVELS),
        "circuits": len(circuits),
        "pairs": pairs,
        "serial": {
            "seconds": round(serial_seconds, 4),
            "pairs_per_sec": round(pairs / serial_seconds, 1),
        },
        "batched": {
            "seconds": round(batched_seconds, 4),
            "pairs_per_sec": round(pairs / batched_seconds, 1),
        },
        "speedup": round(serial_seconds / batched_seconds, 2),
        "max_abs_diff": max_abs_diff,
    }


def test_batched_sweep_speedup_and_identity():
    result = bench_sweep(max_circuits=40)
    assert result["max_abs_diff"] <= IDENTITY_ATOL
    assert result["speedup"] >= SPEEDUP_FLOOR


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    payload = {"sweep": bench_sweep(max_circuits=40 if quick else None)}
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {_OUT}")


if __name__ == "__main__":
    main()
