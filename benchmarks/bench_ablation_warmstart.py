"""Ablation: warm starts from the parent node during search."""

from conftest import write_result

from repro.experiments.ablations import warm_start_ablation


def test_ablation_warm_start(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: warm_start_ablation(trials=3), rounds=1, iterations=1
    )
    write_result(results_dir, "ablation_warmstart", result.rows())

    # Both configurations must synthesise the targets; the node counts are
    # reported for inspection (for shallow TFIM targets cold restarts can
    # be competitive — warm starts pay off on deeper structures, where a
    # cold 39-parameter restart rarely lands in the right basin).
    assert result.warm_success == len(result.warm_nodes)
    assert result.cold_success >= 1
