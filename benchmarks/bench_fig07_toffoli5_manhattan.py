"""Figure 7: 5q Toffoli JS distance vs CNOT count, Manhattan model."""

from conftest import write_result

from repro.experiments import fig06, fig07
from repro.metrics import UNIFORM_NOISE_JS


def test_fig07(benchmark, results_dir):
    result = benchmark.pedantic(fig07, rounds=1, iterations=1)
    write_result(results_dir, "fig07", result.rows())

    # Shape: the 5q reference scores worse than the 4q one (paper text).
    assert result.reference.value > fig06().reference.value
    # Shape: deep circuits trend toward the 0.465 random-noise floor.
    deep = [p for p in result.points if p.cnot_count >= 40]
    if deep:
        assert min(abs(p.value - UNIFORM_NOISE_JS) for p in deep) < 0.12
    # Shape: short approximations still beat the reference.
    assert result.best().value < result.reference.value
