"""Figure 3: 3q TFIM, Toronto model — every approximate circuit."""

from conftest import write_result

from repro.experiments import fig03


def test_fig03(benchmark, results_dir):
    result = benchmark.pedantic(fig03, rounds=1, iterations=1)
    write_result(results_dir, "fig03", result.rows())

    # Shape: nearly all approximations beat the noisy reference.
    assert result.fraction_beating_reference() > 0.55
    # The pool spans multiple CNOT depths (the colour axis of the figure).
    depths = {p.cnot_count for p in result.points}
    assert len(depths) >= 4
