"""Table 1: average CNOT errors on the five IBM machines."""

from conftest import write_result

from repro.experiments import table1, table1_rows
from repro.noise import TABLE1_CNOT_ERRORS


def test_table1(benchmark, results_dir):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    write_result(results_dir, "table1", table1_rows())

    by_name = {r.machine.lower(): r for r in rows}
    # Exact agreement with the published snapshot.
    for name, (nq, err) in TABLE1_CNOT_ERRORS.items():
        assert by_name[name].num_qubits == nq
        assert abs(by_name[name].avg_cnot_error - err) < 1e-9
    # Shape: Ourense best, Rome worst (paper's ordering).
    assert by_name["ourense"].avg_cnot_error == min(
        r.avg_cnot_error for r in rows
    )
    assert by_name["rome"].avg_cnot_error == max(r.avg_cnot_error for r in rows)
