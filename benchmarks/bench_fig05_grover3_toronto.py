"""Figure 5: 3q Grover success probability vs CNOT count, Toronto model."""

from conftest import write_result

from repro.experiments import fig05


def test_fig05(benchmark, results_dir):
    result = benchmark.pedantic(fig05, rounds=1, iterations=1)
    write_result(results_dir, "fig05", result.rows())

    # Shape: many approximations above the reference line, a fraction below.
    frac = result.fraction_better_than_reference()
    assert frac > 0.5
    assert result.best().value > result.reference.value
