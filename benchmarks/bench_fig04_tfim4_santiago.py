"""Figure 4: 4q TFIM under the Santiago noise model."""

from conftest import write_result

from repro.experiments import fig04


def test_fig04(benchmark, results_dir):
    result = benchmark.pedantic(fig04, rounds=1, iterations=1)
    write_result(results_dir, "fig04", result.rows())

    # Shape: wide CNOT range in the pool (paper: 1..48).
    depths = sorted({p.cnot_count for p in result.points})
    assert depths[0] <= 1 and depths[-1] >= 6
    # Shape: many approximations closer to ideal than the noisy reference.
    assert result.fraction_beating_reference() > 0.35
    assert result.best_error() < result.reference_error()
