"""Throughput benchmarks for the parallel execution layer.

Not a paper figure — tracks the two perf claims of the parallel subsystem:

* batched trajectory sampling vs the per-shot path (shots/sec), and
* cold-cache ``tfim_pools`` wall-clock at 1 vs N worker processes.

Run directly to (re)generate ``BENCH_parallel.json`` at the repository
root so later changes can be compared against it::

    PYTHONPATH=src python benchmarks/bench_parallel.py

Under pytest the same measurements run as assertions (the batched engine
must beat per-shot by the 5x acceptance margin).
"""

import json
import os
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_OUT = _ROOT / "BENCH_parallel.json"

_SHOTS = 1024
_QUBITS = 4


def _trajectory_circuit():
    from repro.circuits import random_circuit
    from repro.transpile import to_basis_gates

    return to_basis_gates(random_circuit(_QUBITS, 30, seed=3))


def bench_trajectory(shots: int = _SHOTS) -> dict:
    """Shots/sec of both trajectory methods on a 4q noisy circuit."""
    from repro.noise import get_device
    from repro.sim.trajectory import TrajectorySimulator

    circuit = _trajectory_circuit()
    model = get_device("ourense").noise_model(list(range(_QUBITS)))
    result = {}
    for method in ("per_shot", "batched"):
        sim = TrajectorySimulator(model, seed=11, method=method)
        sim.run(circuit, shots=4)  # warm compile/caches outside the timer
        started = time.perf_counter()
        sim.run(circuit, shots=shots)
        elapsed = time.perf_counter() - started
        result[method] = {
            "shots": shots,
            "seconds": round(elapsed, 4),
            "shots_per_sec": round(shots / elapsed, 1),
        }
    result["batched_speedup"] = round(
        result["per_shot"]["seconds"] / result["batched"]["seconds"], 2
    )
    return result


def bench_pool_build(jobs_values=(1, 2)) -> dict:
    """Cold-cache ``tfim_pools`` wall-clock per worker count.

    ``REPRO_NO_CACHE`` keeps every build cold so the numbers compare
    synthesis work, not disk-cache hits. On a single-core container the
    multi-worker row records pool overhead rather than speedup — the
    host's ``cpu_count`` is stored alongside so readers can tell.
    """
    from repro.experiments import get_scale, tfim_pools

    scale = get_scale("smoke")
    result = {"scale": scale.name, "cpu_count": os.cpu_count()}
    old = os.environ.get("REPRO_NO_CACHE")
    os.environ["REPRO_NO_CACHE"] = "1"
    try:
        for jobs in jobs_values:
            started = time.perf_counter()
            pools = tfim_pools(3, scale=scale, jobs=jobs)
            elapsed = time.perf_counter() - started
            result[f"jobs={jobs}"] = {
                "seconds": round(elapsed, 4),
                "steps": len(pools),
            }
    finally:
        if old is None:
            os.environ.pop("REPRO_NO_CACHE", None)
        else:
            os.environ["REPRO_NO_CACHE"] = old
    return result


def test_batched_trajectory_speedup():
    result = bench_trajectory()
    assert result["batched_speedup"] >= 5.0


def test_pool_build_all_worker_counts_agree():
    from repro.experiments import get_scale, tfim_pools

    scale = get_scale("smoke")
    serial = tfim_pools(3, scale=scale, jobs=1)
    fanned = tfim_pools(3, scale=scale, jobs=2)
    assert [s for s, _ in serial] == [s for s, _ in fanned]
    for (_, a), (_, b) in zip(serial, fanned):
        assert [c.cnot_count for c in a.circuits] == [
            c.cnot_count for c in b.circuits
        ]


def main() -> None:
    payload = {
        "trajectory": bench_trajectory(),
        "tfim_pools": bench_pool_build(),
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {_OUT}")


if __name__ == "__main__":
    main()
