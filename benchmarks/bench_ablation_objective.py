"""Ablation: smooth vs sqrt synthesis objective."""

from conftest import write_result

from repro.experiments.ablations import objective_ablation


def test_ablation_objective(benchmark, results_dir):
    result = benchmark.pedantic(objective_ablation, rounds=1, iterations=1)
    write_result(results_dir, "ablation_objective", result.rows())

    # The smooth form must converge strictly more reliably: the HS
    # distance's sqrt has infinite slope at the optimum, which defeats
    # L-BFGS line searches.
    assert result.smooth_success > result.sqrt_success
    assert result.smooth_mean_cost < result.sqrt_mean_cost
