"""Figure 18: 4q Toffoli on Toronto hardware, worst-performing mapping."""

from conftest import write_result

from repro.experiments import fig17, fig18


def test_fig18(benchmark, results_dir):
    result = benchmark.pedantic(fig18, rounds=1, iterations=1)
    write_result(results_dir, "fig18", result.rows())

    best_mapping = fig17()
    # Shape: strictly worse outcomes than the best mapping.
    assert result.best().value > best_mapping.best().value
    assert result.reference.value >= best_mapping.reference.value - 0.02
