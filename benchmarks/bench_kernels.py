"""Micro-benchmarks for the numerical kernels.

Not a paper figure — these track the throughput of the hot paths the
experiment drivers depend on (statevector/density-matrix simulation, the
synthesis objective, channel application), using proper multi-round
pytest-benchmark measurement.
"""

import numpy as np
import pytest

from repro.circuits import random_circuit
from repro.noise import depolarizing_channel, get_device
from repro.sim import DensityMatrixSimulator, StatevectorSimulator
from repro.synthesis import CircuitStructure
from repro.synthesis.objective import HilbertSchmidtObjective


@pytest.fixture(scope="module")
def deep_circuit():
    return random_circuit(4, 120, seed=1)


def test_statevector_simulation(benchmark, deep_circuit):
    sim = StatevectorSimulator()
    benchmark(sim.run, deep_circuit)


def test_density_matrix_noisy_simulation(benchmark, deep_circuit):
    from repro.transpile import to_basis_gates

    circuit = to_basis_gates(deep_circuit)
    sim = DensityMatrixSimulator(get_device("toronto").noise_model([0, 1, 2, 3]))
    benchmark(sim.run, circuit)


def test_synthesis_objective_gradient(benchmark):
    rng = np.random.default_rng(0)
    from repro.linalg import haar_unitary

    target = haar_unitary(8, rng)
    structure = CircuitStructure(3, ((0, 1), (1, 2), (0, 1), (1, 2), (0, 1), (1, 2)))
    objective = HilbertSchmidtObjective(target, structure)
    params = rng.uniform(-np.pi, np.pi, structure.num_params)
    benchmark(objective.smooth_cost_and_grad, params)


def test_two_qubit_channel_application(benchmark):
    channel = depolarizing_channel(0.05, 2)
    rng = np.random.default_rng(1)
    dim = 32
    a = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = a @ a.conj().T
    rho /= np.trace(rho)
    channel.apply(rho, (1, 3), 5)  # warm the superoperator cache
    benchmark(channel.apply, rho, (1, 3), 5)
