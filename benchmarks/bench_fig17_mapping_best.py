"""Figure 17: 4q Toffoli on Toronto hardware, best-performing mapping."""

from conftest import write_result

from repro.experiments import fig17


def test_fig17(benchmark, results_dir):
    result = benchmark.pedantic(fig17, rounds=1, iterations=1)
    write_result(results_dir, "fig17", result.rows())

    # Shape: some circuits lie below the reference (the paper saw "about
    # a third" on its snapshot; the exact fraction depends on the pool's
    # depth mix, so only existence plus the best-mapping ordering vs
    # fig18 — asserted there — is required here).
    assert result.fraction_better_than_reference() > 0.02
    assert result.best().value < result.reference.value
