"""Figure 15: 4q Toffoli on (emulated) Manhattan hardware."""

from conftest import write_result

from repro.experiments import fig15
from repro.metrics import UNIFORM_NOISE_JS


def test_fig15(benchmark, results_dir):
    result = benchmark.pedantic(fig15, rounds=1, iterations=1)
    write_result(results_dir, "fig15", result.rows())

    # Shape: the best approximation has a much lower JS than the
    # reference (the paper measured 78% lower).
    assert result.best().value < result.reference.value
    assert result.improvement() > 0.02
    # Shape: hardware is noisy enough that some circuits approach (or
    # cross) the 0.465 random-noise line.
    assert any(p.value > UNIFORM_NOISE_JS - 0.08 for p in result.points)
