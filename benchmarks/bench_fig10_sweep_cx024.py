"""Figure 10: 3q TFIM, Ourense model, CNOT error pinned to 0.24."""

import numpy as np
from conftest import write_result

from repro.experiments import fig09, fig10


def test_fig10(benchmark, results_dir):
    result = benchmark.pedantic(fig10, rounds=1, iterations=1)
    write_result(results_dir, "fig10", result.rows())

    # Shape: worse than the 0.12 sweep for the reference...
    assert result.reference_error() > fig09().reference_error()
    # ...while the best shallow circuits remain usable (Observation 5).
    assert result.best_error() < 0.35 * result.reference_error()
    # Shape: best of the shortest circuits beats best of the longest.
    by_depth = {}
    for i, step in enumerate(result.steps):
        for p in result.points_at(step):
            err = abs(p.value - result.noise_free[i])
            key = p.cnot_count
            by_depth.setdefault(key, []).append(err)
    depths = sorted(by_depth)
    shallow = np.mean([min(by_depth[d]) for d in depths[: len(depths) // 2] or depths[:1]])
    deep = np.mean([min(by_depth[d]) for d in depths[len(depths) // 2 :] or depths[-1:]])
    assert shallow <= deep + 0.05
