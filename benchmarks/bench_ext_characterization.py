"""Extension: device characterisation protocols on the emulated stack."""

import numpy as np
from conftest import write_result

from repro.circuits import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.experiments import NoiseModelBackend
from repro.hardware import run_rb
from repro.noise import (
    GateError,
    NoiseModel,
    depolarizing_channel,
    get_device,
    process_fidelity_to_channel,
    process_tomography,
)
from repro.noise.channels import KrausChannel
from repro.sim import DensityMatrixSimulator


def _study():
    rows = ["[ext:characterization]"]

    # RB on two devices: the better device must show slower decay.
    decays = {}
    for name in ("ourense", "rome"):
        backend = NoiseModelBackend(
            get_device(name).noise_model(include_readout=False)
        )
        result = run_rb(
            backend, lengths=(1, 8, 24, 48), sequences_per_length=3
        )
        decays[name] = result
        rows.append(
            f"rb[{name}]: p={result.decay:.5f} "
            f"error/Clifford={result.error_per_clifford:.5f}"
        )

    # Tomography closes the model loop exactly.
    model = NoiseModel()
    model.add_gate_error(GateError(depolarizing=0.05), "cx", None)
    sim = DensityMatrixSimulator(model)

    def apply_process(prep: QuantumCircuit) -> np.ndarray:
        circuit = prep.copy()
        circuit.cx(0, 1)
        return sim.run(circuit).data

    measured = process_tomography(apply_process, 2)
    expected = KrausChannel([gate_matrix("cx")]).compose(
        depolarizing_channel(0.05, 2)
    )
    fidelity = process_fidelity_to_channel(measured, expected)
    rows.append(f"tomography: process fidelity to injected model {fidelity:.8f}")
    return decays, fidelity, "\n".join(rows)


def test_characterization(benchmark, results_dir):
    decays, fidelity, text = benchmark.pedantic(_study, rounds=1, iterations=1)
    write_result(results_dir, "ext_characterization", text)

    # Rome is the noisiest Table 1 device: its RB decay must be faster.
    assert decays["rome"].decay < decays["ourense"].decay
    assert decays["rome"].error_per_clifford > decays["ourense"].error_per_clifford
    # Tomography must reconstruct the injected channel essentially exactly.
    assert abs(fidelity - 1.0) < 1e-6
