"""Ablation: Toffoli input-test-suite choice for the JS score."""

from conftest import write_result

from repro.experiments.ablations import toffoli_suite_ablation


def test_ablation_toffoli_suite(benchmark, results_dir):
    result = benchmark.pedantic(toffoli_suite_ablation, rounds=1, iterations=1)
    write_result(results_dir, "ablation_suite", result.rows())

    # Both suites separate the pool; their scores must vary (otherwise the
    # JS figures would be flat lines).
    assert result.basic_spread > 0.01
    assert result.extended_spread > 0.01
    # The suites genuinely measure different things.
    assert result.basic_scores != result.extended_scores
