"""Figure 2: 3q TFIM under the Toronto noise model — selected series."""

from conftest import write_result

from repro.experiments import fig02


def test_fig02(benchmark, results_dir):
    result = benchmark.pedantic(fig02, rounds=1, iterations=1)
    write_result(results_dir, "fig02", result.rows())

    # Shape: noisy reference diverges with timestep depth — the worst
    # error lands in the deep half of the trajectory and the deepest
    # step is worse than the shallowest.
    import numpy as np

    errors = np.abs(result.noisy_reference - result.noise_free)
    assert errors[-1] > errors[0]
    assert int(np.argmax(errors)) >= len(errors) // 2
    # Shape: minimal-HS closer to ideal than the noisy reference.
    assert result.minimal_hs_error() < result.reference_error()
    # Shape: best approximations closest of all (Observation 1).
    assert result.best_error() <= result.minimal_hs_error()
    assert result.improvement() > 0.3
