"""Figure 9: 3q TFIM, Ourense model, CNOT error pinned to 0.12."""

from conftest import write_result

from repro.experiments import fig08, fig09


def test_fig09(benchmark, results_dir):
    result = benchmark.pedantic(fig09, rounds=1, iterations=1)
    write_result(results_dir, "fig09", result.rows())

    # Shape: raising CNOT error shrinks the observed magnetization.
    baseline = fig08()
    assert (
        abs(result.noisy_reference).mean() < abs(baseline.noisy_reference).mean()
    )
    # Shape: the reference suffers much more than the approximations.
    assert result.improvement() > 0.5
