"""Figure 14: 3q Grover on (emulated) Rome hardware."""

from conftest import write_result

from repro.experiments import fig14


def test_fig14(benchmark, results_dir):
    result = benchmark.pedantic(fig14, rounds=1, iterations=1)
    write_result(results_dir, "fig14", result.rows())

    # Shape: the routed reference is CNOT-heavy (paper: >50).
    assert result.reference.cnot_count > 30
    # Shape: many (but not all) approximations beat the reference.
    assert result.fraction_better_than_reference() > 0.5
