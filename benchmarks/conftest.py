"""Benchmark configuration.

Benchmarks run the per-figure experiment drivers at the ``quick`` scale by
default (override with ``REPRO_SCALE``). The first run pays for synthesis;
results are disk-cached under ``.repro_cache`` so re-runs are fast.

Each benchmark writes the regenerated table/figure series to
``results/<figure>.txt`` so the paper's numbers can be inspected without
re-running anything.
"""

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_SCALE", "quick")

from repro.utils.cache import seed_cache  # noqa: E402

_ROOT = Path(__file__).resolve().parent.parent
seed_cache(_ROOT / "tests" / "fixtures" / "repro_cache")

_RESULTS = _ROOT / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    _RESULTS.mkdir(exist_ok=True)
    return _RESULTS


def write_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
