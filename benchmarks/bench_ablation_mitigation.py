"""Ablation: does readout mitigation preserve the approximation advantage?

The paper's related work asks whether approximate-circuit benefits hold
for "processes which require post-processing or manipulation of error
levels". This bench answers it for readout mitigation.
"""

from conftest import write_result

from repro.experiments.ablations import mitigation_ablation


def test_ablation_mitigation(benchmark, results_dir):
    result = benchmark.pedantic(mitigation_ablation, rounds=1, iterations=1)
    write_result(results_dir, "ablation_mitigation", result.rows())

    # The approximation advantage must survive mitigation...
    assert result.mitigated_improvement > 0.3
    # ...and most of the pool still beats the reference.
    assert result.mitigated_beating > 0.5
