"""Extension (paper §6.5): partitioned approximation of wider circuits."""

from conftest import write_result

from repro.apps.tfim import TFIMSpec, tfim_step_circuit
from repro.synthesis import PartitionedSynthesizer
from repro.transpile import to_basis_gates


def _study():
    circuit = to_basis_gates(tfim_step_circuit(TFIMSpec(5), 4))
    synthesizer = PartitionedSynthesizer(
        max_block_qubits=3,
        seed=5,
        synthesizer_options={"max_cnots": 5, "max_nodes": 60, "maxiter": 150},
    )
    pool = synthesizer.synthesize(circuit)
    rows = ["[ext:partition] 5q TFIM step approximated via 3q blocks"]
    rows.append(f"target: {circuit.cnot_count} CNOTs")
    for c in sorted(pool, key=lambda c: c.cnot_count):
        rows.append(f"  cnots={c.cnot_count:>3}  hs={c.hs_distance:.4f}")
    return circuit, pool, "\n".join(rows)


def test_partitioned_synthesis(benchmark, results_dir):
    circuit, pool, text = benchmark.pedantic(_study, rounds=1, iterations=1)
    write_result(results_dir, "ext_partition", text)

    # Shape: the frontier reaches (near-)exactness on a target wider than
    # direct QSearch can handle, plus genuinely shallower approximations.
    assert min(c.hs_distance for c in pool) < 0.05
    assert min(c.cnot_count for c in pool) < circuit.cnot_count
