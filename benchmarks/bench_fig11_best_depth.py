"""Figure 11: best-circuit CNOT depth per timestep across error levels."""

from conftest import write_result

from repro.experiments import fig11


def test_fig11(benchmark, results_dir):
    result = benchmark.pedantic(fig11, rounds=1, iterations=1)
    write_result(results_dir, "fig11", result.rows())

    levels = sorted(result.series)
    assert levels == [0.0, 0.03, 0.06, 0.12, 0.24]
    # Shape (Observation 6): the worse the error, the shallower the best
    # circuits in general ("but not under all circumstances") — compare
    # the extremes.
    assert result.mean_depth(0.24) <= result.mean_depth(0.0)
