"""Ablation: circuit-selection strategies across noise levels (Obs. 2)."""

from conftest import write_result

from repro.experiments.ablations import selection_ablation


def test_ablation_selection(benchmark, results_dir):
    result = benchmark.pedantic(selection_ablation, rounds=1, iterations=1)
    write_result(results_dir, "ablation_selection", result.rows())

    low, high = result.levels[0], result.levels[-1]
    # The paper's conclusion: process distance alone is not enough — the
    # noise-aware prediction beats minimal-HS once noise is high.
    assert result.table["noise_aware"][high] <= result.table["minimal_hs"][high]
    # And the oracle (simulate-and-pick) dominates every strategy: circuit
    # selection remains an open problem, as the paper states.
    for name in ("minimal_hs", "shortest", "noise_aware"):
        assert result.table["oracle"][high] <= result.table[name][high] + 1e-12
    # At low noise, exactness matters: minimal-HS beats pure-shortest.
    assert result.table["minimal_hs"][low] < result.table["shortest"][low]
