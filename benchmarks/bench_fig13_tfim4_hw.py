"""Figure 13: 4q TFIM on (emulated) Manhattan hardware."""

from conftest import write_result

from repro.experiments import fig13


def test_fig13(benchmark, results_dir):
    result = benchmark.pedantic(fig13, rounds=1, iterations=1)
    write_result(results_dir, "fig13", result.rows())

    # Shape: the large majority of approximations beat the reference.
    assert result.fraction_beating_reference() > 0.4
    assert result.best_error() < result.reference_error()
