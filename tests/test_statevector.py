"""Statevector simulator tests."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit, qft_circuit, random_circuit
from repro.circuits import basis_state_preparation
from repro.sim import Statevector, StatevectorSimulator


class TestStatevector:
    def test_zero_state(self):
        sv = Statevector.zero_state(3)
        assert sv.probabilities()[0] == 1.0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Statevector(np.zeros(3))

    def test_probability_of_bitstring(self):
        sv = StatevectorSimulator().run(ghz_circuit(3))
        assert sv.probability_of("000") == pytest.approx(0.5)
        assert sv.probability_of("111") == pytest.approx(0.5)
        assert sv.probability_of("010") == pytest.approx(0.0)

    def test_bitstring_width_validation(self):
        sv = Statevector.zero_state(2)
        with pytest.raises(ValueError):
            sv.probability_of("000")

    def test_expectation_z(self):
        sv = Statevector.zero_state(2)
        assert sv.expectation_z(0) == pytest.approx(1.0)
        flipped = StatevectorSimulator().run(QuantumCircuit(2).x(0))
        assert flipped.expectation_z(0) == pytest.approx(-1.0)
        assert flipped.expectation_z(1) == pytest.approx(1.0)

    def test_fidelity(self):
        a = Statevector.zero_state(2)
        b = StatevectorSimulator().run(QuantumCircuit(2).h(0))
        assert a.fidelity(a) == pytest.approx(1.0)
        assert a.fidelity(b) == pytest.approx(0.5)


class TestSimulator:
    def test_h_gives_uniform(self):
        qc = QuantumCircuit(2).h(0).h(1)
        probs = StatevectorSimulator().probabilities(qc)
        assert np.allclose(probs, 0.25)

    def test_prepares_requested_basis_state(self):
        qc = basis_state_preparation(3, "101")
        probs = StatevectorSimulator().probabilities(qc)
        assert probs[0b101] == pytest.approx(1.0)

    def test_initial_state_forwarding(self):
        init = StatevectorSimulator().run(QuantumCircuit(2).x(0))
        sv = StatevectorSimulator().run(QuantumCircuit(2).x(0), initial_state=init)
        assert sv.probabilities()[0] == pytest.approx(1.0)

    def test_initial_state_width_check(self):
        with pytest.raises(ValueError):
            StatevectorSimulator().run(
                QuantumCircuit(2), initial_state=Statevector.zero_state(3)
            )

    def test_measure_and_barrier_skipped(self):
        qc = QuantumCircuit(1).h(0)
        qc.barrier()
        qc.measure_all()
        probs = StatevectorSimulator().probabilities(qc)
        assert np.allclose(probs, 0.5)

    @pytest.mark.parametrize("seed", range(3))
    def test_norm_preserved(self, seed):
        qc = random_circuit(4, 30, seed=seed)
        sv = StatevectorSimulator().run(qc)
        assert np.linalg.norm(sv.data) == pytest.approx(1.0)

    def test_qft_of_basis_state_is_uniform(self):
        qc = basis_state_preparation(3, "011")
        qc.compose(qft_circuit(3))
        probs = StatevectorSimulator().probabilities(qc)
        assert np.allclose(probs, 1.0 / 8.0)
