"""Observable estimation from distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    average_magnetization,
    parity_expectation,
    pauli_z_signs,
    z_expectation,
)


def _delta(n, index):
    p = np.zeros(2**n)
    p[index] = 1.0
    return p


class TestZExpectation:
    def test_zero_state(self):
        assert z_expectation(_delta(3, 0), 0) == 1.0

    def test_flipped_qubit(self):
        assert z_expectation(_delta(3, 0b010), 1) == -1.0
        assert z_expectation(_delta(3, 0b010), 0) == 1.0

    def test_uniform_distribution_zero(self):
        assert z_expectation(np.full(8, 1 / 8), 1) == pytest.approx(0.0)

    def test_qubit_range_check(self):
        with pytest.raises(ValueError):
            z_expectation(_delta(2, 0), 5)

    def test_signs_table(self):
        signs = pauli_z_signs(2, 0)
        assert list(signs) == [1.0, -1.0, 1.0, -1.0]


class TestMagnetization:
    def test_all_zeros_is_one(self):
        assert average_magnetization(_delta(3, 0)) == 1.0

    def test_all_ones_is_minus_one(self):
        assert average_magnetization(_delta(3, 0b111)) == -1.0

    def test_single_flip_on_three_sites(self):
        assert average_magnetization(_delta(3, 0b001)) == pytest.approx(1 / 3)

    def test_uniform_is_zero(self):
        assert average_magnetization(np.full(16, 1 / 16)) == pytest.approx(0.0)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            average_magnetization(np.ones(3) / 3)

    def test_equals_mean_of_z_expectations(self):
        rng = np.random.default_rng(0)
        probs = rng.random(8)
        probs /= probs.sum()
        manual = np.mean([z_expectation(probs, q) for q in range(3)])
        assert average_magnetization(probs) == pytest.approx(manual)


class TestParity:
    def test_even_state(self):
        assert parity_expectation(_delta(2, 0b11), [0, 1]) == 1.0

    def test_odd_state(self):
        assert parity_expectation(_delta(2, 0b01), [0, 1]) == -1.0

    def test_range_check(self):
        with pytest.raises(ValueError):
            parity_expectation(_delta(2, 0), [3])


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_magnetization_bounds_property(seed):
    """Property: magnetization of any distribution lies in [-1, 1]."""
    rng = np.random.default_rng(seed)
    probs = rng.random(8)
    probs /= probs.sum()
    assert -1.0 - 1e-9 <= average_magnetization(probs) <= 1.0 + 1e-9
