"""End-to-end integration tests: one test per paper table/figure.

Each test runs the figure driver at ``smoke`` scale (synthesis results are
disk-cached after the first run) and asserts the figure's qualitative
"shape to hold" from DESIGN.md. These are the reproduction's acceptance
tests.
"""

import numpy as np
import pytest

from repro.experiments import (
    SMOKE,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig07b,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    table1,
    table1_rows,
)
from repro.metrics import UNIFORM_NOISE_JS
from repro.noise import TABLE1_CNOT_ERRORS


class TestTable1:
    def test_values_match_paper(self):
        rows = {r.machine.lower(): r for r in table1()}
        for name, (nq, err) in TABLE1_CNOT_ERRORS.items():
            assert rows[name].num_qubits == nq
            assert rows[name].avg_cnot_error == pytest.approx(err, abs=1e-9)

    def test_rows_render(self):
        text = table1_rows()
        assert "Manhattan" in text and "0.01578" in text


class TestFig02Fig03:
    """3q TFIM under the Toronto noise model."""

    def test_noisy_reference_diverges_with_depth(self):
        r = fig02(SMOKE)
        errors = np.abs(r.noisy_reference - r.noise_free)
        # late timesteps (deep circuits) carry more error than early ones
        assert errors[-1] > errors[0]

    def test_best_approximation_beats_reference(self):
        r = fig02(SMOKE)
        assert r.best_error() < r.reference_error()
        assert r.improvement() > 0.3

    def test_minimal_hs_beats_reference_overall(self):
        r = fig02(SMOKE)
        assert r.minimal_hs_error() < r.reference_error()

    def test_best_beats_minimal_hs(self):
        """Observation 1: output-selected circuits beat HS-selected ones."""
        r = fig02(SMOKE)
        assert r.best_error() <= r.minimal_hs_error()

    def test_fig03_shares_points(self):
        r2, r3 = fig02(SMOKE), fig03(SMOKE)
        assert len(r2.points) == len(r3.points)
        assert r3.figure_id == "fig03"

    def test_most_approximations_beat_noisy_reference(self):
        assert fig03(SMOKE).fraction_beating_reference() > 0.5

    def test_rows_render(self):
        text = fig02(SMOKE).rows()
        assert "noise_free" in text and "improvement" in text


class TestFig04:
    """4q TFIM under the Santiago noise model."""

    def test_wide_cnot_range(self):
        r = fig04(SMOKE)
        counts = sorted({p.cnot_count for p in r.points})
        assert counts[0] <= 1 and counts[-1] >= 4

    def test_best_approximation_beats_reference(self):
        r = fig04(SMOKE)
        assert r.best_error() < r.reference_error()


class TestErrorSweeps:
    """Figures 8-10: Ourense base model with pinned CNOT error."""

    def test_more_error_hurts_reference_more(self):
        errs = [fig08(SMOKE), fig09(SMOKE), fig10(SMOKE)]
        ref_errors = [r.reference_error() for r in errs]
        assert ref_errors[0] < ref_errors[1] < ref_errors[2]

    def test_approximations_win_more_under_noise(self):
        """Observation 6: higher 2q noise -> more benefit from short circuits."""
        f8, f10 = fig08(SMOKE), fig10(SMOKE)
        assert f10.fraction_beating_reference() > f8.fraction_beating_reference()

    def test_zero_cnot_error_keeps_deep_circuits_usable(self):
        r = fig08(SMOKE)
        # with no CNOT noise the best circuits are not forced shallow
        assert max(r.best_depth_series()) >= 3

    def test_best_circuits_stay_good_at_high_noise(self):
        r = fig10(SMOKE)
        assert r.best_error() < 0.15


class TestFig11:
    def test_depth_shrinks_with_error(self):
        r = fig11(SMOKE)
        levels = sorted(r.series)
        assert r.mean_depth(levels[-1]) <= r.mean_depth(levels[0])

    def test_all_levels_present(self):
        r = fig11(SMOKE)
        assert set(r.series) == {0.0, 0.03, 0.06, 0.12, 0.24}

    def test_rows_render(self):
        assert "mean depth" in fig11(SMOKE).rows()


class TestHardwareFigures:
    """Figures 12-15: emulated IBM hardware."""

    def test_fig12_most_approximations_beat_reference(self):
        r = fig12(SMOKE)
        assert r.fraction_beating_reference() > 0.5
        assert r.improvement() > 0.3

    def test_fig13_majority_beat_reference(self):
        r = fig13(SMOKE)
        assert r.fraction_beating_reference() > 0.4

    def test_fig12_similar_distribution_to_noise_model(self):
        """Observation 7: hardware results distributed like fig09-style sims."""
        hw = fig12(SMOKE)
        sim = fig02(SMOKE)
        # both should show the same qualitative win-rate regime
        assert abs(
            hw.fraction_beating_reference() - sim.fraction_beating_reference()
        ) < 0.35

    def test_fig14_reference_routed_heavy(self):
        r = fig14(SMOKE)
        assert r.reference.cnot_count > 30  # paper: "more than 50 CNOTs"
        assert r.fraction_better_than_reference() > 0.5

    def test_fig15_best_approximation_wins_on_hardware(self):
        r = fig15(SMOKE)
        assert r.best().value < r.reference.value
        assert r.noise_floor == pytest.approx(UNIFORM_NOISE_JS)


class TestToffoliFigures:
    def test_fig06_approximations_can_beat_reference(self):
        r = fig06(SMOKE)
        assert r.best().value < r.reference.value
        best = r.best()
        assert best.cnot_count < r.reference.cnot_count

    def test_fig07_reference_worse_than_4q(self):
        r6, r7 = fig06(SMOKE), fig07(SMOKE)
        assert r7.reference.value > r6.reference.value

    def test_fig07_deep_circuits_approach_noise_floor(self):
        r = fig07(SMOKE)
        deep = [p for p in r.points if p.cnot_count >= 30]
        if deep:  # smoke-scale pools may stop shallower
            assert min(abs(p.value - UNIFORM_NOISE_JS) for p in deep) < 0.15

    def test_fig07b_negative_result(self):
        """Observation 4: 3q Toffoli approximations do NOT beat the 6-CNOT ref."""
        r = fig07b(SMOKE)
        assert r.fraction_better_than_reference() < 0.2
        assert r.reference.cnot_count == 6


class TestMappingFigures:
    def test_fig16_report(self):
        text = fig16()
        assert "toronto" in text and "manual mapping regions" in text

    def test_fig17_best_has_lower_js_than_fig18(self):
        assert fig17(SMOKE).best().value < fig18(SMOKE).best().value

    def test_fig17_about_a_third_below_reference(self):
        frac = fig17(SMOKE).fraction_better_than_reference()
        assert 0.1 < frac < 0.8  # paper: "about a third"

    def test_fig19_auto_between_best_and_worst(self):
        best = fig17(SMOKE).best().value
        worst = fig18(SMOKE).best().value
        auto = fig19(SMOKE).best().value
        assert best <= auto + 0.05  # auto no better than the best manual (within noise)
        assert auto <= worst + 0.05

    def test_mapping_ordering_is_measured_not_predicted(self):
        """Observation 9: outcome ranking need not follow CNOT calibration."""
        r17, r18 = fig17(SMOKE), fig18(SMOKE)
        assert r17.figure_id == "fig17" and r18.figure_id == "fig18"
        assert r17.description != r18.description
