"""Symbolic circuit parameters."""

import math

import numpy as np
import pytest

from repro.circuits import (
    Parameter,
    ParameterExpression,
    QuantumCircuit,
    bind_parameters,
    free_parameters,
)
from repro.linalg import allclose_up_to_global_phase


class TestParameterAlgebra:
    def test_named(self):
        p = Parameter("theta")
        assert p.name == "theta"
        with pytest.raises(ValueError):
            Parameter("")

    def test_affine_expressions(self):
        p = Parameter("x")
        expr = 2 * p + 1.0
        assert expr.bind(3.0) == pytest.approx(7.0)
        assert (-p).bind(2.0) == pytest.approx(-2.0)
        assert (p / 4).bind(2.0) == pytest.approx(0.5)
        assert (p - 1).bind(5.0) == pytest.approx(4.0)

    def test_unbound_float_conversion_rejected(self):
        with pytest.raises(TypeError):
            float(Parameter("x"))


class TestSymbolicCircuits:
    def test_free_parameters_collected(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(2).rx(a, 0).rz(b, 1).rx(3 * a, 1)
        assert free_parameters(qc) == {"a", "b"}

    def test_binding_produces_numeric_circuit(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1).rx(theta, 0)
        bound = bind_parameters(qc, {theta: math.pi})
        assert bound.gates[0].params == (math.pi,)
        assert not free_parameters(bound)

    def test_binding_by_string_key(self):
        qc = QuantumCircuit(1).rz(Parameter("lam"), 0)
        bound = bind_parameters(qc, {"lam": 0.5})
        assert bound.gates[0].params == (0.5,)

    def test_expression_binding(self):
        t = Parameter("t")
        qc = QuantumCircuit(2).rzz(2 * t + 0.1, 0, 1)
        bound = bind_parameters(qc, {"t": 0.45})
        assert bound.gates[0].params[0] == pytest.approx(1.0)

    def test_missing_binding_raises(self):
        qc = QuantumCircuit(1).rx(Parameter("x"), 0)
        with pytest.raises(KeyError):
            bind_parameters(qc, {"y": 1.0})

    def test_unitary_blocked_until_bound(self):
        qc = QuantumCircuit(1).rx(Parameter("x"), 0)
        with pytest.raises(TypeError):
            qc.unitary()

    def test_bound_circuit_matches_direct_construction(self):
        theta = Parameter("theta")
        template = QuantumCircuit(2).rx(theta, 0).cx(0, 1).rz(theta / 2, 1)
        for value in (0.3, 1.7):
            bound = bind_parameters(template, {"theta": value})
            direct = QuantumCircuit(2).rx(value, 0).cx(0, 1).rz(value / 2, 1)
            assert allclose_up_to_global_phase(bound.unitary(), direct.unitary())

    def test_parameterized_gate_flag(self):
        qc = QuantumCircuit(1).rx(Parameter("x"), 0).h(0)
        assert qc.gates[0].is_parameterized
        assert not qc.gates[1].is_parameterized
