"""Basis translation: exactness of every rewrite rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.linalg import allclose_up_to_global_phase, haar_unitary
from repro.transpile import BASIS_GATES, controlled_1q_gates, to_basis_gates


class TestRewriteRules:
    @pytest.mark.parametrize(
        "name,nq,params",
        [
            ("h", 1, ()),
            ("x", 1, ()),
            ("s", 1, ()),
            ("t", 1, ()),
            ("sx", 1, ()),
            ("rx", 1, (0.7,)),
            ("ry", 1, (1.2,)),
            ("rz", 1, (-0.9,)),
            ("cz", 2, ()),
            ("swap", 2, ()),
            ("iswap", 2, ()),
            ("rzz", 2, (0.8,)),
            ("rxx", 2, (1.5,)),
            ("crx", 2, (0.6,)),
            ("cu1", 2, (2.1,)),
            ("ccx", 3, ()),
            ("cswap", 3, ()),
        ],
    )
    def test_rule_exact(self, name, nq, params):
        qc = QuantumCircuit(nq)
        if params:
            getattr(qc, name)(*params, *range(nq))
        else:
            getattr(qc, name)(*range(nq))
        rewritten = to_basis_gates(qc)
        assert all(
            g.name in BASIS_GATES or g.name in ("barrier", "measure")
            for g in rewritten
        )
        assert allclose_up_to_global_phase(qc.unitary(), rewritten.unitary())

    def test_identity_dropped(self):
        qc = QuantumCircuit(1).id(0)
        assert len(to_basis_gates(qc)) == 0

    def test_measure_barrier_preserved(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.measure_all()
        out = to_basis_gates(qc)
        names = [g.name for g in out]
        assert "barrier" in names and "measure" in names

    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits_preserved(self, seed):
        qc = random_circuit(3, 25, seed=seed)
        out = to_basis_gates(qc)
        assert allclose_up_to_global_phase(qc.unitary(), out.unitary())

    def test_ccx_uses_six_cnots(self):
        qc = QuantumCircuit(3).ccx(0, 1, 2)
        assert to_basis_gates(qc).cnot_count == 6

    def test_swap_uses_three_cnots(self):
        qc = QuantumCircuit(2).swap(0, 1)
        assert to_basis_gates(qc).cnot_count == 3


class TestControlledDecomposition:
    @pytest.mark.parametrize("seed", range(6))
    def test_controlled_1q_exact(self, seed):
        from repro.linalg import controlled_unitary

        v = haar_unitary(2, seed)
        gates = controlled_1q_gates(v, 0, 1)
        qc = QuantumCircuit(2)
        qc.extend(gates)
        # controlled_unitary builds control-on-low-qubit; our gates use
        # control=0 (low bit), target=1.
        expected = controlled_unitary(v, 1)
        assert allclose_up_to_global_phase(expected, qc.unitary(), atol=1e-8)

    def test_uses_two_cnots(self):
        gates = controlled_1q_gates(haar_unitary(2, 0), 0, 1)
        assert sum(1 for g in gates if g.name == "cx") == 2


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_basis_translation_property(seed):
    qc = random_circuit(2, 15, seed=seed)
    assert allclose_up_to_global_phase(
        qc.unitary(), to_basis_gates(qc).unitary()
    )
