"""Circuit-selection strategies (the paper's Observation 2)."""

import numpy as np
import pytest

from repro.circuits import ghz_circuit
from repro.experiments import IdealBackend, NoiseModelBackend
from repro.metrics.selection import (
    evaluate_strategies,
    hs_threshold_strategy,
    minimal_hs_strategy,
    noise_aware_strategy,
    oracle_strategy,
    predicted_total_error,
    shortest_strategy,
    standard_strategies,
)
from repro.noise import get_device
from repro.sim import average_magnetization
from repro.synthesis import ApproximateCircuit, ApproximateCircuitSet
from repro.synthesis import generate_approximate_circuits


@pytest.fixture(scope="module")
def pool():
    return generate_approximate_circuits(
        ghz_circuit(3).unitary(),
        max_hs=float("inf"),
        seed=42,
        synthesizer_options={"max_cnots": 4, "max_nodes": 20},
    )


class TestBasicStrategies:
    def test_minimal_hs_picks_lowest_distance(self, pool):
        pick = minimal_hs_strategy().select(pool)
        assert pick.hs_distance == min(c.hs_distance for c in pool)

    def test_shortest_picks_fewest_cnots(self, pool):
        pick = shortest_strategy().select(pool)
        assert pick.cnot_count == min(c.cnot_count for c in pool)

    def test_threshold_respects_budget(self, pool):
        pick = hs_threshold_strategy(0.5).select(pool)
        assert pick.hs_distance <= 0.5

    def test_threshold_falls_back_when_unreachable(self, pool):
        # With an impossible threshold the strategy degrades to minimal HS.
        strategy = hs_threshold_strategy(1e-30)
        pick = strategy.select(pool)
        assert pick.hs_distance == pool.minimal_hs().hs_distance


class TestNoiseAware:
    def test_prediction_monotone_in_depth_for_same_hs(self):
        from repro.circuits import QuantumCircuit

        shallow = ApproximateCircuit(
            QuantumCircuit(2).cx(0, 1), hs_distance=0.1, cnot_count=1
        )
        deep_qc = QuantumCircuit(2)
        for _ in range(10):
            deep_qc.cx(0, 1)
        deep = ApproximateCircuit(deep_qc, hs_distance=0.1, cnot_count=10)
        assert predicted_total_error(shallow, 0.05) < predicted_total_error(
            deep, 0.05
        )

    def test_high_noise_prefers_shallower(self, pool):
        low = noise_aware_strategy(0.001).select(pool)
        high = noise_aware_strategy(0.3).select(pool)
        assert high.cnot_count <= low.cnot_count

    def test_zero_noise_prefers_exactness(self, pool):
        pick = noise_aware_strategy(0.0, sq_error=0.0).select(pool)
        assert pick.hs_distance == pytest.approx(
            pool.minimal_hs().hs_distance, abs=1e-9
        )


class TestEvaluation:
    def test_oracle_is_lower_bound(self, pool):
        backend = NoiseModelBackend(
            get_device("rome").noise_model().with_cnot_depolarizing(0.15)
        )
        ideal = average_magnetization(IdealBackend().run(ghz_circuit(3)))

        def error_of(probs):
            return abs(average_magnetization(probs) - ideal)

        table = evaluate_strategies(
            pool, standard_strategies(0.15), backend, error_of
        )
        oracle_error = table["oracle"]["error"]
        for name, row in table.items():
            assert row["error"] >= oracle_error - 1e-12, name

    def test_oracle_strategy_callable(self, pool):
        backend = IdealBackend()
        strategy = oracle_strategy(backend, lambda probs: -probs[0])
        pick = strategy.select(pool)
        assert pick in list(pool)

    def test_standard_strategy_names_unique(self):
        names = [s.name for s in standard_strategies(0.1)]
        assert len(names) == len(set(names))
