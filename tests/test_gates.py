"""Unit tests for the gate registry and gate matrices."""

import cmath
import math

import numpy as np
import pytest

from repro.circuits.gates import (
    CXGate,
    GATE_REGISTRY,
    Gate,
    U3Gate,
    gate_matrix,
    standard_gate,
    u3_matrix,
)
from repro.linalg import allclose_up_to_global_phase, is_unitary

SQ2 = 1.0 / math.sqrt(2.0)


class TestFixedGateMatrices:
    def test_pauli_x(self):
        assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])

    def test_pauli_y(self):
        assert np.allclose(gate_matrix("y"), [[0, -1j], [1j, 0]])

    def test_pauli_z(self):
        assert np.allclose(gate_matrix("z"), np.diag([1, -1]))

    def test_hadamard(self):
        assert np.allclose(gate_matrix("h"), [[SQ2, SQ2], [SQ2, -SQ2]])

    def test_s_squares_to_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_squares_to_s(self):
        t = gate_matrix("t")
        assert np.allclose(t @ t, gate_matrix("s"))

    def test_sdg_is_s_adjoint(self):
        assert np.allclose(gate_matrix("sdg"), gate_matrix("s").conj().T)

    def test_tdg_is_t_adjoint(self):
        assert np.allclose(gate_matrix("tdg"), gate_matrix("t").conj().T)

    def test_sx_squares_to_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_every_registered_gate_is_unitary(self):
        for name, definition in GATE_REGISTRY.items():
            params = tuple(0.3 + 0.1 * i for i in range(definition.num_params))
            assert is_unitary(gate_matrix(name, params)), name

    def test_cx_flips_target_when_control_set(self):
        cx = gate_matrix("cx")
        # |q1 q0> = |01> (control q0 set) -> |11>
        state = np.zeros(4)
        state[0b01] = 1.0
        out = cx @ state
        assert out[0b11] == 1.0

    def test_cx_identity_when_control_clear(self):
        cx = gate_matrix("cx")
        state = np.zeros(4)
        state[0b10] = 1.0  # only q1 set: control clear
        out = cx @ state
        assert out[0b10] == 1.0

    def test_cz_symmetric(self):
        cz = gate_matrix("cz")
        assert np.allclose(cz, cz.T)
        assert np.allclose(np.diag(cz), [1, 1, 1, -1])

    def test_swap(self):
        swap = gate_matrix("swap")
        state = np.zeros(4)
        state[0b01] = 1.0
        assert (swap @ state)[0b10] == 1.0

    def test_ccx_truth_table(self):
        ccx = gate_matrix("ccx")
        for i in range(8):
            out = np.nonzero(ccx[:, i])[0][0]
            controls_set = (i & 0b011) == 0b011
            expected = i ^ 0b100 if controls_set else i
            assert out == expected, i

    def test_cswap_truth_table(self):
        cswap = gate_matrix("cswap")
        for i in range(8):
            out = np.nonzero(cswap[:, i])[0][0]
            if i & 1:  # control set: swap bits 1 and 2
                b1, b2 = (i >> 1) & 1, (i >> 2) & 1
                expected = (i & 1) | (b2 << 1) | (b1 << 2)
            else:
                expected = i
            assert out == expected, i


class TestParametricGates:
    def test_u3_special_cases(self):
        assert allclose_up_to_global_phase(
            gate_matrix("u3", (math.pi / 2, 0.0, math.pi)), gate_matrix("h")
        )
        assert allclose_up_to_global_phase(
            gate_matrix("u3", (math.pi, 0.0, math.pi)), gate_matrix("x")
        )

    def test_u2_is_u3_at_half_pi(self):
        assert np.allclose(
            gate_matrix("u2", (0.4, 1.1)),
            gate_matrix("u3", (math.pi / 2, 0.4, 1.1)),
        )

    def test_u1_is_phase(self):
        lam = 0.77
        assert np.allclose(
            gate_matrix("u1", (lam,)), np.diag([1.0, cmath.exp(1j * lam)])
        )

    def test_rz_vs_u1_phase_relation(self):
        theta = 1.23
        rz = gate_matrix("rz", (theta,))
        u1 = gate_matrix("u1", (theta,))
        assert allclose_up_to_global_phase(rz, u1)

    def test_rx_at_pi_is_x(self):
        assert allclose_up_to_global_phase(
            gate_matrix("rx", (math.pi,)), gate_matrix("x")
        )

    def test_ry_at_pi_is_y(self):
        assert allclose_up_to_global_phase(
            gate_matrix("ry", (math.pi,)), gate_matrix("y")
        )

    def test_rzz_diagonal(self):
        theta = 0.9
        m = gate_matrix("rzz", (theta,))
        e = cmath.exp(-1j * theta / 2)
        assert np.allclose(np.diag(m), [e, e.conjugate(), e.conjugate(), e])

    def test_rzz_zero_is_identity(self):
        assert np.allclose(gate_matrix("rzz", (0.0,)), np.eye(4))

    def test_rxx_equals_conjugated_rzz(self):
        theta = 0.73
        h2 = np.kron(gate_matrix("h"), gate_matrix("h"))
        expected = h2 @ gate_matrix("rzz", (theta,)) @ h2
        assert np.allclose(gate_matrix("rxx", (theta,)), expected)

    def test_crx_controls_low_bit(self):
        theta = 1.1
        m = gate_matrix("crx", (theta,))
        # control clear (bit0 = 0) -> identity on those columns
        assert m[0, 0] == 1.0 and m[2, 2] == 1.0
        assert abs(m[1, 1] - math.cos(theta / 2)) < 1e-12

    def test_cu1_symmetric(self):
        m = gate_matrix("cu1", (0.5,))
        assert np.allclose(m, m.T)


class TestGateInstances:
    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            Gate("nope", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))

    def test_wrong_params_rejected(self):
        with pytest.raises(ValueError):
            Gate("u3", (0,), (1.0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_gate_hashable_and_equal(self):
        a = Gate("u3", (0,), (0.1, 0.2, 0.3))
        b = Gate("u3", (0,), (0.1, 0.2, 0.3))
        assert a == b and hash(a) == hash(b)

    def test_inverse_roundtrip_parametric(self):
        for name, params in [
            ("u3", (0.3, 1.1, -0.4)),
            ("u2", (0.5, 0.2)),
            ("u1", (0.9,)),
            ("rx", (0.8,)),
            ("ry", (1.4,)),
            ("rz", (2.2,)),
            ("rzz", (0.6,)),
            ("crx", (0.3,)),
            ("s", ()),
            ("t", ()),
            ("sx", ()),
        ]:
            definition = GATE_REGISTRY[name]
            g = Gate(name, tuple(range(definition.num_qubits)), params)
            prod = g.inverse().matrix() @ g.matrix()
            assert allclose_up_to_global_phase(
                np.eye(prod.shape[0]), prod
            ), name

    def test_self_inverse_gates(self):
        for name in ("x", "y", "z", "h", "cx", "cz", "swap", "ccx", "cswap"):
            definition = GATE_REGISTRY[name]
            g = Gate(name, tuple(range(definition.num_qubits)))
            assert g.inverse() is g

    def test_measure_has_no_matrix(self):
        g = Gate("measure", (0, 1))
        assert not g.is_unitary
        with pytest.raises(ValueError):
            g.matrix()

    def test_entangler_classification(self):
        assert Gate("cx", (0, 1)).is_entangler()
        assert Gate("rzz", (0, 1), (0.4,)).is_entangler()
        assert not Gate("h", (0,)).is_entangler()
        assert not Gate("crx", (0, 1), (0.4,)).is_entangler()

    def test_shortcut_constructors(self):
        assert U3Gate(2, 0.1, 0.2, 0.3) == Gate("u3", (2,), (0.1, 0.2, 0.3))
        assert CXGate(1, 0) == Gate("cx", (1, 0))
        assert standard_gate("h", 3) == Gate("h", (3,))
