"""Compiled + batched density-matrix engine: equivalence and contracts.

The batched engine's whole value proposition is that it is *not* a new
simulator — it must reproduce the serial
:class:`~repro.sim.density_matrix.DensityMatrixSimulator` to <= 1e-12 on
every pool/sweep workload the paper runs.  These tests pin that contract
on the real experiment pools (TFIM, Grover, Toffoli at smoke scale) and
on randomized circuits, plus the satellite behaviours that rode along:
memoized gate matrices and the trace-drift check.
"""

import warnings

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit, random_circuit
from repro.circuits.gates import gate_matrix, rx_matrix, u3_matrix
from repro.experiments import grover_pools, tfim_pools, toffoli_pools
from repro.experiments.runner import NoiseModelBackend, run_distributions
from repro.experiments.scale import get_scale
from repro.noise import PAPER_SWEEP_LEVELS, cnot_error_sweep, get_device
from repro.noise.sweep import sweep_pool_distributions
from repro.sim import (
    BatchedDensityMatrixSimulator,
    DensityMatrix,
    DensityMatrixSimulator,
    TraceDriftWarning,
    check_trace,
    compile_circuit,
    simulate_compiled,
    simulate_pool,
)

ATOL = 1e-12
QUBITS = [0, 1, 2]


def _sweep_models(device="ourense"):
    """The fig. 8–10 stack plus the ideal model (None)."""
    return [None] + cnot_error_sweep(device, PAPER_SWEEP_LEVELS, qubits=QUBITS)


def _serial(circuit, model):
    return DensityMatrixSimulator(model).probabilities(circuit)


def _pool_circuits(pools):
    return [
        c.circuit.without_measurements() for _, pool in pools for c in pool
    ]


class TestBatchedMatchesSerial:
    """Batched vs serial on the paper's actual circuit pools."""

    @pytest.mark.parametrize(
        "pools_fn",
        [
            lambda s: tfim_pools(3, scale=s),
            lambda s: grover_pools([3], scale=s),
            lambda s: toffoli_pools([2], scale=s),
        ],
        ids=["tfim", "grover", "toffoli"],
    )
    def test_pools_across_sweep_levels(self, pools_fn):
        circuits = _pool_circuits(pools_fn(get_scale()))
        assert circuits, "pool fixtures must not be empty"
        models = _sweep_models()
        for circuit in circuits[:12]:
            batched = simulate_compiled(compile_circuit(circuit), models)
            assert batched.shape == (len(models), 2**circuit.num_qubits)
            for row, model in zip(batched, models):
                assert np.max(np.abs(row - _serial(circuit, model))) <= ATOL

    def test_level_zero_groups_with_ideal_structure(self):
        """p=0 drops the CNOT depolarizing channel — its own group must
        still match the serial result exactly."""
        circuit = ghz_circuit(3)
        models = cnot_error_sweep("ourense", [0.0], qubits=QUBITS)
        batched = simulate_compiled(compile_circuit(circuit), models)
        assert np.max(np.abs(batched[0] - _serial(circuit, models[0]))) <= ATOL

    def test_without_readout_error(self):
        circuit = ghz_circuit(3)
        models = _sweep_models()
        batched = simulate_compiled(
            compile_circuit(circuit), models, with_readout_error=False
        )
        for row, model in zip(batched, models):
            sim = DensityMatrixSimulator(model)
            serial = sim.probabilities(circuit, with_readout_error=False)
            assert np.max(np.abs(row - serial)) <= ATOL


class TestFusion:
    @pytest.mark.parametrize("seed", range(6))
    def test_fused_matches_unfused_randomized(self, seed):
        circuit = random_circuit(3, 30, seed=seed)
        models = _sweep_models()
        compiled = compile_circuit(circuit)
        fused = simulate_compiled(compiled, models, fuse=True)
        unfused = simulate_compiled(compiled, models, fuse=False)
        assert np.max(np.abs(fused - unfused)) <= ATOL

    def test_fusion_shrinks_op_list(self):
        qc = QuantumCircuit(2)
        for _ in range(5):
            qc.h(0)
            qc.t(0)
        qc.cx(0, 1)
        compiled = compile_circuit(qc)
        fused = compiled.bind(None, fuse=True)
        unfused = compiled.bind(None, fuse=False)
        assert len(fused.ops) < len(unfused.ops)
        # The fused single-qubit run still produces the same state.
        rho = DensityMatrix.zero_state(2).data
        assert np.allclose(fused.apply(rho), unfused.apply(rho), atol=ATOL)


class TestPoolAndSweepWiring:
    def test_simulate_pool_parallel_matches_serial_jobs(self):
        circuits = [random_circuit(3, 20, seed=s) for s in range(6)]
        models = _sweep_models()
        serial = simulate_pool(circuits, models, jobs=1)
        parallel = simulate_pool(circuits, models, jobs=2, chunksize=2)
        assert len(serial) == len(parallel) == len(circuits)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_sweep_pool_distributions_shape_and_values(self):
        circuits = [ghz_circuit(3), random_circuit(3, 15, seed=7)]
        stacked = sweep_pool_distributions(circuits, "ourense", qubits=QUBITS)
        models = cnot_error_sweep("ourense", PAPER_SWEEP_LEVELS, qubits=QUBITS)
        assert stacked.shape == (len(models), len(circuits), 8)
        for li, model in enumerate(models):
            for ci, circuit in enumerate(circuits):
                diff = np.abs(stacked[li, ci] - _serial(circuit, model))
                assert np.max(diff) <= ATOL

    def test_run_many_matches_run_loop(self):
        model = get_device("ourense").noise_model(QUBITS)
        backend = NoiseModelBackend(model)
        circuits = [random_circuit(3, 18, seed=s) for s in range(4)]
        batched = backend.run_many(circuits)
        for circuit, probs in zip(circuits, batched):
            assert np.max(np.abs(probs - backend.run(circuit))) <= ATOL

    def test_run_distributions_falls_back_without_run_many(self):
        class Loop:
            calls = 0

            def run(self, circuit):
                self.calls += 1
                return DensityMatrixSimulator().probabilities(circuit)

        backend = Loop()
        circuits = [ghz_circuit(2), ghz_circuit(2)]
        out = run_distributions(backend, circuits)
        assert backend.calls == 2 and len(out) == 2

    def test_batched_simulator_facade(self):
        models = _sweep_models()
        sim = BatchedDensityMatrixSimulator(models)
        circuit = ghz_circuit(3)
        stack = sim.probabilities(circuit)
        for row, model in zip(stack, models):
            assert np.max(np.abs(row - _serial(circuit, model))) <= ATOL

    def test_empty_model_stack_rejected(self):
        with pytest.raises(ValueError):
            simulate_compiled(compile_circuit(ghz_circuit(2)), [])


class TestGateMemoization:
    def test_constant_matrices_are_shared_and_frozen(self):
        first = gate_matrix("h")
        assert first is gate_matrix("h")
        assert not first.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            first[0, 0] = 0.0

    def test_parametric_builders_memoize_per_params(self):
        a = rx_matrix((0.3,))
        assert a is rx_matrix((0.3,))
        assert a is not rx_matrix((0.4,))
        assert not a.flags.writeable
        b = u3_matrix((0.1, 0.2, 0.3))
        assert b is u3_matrix((0.1, 0.2, 0.3))

    def test_memoized_values_stay_correct(self):
        theta = 0.3
        expected = np.array(
            [
                [np.cos(theta / 2), -1j * np.sin(theta / 2)],
                [-1j * np.sin(theta / 2), np.cos(theta / 2)],
            ]
        )
        assert np.allclose(rx_matrix((theta,)), expected)


class TestTraceDrift:
    def test_probabilities_warns_on_drift(self):
        rho = DensityMatrix(np.diag([0.6, 0.3]).astype(complex))
        with pytest.warns(TraceDriftWarning):
            probs = rho.probabilities()
        # Still renormalized, as before.
        assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_strict_raises(self):
        rho = DensityMatrix(np.diag([0.6, 0.3]).astype(complex))
        with pytest.raises(ValueError, match="trace"):
            rho.probabilities(strict=True)

    def test_clean_state_is_silent(self):
        rho = DensityMatrix.zero_state(2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rho.probabilities()
            rho.probabilities(strict=True)

    def test_check_trace_tolerance(self):
        check_trace(1.0 + 1e-10)  # within atol: silent
        with pytest.warns(TraceDriftWarning, match="batched"):
            check_trace(0.9, context="batched density matrix")
        with pytest.raises(ValueError):
            check_trace(0.9, strict=True)
