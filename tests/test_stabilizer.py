"""Stabilizer (CHP) simulator: cross-validation and scaling."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.metrics import total_variation_distance
from repro.sim import (
    CLIFFORD_GATES,
    StabilizerSimulator,
    StatevectorSimulator,
    counts_to_probabilities,
)


def _random_clifford_circuit(num_qubits: int, depth: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    one_q = ["h", "s", "sdg", "x", "y", "z", "sx"]
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < 0.35:
            a, b = rng.choice(num_qubits, 2, replace=False)
            getattr(qc, ["cx", "cz", "swap"][rng.integers(3)])(int(a), int(b))
        else:
            getattr(qc, one_q[rng.integers(len(one_q))])(int(rng.integers(num_qubits)))
    return qc


class TestBasics:
    def test_ghz_counts(self):
        counts = StabilizerSimulator(seed=1).sample(ghz_circuit(3), shots=2000)
        assert set(counts) == {"000", "111"}
        assert abs(counts["000"] - 1000) < 150

    def test_deterministic_measurement(self):
        state = StabilizerSimulator().run(QuantumCircuit(2).x(1))
        assert state.expectation_z(0) == 1.0
        assert state.expectation_z(1) == -1.0

    def test_random_outcome_flagged(self):
        state = StabilizerSimulator().run(QuantumCircuit(1).h(0))
        assert state.expectation_z(0) == 0.0

    def test_non_clifford_rejected(self):
        qc = QuantumCircuit(1).t(0)
        with pytest.raises(ValueError):
            StabilizerSimulator().run(qc)

    def test_clifford_gate_list(self):
        assert "cx" in CLIFFORD_GATES and "t" not in CLIFFORD_GATES

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            StabilizerSimulator().sample(ghz_circuit(2), shots=0)

    def test_measurement_collapse_consistent(self):
        # Measuring both GHZ qubits must give correlated outcomes.
        rng = np.random.default_rng(5)
        base = StabilizerSimulator().run(ghz_circuit(2))
        for _ in range(20):
            state = base.copy()
            a = state.measure(0, rng)
            b = state.measure(1, rng)
            assert a == b


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_statevector(self, seed):
        qc = _random_clifford_circuit(3, 25, seed)
        dense = StatevectorSimulator().probabilities(qc)
        counts = StabilizerSimulator(seed=seed).sample(qc, shots=3000)
        empirical = counts_to_probabilities(counts, 3)
        assert total_variation_distance(dense, empirical) < 0.08

    def test_deterministic_z_matches_dense(self):
        for seed in range(4):
            qc = _random_clifford_circuit(2, 15, seed + 50)
            state = StabilizerSimulator().run(qc)
            dense = StatevectorSimulator().run(qc)
            for q in range(2):
                expected = dense.expectation_z(q)
                got = state.expectation_z(q)
                if abs(expected) > 1 - 1e-9:  # deterministic case
                    assert got == pytest.approx(expected, abs=1e-9)
                else:
                    assert got == 0.0 or abs(expected) < 1 - 1e-9


class TestScaling:
    def test_wide_ghz(self):
        n = 60
        qc = QuantumCircuit(n)
        qc.h(0)
        for q in range(n - 1):
            qc.cx(q, q + 1)
        counts = StabilizerSimulator(seed=3).sample(qc, shots=50)
        assert set(counts) <= {"0" * n, "1" * n}
