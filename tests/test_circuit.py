"""Unit tests for QuantumCircuit."""

import math

import numpy as np
import pytest

from repro.circuits import Gate, QuantumCircuit, ghz_circuit, random_circuit
from repro.linalg import allclose_up_to_global_phase, is_unitary


class TestConstruction:
    def test_needs_positive_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_append_validates_qubits(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.cx(0, 5)

    def test_builder_methods_chain(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.3, 1)
        assert len(qc) == 3

    def test_extend(self):
        qc = QuantumCircuit(2)
        qc.extend([Gate("h", (0,)), Gate("cx", (0, 1))])
        assert [g.name for g in qc] == ["h", "cx"]

    def test_equality_and_hash(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        assert a == b and hash(a) == hash(b)

    def test_copy_is_independent(self):
        a = QuantumCircuit(2).h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1 and len(b) == 2


class TestMetrics:
    def test_cnot_count_counts_entanglers(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cz(1, 2).swap(0, 2).rzz(0.4, 0, 1).crx(0.2, 0, 1)
        # crx is not a raw entangler; cx+cz+swap+rzz are
        assert qc.cnot_count == 4

    def test_gate_count_excludes_measure(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        qc.measure_all()
        assert qc.gate_count == 2

    def test_count_ops(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(2).h(0).h(1)
        assert qc.depth() == 1

    def test_depth_serial_chain(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        assert qc.depth() == 3

    def test_cnot_depth(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).h(1).cx(1, 2).cx(0, 1)
        assert qc.depth(two_qubit_only=True) == 3

    def test_duration_asap(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        # parallel 35ns layer + 300ns CX
        assert qc.duration() == pytest.approx(335.0)

    def test_duration_custom_times(self):
        qc = QuantumCircuit(1).h(0)
        assert qc.duration({"h": 50.0}) == pytest.approx(50.0)


class TestSemantics:
    def test_ghz_unitary_first_column(self):
        psi = ghz_circuit(3).unitary()[:, 0]
        assert abs(psi[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(psi[7]) == pytest.approx(1 / math.sqrt(2))

    def test_unitary_rejects_measured_circuit(self):
        qc = QuantumCircuit(1).h(0)
        qc.measure_all()
        with pytest.raises(ValueError):
            qc.unitary()

    def test_barrier_is_noop_for_unitary(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).h(0)
        b.barrier()
        assert np.allclose(a.unitary(), b.unitary())

    @pytest.mark.parametrize("seed", range(4))
    def test_inverse_composes_to_identity(self, seed):
        qc = random_circuit(3, 20, seed=seed)
        prod = qc.inverse().unitary() @ qc.unitary()
        assert allclose_up_to_global_phase(np.eye(8), prod)

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2).cx(0, 1)
        outer = QuantumCircuit(3)
        outer.compose(inner, qubits=[2, 0])
        assert outer.gates[0] == Gate("cx", (2, 0))

    def test_compose_wider_raises(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_remap(self):
        qc = QuantumCircuit(2).cx(0, 1)
        wide = qc.remap([3, 1], num_qubits=5)
        assert wide.num_qubits == 5
        assert wide.gates[0] == Gate("cx", (3, 1))

    def test_remap_preserves_semantics_under_permutation(self):
        qc = random_circuit(3, 15, seed=7)
        assert is_unitary(qc.remap([2, 0, 1]).unitary())

    def test_without_measurements(self):
        qc = QuantumCircuit(2).h(0)
        qc.measure_all()
        clean = qc.without_measurements()
        assert not clean.has_measurements()
        assert len(clean) == 1

    def test_draw_contains_gates(self):
        text = QuantumCircuit(2).h(0).cx(0, 1).draw(style="list")
        assert "h" in text and "cx" in text
        art = QuantumCircuit(2).h(0).cx(0, 1).draw()
        assert "[H]" in art and "●" in art
