"""Peephole optimisation passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.linalg import allclose_up_to_global_phase
from repro.transpile import (
    cancel_adjacent_cx,
    drop_trivial_gates,
    merge_single_qubit_gates,
    optimize_1q_2q,
    to_basis_gates,
)


class TestMergeSingleQubit:
    def test_merges_run_into_one_u3(self):
        qc = QuantumCircuit(1).h(0).t(0).s(0).h(0)
        merged = merge_single_qubit_gates(qc)
        assert len(merged) == 1 and merged.gates[0].name == "u3"
        assert allclose_up_to_global_phase(qc.unitary(), merged.unitary())

    def test_identity_product_dropped(self):
        qc = QuantumCircuit(1).h(0).h(0)
        assert len(merge_single_qubit_gates(qc)) == 0

    def test_two_qubit_gate_breaks_run(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(0)
        merged = merge_single_qubit_gates(qc)
        assert merged.count_ops().get("u3", 0) == 2

    def test_barrier_breaks_run(self):
        qc = QuantumCircuit(1).h(0)
        qc.barrier()
        qc.h(0)
        merged = merge_single_qubit_gates(qc)
        assert merged.count_ops().get("u3", 0) == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_semantics_preserved(self, seed):
        qc = random_circuit(3, 30, seed=seed)
        merged = merge_single_qubit_gates(qc)
        assert allclose_up_to_global_phase(qc.unitary(), merged.unitary())


class TestCancelCx:
    def test_adjacent_pair_cancels(self):
        qc = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_cx(qc)) == 0

    def test_reversed_direction_does_not_cancel(self):
        qc = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_cx(qc)) == 2

    def test_intervening_gate_blocks(self):
        qc = QuantumCircuit(2).cx(0, 1).h(1).cx(0, 1)
        assert cancel_adjacent_cx(qc).cnot_count == 2

    def test_intervening_gate_on_other_qubit_blocks_conservatively(self):
        qc = QuantumCircuit(3).cx(0, 1).h(2).cx(0, 1)
        # h(2) touches neither qubit — the pair is still adjacent
        assert cancel_adjacent_cx(qc).cnot_count == 0

    def test_hh_cancels(self):
        qc = QuantumCircuit(1).h(0).h(0)
        assert len(cancel_adjacent_cx(qc)) == 0

    def test_measure_blocks_cancellation(self):
        qc = QuantumCircuit(2).cx(0, 1)
        qc.measure_all()
        qc.cx(0, 1)
        assert cancel_adjacent_cx(qc).cnot_count == 2

    def test_cancellation_does_not_unblock_earlier_pairs(self):
        """Regression: after cancelling a pair, the last-gate bookkeeping
        must rewind to the previous *surviving* gate on each qubit —
        dropping it outright let a later CX cancel against a much earlier
        one across intervening blockers."""
        qc = QuantumCircuit(2)
        qc.cx(0, 1)  # A: must NOT cancel with D (B blocks it)
        qc.h(1)      # B: blocker between A and D
        qc.cx(0, 1)  # C1
        qc.cx(0, 1)  # C2: cancels with C1
        qc.cx(0, 1)  # D: with C1/C2 gone, nearest survivor on 0/1 is B/A
        out = cancel_adjacent_cx(qc)
        assert out.cnot_count == 2  # A and D both survive
        assert allclose_up_to_global_phase(qc.unitary(), out.unitary())

    def test_optimize_seed_8619_regression(self):
        """The hypothesis-found circuit that exposed the unsound
        cancellation (pair separated by surviving blockers was removed)."""
        qc = random_circuit(3, 20, seed=8619)
        out = optimize_1q_2q(to_basis_gates(qc))
        assert allclose_up_to_global_phase(qc.unitary(), out.unitary())


class TestDropTrivial:
    def test_drops_zero_rotations(self):
        qc = QuantumCircuit(2).rz(0.0, 0).rx(0.0, 1).rzz(0.0, 0, 1).u1(0.0, 0)
        assert len(drop_trivial_gates(qc)) == 0

    def test_keeps_nonzero(self):
        qc = QuantumCircuit(1).rz(0.5, 0)
        assert len(drop_trivial_gates(qc)) == 1

    def test_drops_id(self):
        qc = QuantumCircuit(1).id(0)
        assert len(drop_trivial_gates(qc)) == 0


class TestFixpoint:
    def test_cascading_cancellation(self):
        # cx h h cx -> cx cx -> empty, needs two rounds
        qc = QuantumCircuit(2).cx(0, 1).h(0).h(0).cx(0, 1)
        out = optimize_1q_2q(qc)
        assert len(out) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_never_increases_cnots(self, seed):
        qc = to_basis_gates(random_circuit(3, 30, seed=seed))
        out = optimize_1q_2q(qc)
        assert out.cnot_count <= qc.cnot_count
        assert allclose_up_to_global_phase(qc.unitary(), out.unitary())


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_optimize_preserves_unitary_property(seed):
    qc = random_circuit(3, 20, seed=seed)
    out = optimize_1q_2q(to_basis_gates(qc))
    assert allclose_up_to_global_phase(qc.unitary(), out.unitary())
