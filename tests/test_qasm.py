"""OpenQASM serialisation round-trips."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, from_qasm, random_circuit, to_qasm
from repro.linalg import allclose_up_to_global_phase


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits(self, seed):
        qc = random_circuit(3, 25, seed=seed)
        back = from_qasm(to_qasm(qc))
        assert back.num_qubits == qc.num_qubits
        assert allclose_up_to_global_phase(qc.unitary(), back.unitary())

    def test_pi_fraction_rendering(self):
        qc = QuantumCircuit(1).rz(math.pi / 2, 0).rz(-math.pi, 0).rz(3 * math.pi / 4, 0)
        text = to_qasm(qc)
        assert "pi/2" in text and "-pi" in text
        back = from_qasm(text)
        assert allclose_up_to_global_phase(qc.unitary(), back.unitary())

    def test_measurements_roundtrip(self):
        qc = QuantumCircuit(2).h(0)
        qc.measure_all()
        text = to_qasm(qc)
        assert "creg" in text and "measure" in text
        back = from_qasm(text)
        assert back.has_measurements()

    def test_barrier_roundtrip(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        back = from_qasm(to_qasm(qc))
        assert any(g.name == "barrier" for g in back)

    def test_three_qubit_gates(self):
        qc = QuantumCircuit(3).ccx(0, 1, 2).cswap(2, 0, 1)
        back = from_qasm(to_qasm(qc))
        assert allclose_up_to_global_phase(qc.unitary(), back.unitary())


class TestParsing:
    def test_unknown_gate_rejected(self):
        text = 'OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n'
        with pytest.raises(ValueError):
            from_qasm(text)

    def test_missing_qreg_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nh q[0];\n")

    def test_comments_ignored(self):
        text = 'OPENQASM 2.0;\nqreg q[1]; // register\nh q[0]; // hadamard\n'
        qc = from_qasm(text)
        assert qc.gates[0].name == "h"

    def test_expression_params(self):
        qc = from_qasm('OPENQASM 2.0;\nqreg q[1];\nrz(pi/4) q[0];\n')
        assert qc.gates[0].params[0] == pytest.approx(math.pi / 4)

    def test_malicious_param_rejected(self):
        with pytest.raises(ValueError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];\n')


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_roundtrip_property(seed):
    qc = random_circuit(2, 12, seed=seed)
    assert allclose_up_to_global_phase(
        qc.unitary(), from_qasm(to_qasm(qc)).unitary()
    )
