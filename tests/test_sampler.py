"""Shot sampling and counts utilities."""

import numpy as np
import pytest

from repro.sim import counts_to_probabilities, sample_counts


class TestSampling:
    def test_counts_sum_to_shots(self):
        probs = np.array([0.5, 0.25, 0.125, 0.125])
        counts = sample_counts(probs, 1000, seed=1)
        assert sum(counts.values()) == 1000

    def test_bitstrings_msb_first(self):
        probs = np.zeros(8)
        probs[0b110] = 1.0
        counts = sample_counts(probs, 10, seed=2)
        assert counts == {"110": 10}

    def test_deterministic_seed(self):
        probs = np.full(4, 0.25)
        a = sample_counts(probs, 100, seed=7)
        b = sample_counts(probs, 100, seed=7)
        assert a == b

    def test_law_of_large_numbers(self):
        probs = np.array([0.7, 0.3])
        counts = sample_counts(probs, 200_000, seed=3)
        assert counts["0"] / 200_000 == pytest.approx(0.7, abs=0.01)

    def test_unnormalised_input_normalised(self):
        counts = sample_counts(np.array([2.0, 2.0]), 100, seed=4)
        assert sum(counts.values()) == 100

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            sample_counts(np.zeros(4), 100)
        with pytest.raises(ValueError):
            sample_counts(np.array([1.0, 0.0]), 0)
        with pytest.raises(ValueError):
            sample_counts(np.ones(3), 10)

    def test_generator_seed(self):
        rng = np.random.default_rng(0)
        sample_counts(np.full(4, 0.25), 10, seed=rng)

    def test_head_sum_over_one_clamped(self):
        """Regression: a renormalised vector whose head (``pvals[:-1]``)
        sums a ULP past 1.0 made ``Generator.multinomial`` raise; the
        sampler must clamp instead of crashing."""
        probs = np.full(8, 1.0 / 7.0 + 1e-12)
        probs[7] = 0.0
        # The raw vector really does trip NumPy's validation.
        with pytest.raises(ValueError):
            np.random.default_rng(0).multinomial(10, probs)
        counts = sample_counts(probs, 1000, seed=6)
        assert sum(counts.values()) == 1000
        assert "111" not in counts  # zero-mass outcome stays zero

    def test_near_one_mass_single_outcome(self):
        probs = np.zeros(4)
        probs[2] = 1.0 - 1e-16
        probs[3] = 1e-16
        counts = sample_counts(probs, 500, seed=8)
        assert counts.get("10", 0) >= 499


class TestCountsToProbabilities:
    def test_roundtrip(self):
        counts = {"00": 50, "11": 50}
        probs = counts_to_probabilities(counts)
        assert probs[0b00] == 0.5 and probs[0b11] == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            counts_to_probabilities({})

    def test_inconsistent_width_rejected(self):
        with pytest.raises(ValueError):
            counts_to_probabilities({"00": 1, "111": 1})

    def test_explicit_width(self):
        probs = counts_to_probabilities({"01": 4}, num_qubits=2)
        assert probs.size == 4 and probs[1] == 1.0
