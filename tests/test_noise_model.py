"""NoiseModel lookup, structure, and sweep transformations."""

import pytest

from repro.circuits import Gate
from repro.noise import GateError, NoiseModel, ReadoutError


def _model():
    model = NoiseModel("m")
    model.add_gate_error(GateError(depolarizing=0.02), "cx", (0, 1))
    model.add_gate_error(GateError(depolarizing=0.05), "cx", (1, 2))
    model.add_gate_error(GateError(depolarizing=0.01), "cx", None)
    model.add_gate_error(GateError(depolarizing=1e-4), "u3", (0,))
    model.add_readout_error(ReadoutError(0.03, 0.06), 0)
    return model


class TestLookup:
    def test_exact_match(self):
        err = _model().gate_error(Gate("cx", (0, 1)))
        assert err.depolarizing == 0.02

    def test_reversed_direction_matches(self):
        err = _model().gate_error(Gate("cx", (1, 0)))
        assert err.depolarizing == 0.02

    def test_default_fallback(self):
        err = _model().gate_error(Gate("cx", (0, 2)))
        assert err.depolarizing == 0.01

    def test_unknown_gate_none(self):
        assert _model().gate_error(Gate("h", (0,))) is None

    def test_operations_compiled_on_gate_qubits(self):
        ops = _model().operations_for(Gate("cx", (1, 2)))
        assert len(ops) == 1
        channel, qubits = ops[0]
        assert qubits == (1, 2)
        assert channel.num_qubits == 2

    def test_trivial_error_produces_no_ops(self):
        model = NoiseModel()
        model.add_gate_error(GateError(depolarizing=0.0), "cx", None)
        assert model.operations_for(Gate("cx", (0, 1))) == []

    def test_thermal_component_per_qubit(self):
        model = NoiseModel()
        model.add_gate_error(
            GateError(
                depolarizing=0.01,
                t1s=(50e3, 60e3),
                t2s=(40e3, 50e3),
                duration=300.0,
            ),
            "cx",
            (0, 1),
        )
        ops = model.operations_for(Gate("cx", (0, 1)))
        # one 2q depolarizing + two 1q thermal channels
        assert len(ops) == 3
        assert ops[1][1] == (0,) and ops[2][1] == (1,)

    def test_readout(self):
        model = _model()
        assert model.readout_error(0) is not None
        assert model.readout_error(1) is None
        assert model.has_readout_error
        assert len(model.readout_errors(3)) == 3


class TestTransforms:
    def test_average_cnot_error(self):
        assert _model().average_cnot_error() == pytest.approx(0.035)

    def test_with_cnot_depolarizing(self):
        swept = _model().with_cnot_depolarizing(0.24)
        assert swept.gate_error(Gate("cx", (0, 1))).depolarizing == 0.24
        assert swept.gate_error(Gate("cx", (0, 2))).depolarizing == 0.24
        # unrelated gates untouched
        assert swept.gate_error(Gate("u3", (0,), (0.0, 0.0, 0.0))).depolarizing == 1e-4

    def test_sweep_does_not_mutate_original(self):
        model = _model()
        model.with_cnot_depolarizing(0.5)
        assert model.gate_error(Gate("cx", (0, 1))).depolarizing == 0.02

    def test_scaled(self):
        scaled = _model().scaled(2.0)
        assert scaled.gate_error(Gate("cx", (0, 1))).depolarizing == pytest.approx(0.04)

    def test_scaled_caps_at_one(self):
        model = NoiseModel()
        model.add_gate_error(GateError(depolarizing=0.8), "cx", None)
        assert model.scaled(5.0).gate_error(Gate("cx", (0, 1))).depolarizing == 1.0

    def test_copy_independent(self):
        model = _model()
        clone = model.copy()
        clone.add_gate_error(GateError(depolarizing=0.9), "cx", (0, 1))
        assert model.gate_error(Gate("cx", (0, 1))).depolarizing == 0.02


class TestGateError:
    def test_is_trivial(self):
        assert GateError().is_trivial
        assert not GateError(depolarizing=0.1).is_trivial

    def test_thermal_needs_matching_widths(self):
        err = GateError(depolarizing=0.0, t1s=(50e3,), t2s=(40e3,), duration=100.0)
        with pytest.raises(ValueError):
            err.compile(2)

    def test_with_depolarizing(self):
        err = GateError(depolarizing=0.1, duration=5.0)
        new = err.with_depolarizing(0.3)
        assert new.depolarizing == 0.3 and new.duration == 5.0
