"""Scheduling, delay gates and idle decoherence."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.linalg import allclose_up_to_global_phase
from repro.noise import NoiseModel, get_device
from repro.sim import DensityMatrixSimulator, StatevectorSimulator
from repro.transpile import (
    asap_schedule,
    insert_idle_delays,
    optimize_1q_2q,
    to_basis_gates,
)


class TestDelayGate:
    def test_identity_semantics(self):
        qc = QuantumCircuit(1).delay(500.0, 0)
        assert np.allclose(qc.unitary(), np.eye(2))

    def test_duration_contributes(self):
        qc = QuantumCircuit(1).delay(700.0, 0)
        assert qc.duration() == pytest.approx(700.0)

    def test_survives_basis_translation(self):
        qc = QuantumCircuit(2).h(0).delay(100.0, 1).cx(0, 1)
        out = to_basis_gates(qc)
        assert any(g.name == "delay" for g in out)

    def test_survives_optimisation(self):
        qc = QuantumCircuit(1).h(0).delay(100.0, 0).h(0)
        out = optimize_1q_2q(to_basis_gates(qc))
        # the delay blocks the h-h merge AND stays present
        assert any(g.name == "delay" for g in out)
        assert allclose_up_to_global_phase(qc.unitary(), out.unitary())

    def test_zero_delay_dropped(self):
        qc = QuantumCircuit(1).delay(0.0, 0)
        assert len(optimize_1q_2q(qc)) == 0

    def test_inverse_is_itself(self):
        qc = QuantumCircuit(1).delay(42.0, 0)
        assert qc.inverse().gates[0].name == "delay"


class TestASAPSchedule:
    def test_parallel_gates_same_start(self):
        qc = QuantumCircuit(2).h(0).h(1)
        sched = asap_schedule(qc)
        assert sched[0].start == sched[1].start == 0.0

    def test_dependencies_respected(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        sched = asap_schedule(qc)
        assert sched[1].start == pytest.approx(sched[0].finish)

    def test_custom_times(self):
        qc = QuantumCircuit(1).h(0).h(0)
        sched = asap_schedule(qc, {"h": 100.0})
        assert sched[1].start == pytest.approx(100.0)


class TestIdleDelays:
    def test_idle_window_materialised(self):
        # qubit 1 idles for one H (35 ns) before the CX reaches it... but
        # both start at 0; construct genuine idling: two serial gates on
        # qubit 0 while qubit 1 waits for the CX.
        qc = QuantumCircuit(2).h(0).h(0).cx(0, 1)
        out = insert_idle_delays(qc, pad_end=False)
        delays = [g for g in out if g.name == "delay"]
        assert len(delays) == 1
        assert delays[0].qubits == (1,)
        assert delays[0].params[0] == pytest.approx(70.0)

    def test_pad_end_aligns_all_qubits(self):
        qc = QuantumCircuit(2).h(0).h(0)
        out = insert_idle_delays(qc, pad_end=True)
        delays = [g for g in out if g.name == "delay"]
        assert any(g.qubits == (1,) for g in delays)

    def test_semantics_unchanged(self):
        qc = to_basis_gates(ghz_circuit(3))
        out = insert_idle_delays(qc)
        assert allclose_up_to_global_phase(qc.unitary(), out.unitary())

    def test_short_windows_skipped(self):
        qc = QuantumCircuit(2).h(0).h(0).cx(0, 1)
        out = insert_idle_delays(qc, min_idle=1000.0, pad_end=False)
        assert not any(g.name == "delay" for g in out)


class TestIdleNoise:
    def test_idle_relaxation_reduces_fidelity(self):
        circuit = to_basis_gates(ghz_circuit(3))
        with_delays = insert_idle_delays(circuit)
        model = get_device("rome").noise_model()
        ideal = StatevectorSimulator().run(circuit)
        plain = DensityMatrixSimulator(model).run(circuit)
        idled = DensityMatrixSimulator(model).run(with_delays)
        assert idled.fidelity_with_pure(ideal) < plain.fidelity_with_pure(ideal)

    def test_delay_without_registration_is_noiseless(self):
        model = NoiseModel()
        from repro.circuits import Gate

        assert model.operations_for(Gate("delay", (0,), (500.0,))) == []

    def test_registered_idle_produces_channel(self):
        model = NoiseModel()
        model.set_idle_relaxation(0, 50e3, 60e3)
        from repro.circuits import Gate

        ops = model.operations_for(Gate("delay", (0,), (500.0,)))
        assert len(ops) == 1
        channel, qubits = ops[0]
        assert qubits == (0,)
        assert channel.is_trace_preserving()

    def test_invalid_relaxation_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel().set_idle_relaxation(0, -1.0, 5.0)

    def test_idle_copied(self):
        model = NoiseModel()
        model.set_idle_relaxation(0, 50e3, 60e3)
        clone = model.copy()
        from repro.circuits import Gate

        assert clone.operations_for(Gate("delay", (0,), (100.0,)))
