"""Command-line interface."""

import pytest

from repro.cli import ABLATIONS, EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "toronto" in out and "0.01377" in out

    def test_table1(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Manhattan" in out and "completed" in out

    def test_fig16(self, capsys):
        assert main(["fig16", "--scale", "smoke"]) == 0
        assert "toronto" in capsys.readouterr().out

    def test_output_written(self, tmp_path, capsys):
        assert main(["table1", "--scale", "smoke", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_json_output_written(self, tmp_path, capsys):
        import json

        assert main(["fig16", "--scale", "smoke", "--output", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "fig16.json").read_text())
        assert payload["experiment"] == "fig16"
        assert payload["scale"] == "smoke"
        assert payload["kind"] == "text"

    def test_unknown_target(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["nonsense"])
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert "unknown target 'nonsense'" in err
        assert "fig02" in err and "ablations:selection" in err

    def test_unrecognized_flag_rejected(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["fig16", "--bogus"])
        assert info.value.code == 2

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_single_ablation(self, capsys):
        assert main(["ablations:objective", "--scale", "smoke"]) == 0
        assert "smooth" in capsys.readouterr().out

    def test_registry_covers_every_figure(self):
        expected = {f"fig{n:02d}" for n in range(2, 20)} | {"fig07b", "table1"}
        assert expected == set(EXPERIMENTS)
        assert set(ABLATIONS) == {
            "selection",
            "objective",
            "warmstart",
            "suite",
            "mitigation",
        }


class TestReport:
    def test_collate_and_write(self, tmp_path):
        from repro.experiments import collate_results, write_report

        (tmp_path / "table1.txt").write_text("[table1] demo\n")
        collected = collate_results(tmp_path)
        assert collected == {"table1": "[table1] demo"}
        out = write_report(tmp_path, tmp_path / "REPORT.md", scale_name="smoke")
        text = out.read_text()
        assert "[table1] demo" in text
        assert "not yet generated" in text  # other artifacts missing

    def test_empty_results_dir(self, tmp_path):
        from repro.experiments import write_report

        out = write_report(tmp_path / "nope", tmp_path / "REPORT.md")
        assert "not yet generated" in out.read_text()
