"""Kraus channels: CPTP properties and known fixed points."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.channels import (
    KrausChannel,
    ReadoutError,
    amplitude_damping_channel,
    apply_readout_errors,
    bit_flip_channel,
    compose_channels,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)

ALL_FACTORIES = [
    lambda: identity_channel(),
    lambda: depolarizing_channel(0.13),
    lambda: depolarizing_channel(0.08, 2),
    lambda: bit_flip_channel(0.2),
    lambda: phase_flip_channel(0.3),
    lambda: amplitude_damping_channel(0.4),
    lambda: phase_damping_channel(0.25),
    lambda: thermal_relaxation_channel(70_000, 90_000, 400),
    lambda: pauli_channel({"I": 0.8, "X": 0.1, "Y": 0.05, "Z": 0.05}),
]


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_trace_preserving(factory):
    assert factory().is_trace_preserving()


def _rand_dm(n, seed=0):
    rng = np.random.default_rng(seed)
    d = 2**n
    a = rng.normal(size=(d, d)) + 1j * rng.normal(size=(d, d))
    rho = a @ a.conj().T
    return rho / np.trace(rho)


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_apply_preserves_trace_and_positivity(factory):
    channel = factory()
    n = max(2, channel.num_qubits)
    rho = _rand_dm(n, seed=3)
    qubits = tuple(range(channel.num_qubits))
    out = channel.apply(rho, qubits, n)
    assert np.trace(out).real == pytest.approx(1.0)
    eigs = np.linalg.eigvalsh((out + out.conj().T) / 2)
    assert eigs.min() > -1e-10


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_superoperator_matches_kraus_sum(factory):
    channel = factory()
    n = channel.num_qubits + 1
    rho = _rand_dm(n, seed=11)
    qubits = tuple(range(channel.num_qubits))
    fast = channel.apply(rho, qubits, n)
    slow = channel.apply_reference(rho, qubits, n)
    assert np.allclose(fast, slow, atol=1e-12)


class TestDepolarizing:
    def test_full_mix_at_p_one(self):
        rho = np.diag([1.0, 0.0]).astype(complex)
        out = depolarizing_channel(1.0).apply(rho, (0,), 1)
        assert np.allclose(out, np.eye(2) / 2)

    def test_identity_at_p_zero(self):
        rho = _rand_dm(1, 5)
        out = depolarizing_channel(0.0).apply(rho, (0,), 1)
        assert np.allclose(out, rho)

    def test_unital(self):
        assert depolarizing_channel(0.3).is_unital()
        assert depolarizing_channel(0.3, 2).is_unital()

    def test_linear_contraction(self):
        """E(rho) = (1-p) rho + p I/d exactly."""
        p = 0.37
        rho = _rand_dm(1, 7)
        out = depolarizing_channel(p).apply(rho, (0,), 1)
        assert np.allclose(out, (1 - p) * rho + p * np.eye(2) / 2)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            depolarizing_channel(1.5)

    def test_average_fidelity_formula(self):
        p = 0.1
        f = depolarizing_channel(p).average_fidelity()
        assert f == pytest.approx(1 - p / 2, abs=1e-12)


class TestAmplitudeDamping:
    def test_ground_state_fixed(self):
        rho = np.diag([1.0, 0.0]).astype(complex)
        out = amplitude_damping_channel(0.5).apply(rho, (0,), 1)
        assert np.allclose(out, rho)

    def test_excited_population_decays(self):
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = amplitude_damping_channel(0.3).apply(rho, (0,), 1)
        assert out[1, 1].real == pytest.approx(0.7)

    def test_not_unital(self):
        assert not amplitude_damping_channel(0.3).is_unital()


class TestThermalRelaxation:
    def test_t1_population_decay(self):
        t1, t2, t = 50_000.0, 70_000.0, 25_000.0
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = thermal_relaxation_channel(t1, t2, t).apply(rho, (0,), 1)
        assert out[1, 1].real == pytest.approx(math.exp(-t / t1), abs=1e-9)

    def test_t2_coherence_decay(self):
        t1, t2, t = 50_000.0, 60_000.0, 30_000.0
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = thermal_relaxation_channel(t1, t2, t).apply(rho, (0,), 1)
        assert abs(out[0, 1]) == pytest.approx(0.5 * math.exp(-t / t2), abs=1e-9)

    def test_unphysical_t2_rejected(self):
        with pytest.raises(ValueError):
            thermal_relaxation_channel(10.0, 25.0, 1.0)

    def test_zero_time_is_identity(self):
        rho = _rand_dm(1, 13)
        out = thermal_relaxation_channel(50e3, 60e3, 0.0).apply(rho, (0,), 1)
        assert np.allclose(out, rho)


class TestComposition:
    def test_compose_order(self):
        rho = np.diag([0.0, 1.0]).astype(complex)
        combined = compose_channels(
            amplitude_damping_channel(0.5), bit_flip_channel(1.0)
        )
        out = combined.apply(rho, (0,), 1)
        # damp first (p1 -> 0.5), then flip: p(|1>) = 0.5
        assert out[0, 0].real == pytest.approx(0.5)

    def test_expand_dimensions(self):
        two = depolarizing_channel(0.1).expand(identity_channel())
        assert two.num_qubits == 2
        assert two.is_trace_preserving()

    def test_pauli_channel_probability_validation(self):
        with pytest.raises(ValueError):
            pauli_channel({"I": 0.5, "X": 0.2})


class TestReadoutError:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReadoutError(1.2, 0.0)

    def test_assignment_fidelity(self):
        assert ReadoutError(0.02, 0.04).assignment_fidelity == pytest.approx(0.97)

    def test_confusion_columns_sum_to_one(self):
        m = ReadoutError(0.03, 0.07).matrix
        assert np.allclose(m.sum(axis=0), 1.0)

    def test_apply_single_qubit(self):
        probs = np.array([1.0, 0.0])
        out = apply_readout_errors(probs, [ReadoutError(0.1, 0.2)])
        assert np.allclose(out, [0.9, 0.1])

    def test_apply_preserves_mass(self):
        rng = np.random.default_rng(5)
        probs = rng.random(8)
        probs /= probs.sum()
        errors = [ReadoutError(0.05, 0.1), None, ReadoutError(0.2, 0.02)]
        out = apply_readout_errors(probs, errors)
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()

    def test_identity_when_all_none(self):
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        assert np.allclose(apply_readout_errors(probs, [None, None]), probs)


@settings(max_examples=25, deadline=None)
@given(
    p=st.floats(0.0, 1.0),
    n=st.integers(1, 2),
)
def test_depolarizing_cptp_property(p, n):
    ch = depolarizing_channel(p, n)
    assert ch.is_trace_preserving()
    assert ch.is_unital()
