"""Quantum-volume protocol tests."""

import numpy as np
import pytest

from repro.experiments import IdealBackend, NoiseModelBackend
from repro.hardware.quantum_volume import (
    HOP_THRESHOLD,
    QVWidthResult,
    achieved_quantum_volume,
    heavy_output_probability,
    heavy_outputs,
    measure_quantum_volume,
    qv_model_circuit,
)
from repro.linalg import is_unitary
from repro.noise import get_device


class TestModelCircuits:
    def test_width_and_basis(self):
        qc = qv_model_circuit(3, seed=1)
        assert qc.num_qubits == 3
        assert all(g.name in ("u3", "cx") for g in qc)

    def test_unitary(self):
        assert is_unitary(qv_model_circuit(2, seed=2).unitary())

    def test_deterministic(self):
        assert qv_model_circuit(2, seed=3) == qv_model_circuit(2, seed=3)

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            qv_model_circuit(1, seed=0)


class TestHeavyOutputs:
    def test_half_are_heavy_for_generic_dist(self):
        rng = np.random.default_rng(0)
        probs = rng.random(16)
        probs /= probs.sum()
        heavy = heavy_outputs(probs)
        assert 4 <= len(heavy) <= 12

    def test_uniform_has_no_heavy(self):
        assert len(heavy_outputs(np.full(8, 1 / 8))) == 0

    def test_ideal_backend_hop_above_threshold(self):
        qc = qv_model_circuit(2, seed=7)
        hop = heavy_output_probability(qc, IdealBackend())
        assert hop > HOP_THRESHOLD


class TestProtocol:
    def test_ideal_passes(self):
        results = measure_quantum_volume(
            IdealBackend(), widths=(2,), circuits_per_width=3
        )
        assert results[2].passed
        assert achieved_quantum_volume(results) == 4

    def test_heavy_noise_fails(self):
        backend = NoiseModelBackend(
            get_device("rome").noise_model().scaled(10.0)
        )
        results = measure_quantum_volume(
            backend, widths=(2,), circuits_per_width=3
        )
        assert not results[2].passed
        assert achieved_quantum_volume(results) == 1

    def test_width_result_stats(self):
        r = QVWidthResult(3, hops=[0.7, 0.8])
        assert r.mean_hop == pytest.approx(0.75)
        assert r.passed and r.quantum_volume == 8
        assert not QVWidthResult(3, hops=[0.5]).passed
