"""Process/state tomography: the model layer verified from outside."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.linalg import haar_state
from repro.linalg.pauli import PauliString
from repro.noise import (
    GateError,
    NoiseModel,
    amplitude_damping_channel,
    depolarizing_channel,
)
from repro.noise.channels import KrausChannel
from repro.noise.tomography import (
    choi_matrix,
    process_fidelity_to_channel,
    process_tomography,
    state_tomography,
)
from repro.sim import DensityMatrixSimulator


def _noisy_process(gate_name: str, qubits, error: float, width: int):
    model = NoiseModel()
    model.add_gate_error(GateError(depolarizing=error), gate_name, None)
    sim = DensityMatrixSimulator(model)

    def apply_process(prep: QuantumCircuit) -> np.ndarray:
        circuit = prep.copy()
        getattr(circuit, gate_name)(*qubits)
        return sim.run(circuit).data

    return apply_process


class TestStateTomography:
    def test_reconstructs_pure_state(self):
        psi = haar_state(2, seed=3)
        rho = np.outer(psi, psi.conj())

        def expectation(label):
            return float(
                np.real(np.trace(PauliString(label).to_matrix() @ rho))
            )

        reconstructed = state_tomography(expectation, 2)
        assert np.allclose(reconstructed, rho, atol=1e-10)

    def test_reconstructs_mixed_state(self, rng):
        a = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        rho = a @ a.conj().T
        rho /= np.trace(rho)

        def expectation(label):
            return float(
                np.real(np.trace(PauliString(label).to_matrix() @ rho))
            )

        assert np.allclose(state_tomography(expectation, 1), rho, atol=1e-10)


class TestProcessTomography:
    def test_recovers_noisy_1q_gate(self):
        apply = _noisy_process("y", (0,), 0.1, 1)
        measured = process_tomography(apply, 1)
        expected = KrausChannel([gate_matrix("y")]).compose(
            depolarizing_channel(0.1)
        )
        assert np.allclose(measured, expected.superoperator(), atol=1e-10)
        assert process_fidelity_to_channel(measured, expected) == pytest.approx(1.0)

    def test_recovers_noisy_cx(self):
        apply = _noisy_process("cx", (0, 1), 0.05, 2)
        measured = process_tomography(apply, 2)
        expected = KrausChannel([gate_matrix("cx")]).compose(
            depolarizing_channel(0.05, 2)
        )
        assert np.allclose(measured, expected.superoperator(), atol=1e-9)

    def test_recovers_amplitude_damping(self):
        channel = amplitude_damping_channel(0.3)

        def apply(prep: QuantumCircuit) -> np.ndarray:
            rho = DensityMatrixSimulator().run(prep).data
            return channel.apply(rho, (0,), 1)

        measured = process_tomography(apply, 1)
        assert np.allclose(measured, channel.superoperator(), atol=1e-10)

    def test_identity_process(self):
        def apply(prep: QuantumCircuit) -> np.ndarray:
            return DensityMatrixSimulator().run(prep).data

        measured = process_tomography(apply, 1)
        assert np.allclose(measured, np.eye(4), atol=1e-10)

    def test_width_limit(self):
        with pytest.raises(ValueError):
            process_tomography(lambda prep: None, 3)


class TestChoi:
    def test_cptp_channel_gives_psd_choi(self):
        for factory in (
            lambda: depolarizing_channel(0.2),
            lambda: amplitude_damping_channel(0.4),
        ):
            choi = choi_matrix(factory().superoperator())
            eigs = np.linalg.eigvalsh((choi + choi.conj().T) / 2)
            assert eigs.min() > -1e-10
            assert np.trace(choi).real == pytest.approx(2.0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            choi_matrix(np.eye(3))

    def test_fidelity_discriminates(self):
        depol = depolarizing_channel(0.2)
        damp = amplitude_damping_channel(0.4)
        same = process_fidelity_to_channel(depol.superoperator(), depol)
        cross = process_fidelity_to_channel(damp.superoperator(), depol)
        assert same == pytest.approx(1.0)
        assert cross < same
