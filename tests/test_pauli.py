"""Pauli-string algebra tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import haar_state
from repro.linalg.pauli import PauliString, PauliSum

PAULI_LABELS = st.text(alphabet="IXYZ", min_size=1, max_size=4)


class TestPauliString:
    def test_invalid_label(self):
        with pytest.raises(ValueError):
            PauliString("AB")
        with pytest.raises(ValueError):
            PauliString("")

    def test_from_sparse(self):
        p = PauliString.from_sparse(3, {0: "X", 2: "Z"})
        assert p.label == "ZIX"
        assert p.letter(0) == "X" and p.letter(2) == "Z"

    def test_from_sparse_range_check(self):
        with pytest.raises(ValueError):
            PauliString.from_sparse(2, {5: "X"})

    def test_weight(self):
        assert PauliString("IXYI").weight == 2
        assert PauliString("III").weight == 0

    def test_matrix_kron_order(self):
        zx = PauliString("ZX").to_matrix()
        z = PauliString("Z").to_matrix()
        x = PauliString("X").to_matrix()
        assert np.allclose(zx, np.kron(z, x))

    def test_single_qubit_products(self):
        x, y, z = PauliString("X"), PauliString("Y"), PauliString("Z")
        assert x.mul(y) == (1j, z)
        assert y.mul(x) == (-1j, z)
        assert z.mul(z) == (1, PauliString("I"))

    def test_product_matches_matrices(self):
        a, b = PauliString("XZY"), PauliString("YIZ")
        phase, result = a.mul(b)
        assert np.allclose(
            phase * result.to_matrix(), a.to_matrix() @ b.to_matrix()
        )

    def test_commutation(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))
        assert not PauliString("XI").commutes_with(PauliString("ZI"))
        assert PauliString("XI").commutes_with(PauliString("IZ"))

    def test_diagonal_signs(self):
        signs = PauliString("ZZ").diagonal_signs()
        assert list(signs) == [1.0, -1.0, -1.0, 1.0]

    def test_non_diagonal_rejected_for_signs(self):
        with pytest.raises(ValueError):
            PauliString("XZ").diagonal_signs()

    def test_expectation_diagonal_vs_dense(self):
        psi = haar_state(3, seed=1)
        p = PauliString("ZIZ")
        dense = np.real(np.vdot(psi, p.to_matrix() @ psi))
        assert p.expectation(psi) == pytest.approx(dense)

    def test_expectation_off_diagonal(self):
        psi = haar_state(2, seed=2)
        p = PauliString("XY")
        dense = np.real(np.vdot(psi, p.to_matrix() @ psi))
        assert p.expectation(psi) == pytest.approx(dense)

    def test_hashable(self):
        assert len({PauliString("XZ"), PauliString("XZ")}) == 1


class TestPauliSum:
    def test_terms_merge(self):
        s = PauliSum({"ZZ": 1.0})
        s.add(PauliString("ZZ"), 2.0)
        assert s.terms == {"ZZ": 3.0}

    def test_cancelling_terms_vanish(self):
        s = PauliSum({"XX": 1.0})
        s.add(PauliString("XX"), -1.0)
        assert len(s) == 0

    def test_width_mismatch(self):
        s = PauliSum({"ZZ": 1.0})
        with pytest.raises(ValueError):
            s.add(PauliString("Z"))

    def test_matrix_hermitian_for_real_coeffs(self):
        s = PauliSum({"ZZ": -1.0, "XI": 0.3, "IX": 0.3})
        m = s.to_matrix()
        assert np.allclose(m, m.conj().T)
        assert s.is_hermitian()

    def test_evolution_unitary(self):
        s = PauliSum({"ZZ": 0.5, "XI": 0.2})
        u = s.evolution_unitary(1.3)
        assert np.allclose(u @ u.conj().T, np.eye(4), atol=1e-10)

    def test_scalar_multiplication(self):
        s = 2.0 * PauliSum({"Z": 0.5})
        assert s.terms == {"Z": 1.0}

    def test_addition(self):
        s = PauliSum({"Z": 1.0}) + PauliSum({"X": 2.0})
        assert s.terms == {"Z": 1.0, "X": 2.0}

    def test_expectation_linear(self):
        psi = haar_state(2, seed=3)
        s = PauliSum({"ZZ": 0.7, "XX": -0.2})
        manual = 0.7 * PauliString("ZZ").expectation(psi) - 0.2 * PauliString(
            "XX"
        ).expectation(psi)
        assert s.expectation(psi) == pytest.approx(manual)


@settings(max_examples=40, deadline=None)
@given(PAULI_LABELS, PAULI_LABELS)
def test_pauli_product_property(a_label, b_label):
    """Property: symbolic products match dense matrix products."""
    n = max(len(a_label), len(b_label))
    a = PauliString(a_label.ljust(n, "I"))
    b = PauliString(b_label.ljust(n, "I"))
    phase, result = a.mul(b)
    assert np.allclose(
        phase * result.to_matrix(), a.to_matrix() @ b.to_matrix()
    )
    # Commutation flag agrees with matrices.
    comm = a.to_matrix() @ b.to_matrix() - b.to_matrix() @ a.to_matrix()
    assert a.commutes_with(b) == bool(np.allclose(comm, 0))
