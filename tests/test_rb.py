"""Randomized benchmarking: the calibration loop closed."""

import numpy as np
import pytest

from repro.hardware import clifford_1q_gates, fit_rb_decay, rb_sequence, run_rb
from repro.hardware.randomized_benchmarking import _CLIFFORD_DEFS, _clifford_unitary
from repro.linalg import allclose_up_to_global_phase
from repro.noise import GateError, NoiseModel
from repro.sim import DensityMatrixSimulator, StatevectorSimulator


class TestCliffordGroup:
    def test_twenty_four_distinct_elements(self):
        unitaries = [_clifford_unitary(i) for i in range(24)]
        for i in range(24):
            for j in range(i):
                assert not allclose_up_to_global_phase(
                    unitaries[i], unitaries[j]
                ), (i, j)

    def test_sequences_are_short(self):
        assert max(len(d) for d in _CLIFFORD_DEFS) <= 7

    def test_index_validation(self):
        with pytest.raises(ValueError):
            clifford_1q_gates(24)

    def test_gate_list_matches_unitary(self):
        from repro.circuits import QuantumCircuit

        for index in (0, 5, 12, 23):
            qc = QuantumCircuit(1)
            qc.extend(clifford_1q_gates(index))
            assert allclose_up_to_global_phase(
                qc.unitary(), _clifford_unitary(index)
            )


class TestSequences:
    @pytest.mark.parametrize("length", [0, 1, 7, 25])
    def test_ideal_survival_is_one(self, length):
        circuit = rb_sequence(length, seed=length)
        probs = StatevectorSimulator().probabilities(circuit)
        assert probs[0] == pytest.approx(1.0, abs=1e-9)

    def test_deterministic_for_seed(self):
        assert rb_sequence(5, seed=1) == rb_sequence(5, seed=1)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            rb_sequence(-1)


class TestFitting:
    def test_exact_exponential_recovered(self):
        a, p, b = 0.5, 0.97, 0.5
        lengths = [1, 2, 4, 8, 16, 32]
        values = [a * p**m + b for m in lengths]
        fa, fp, fb = fit_rb_decay(lengths, values)
        assert fp == pytest.approx(p, abs=1e-6)
        assert fa == pytest.approx(a, abs=1e-6)
        assert fb == pytest.approx(b, abs=1e-6)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_rb_decay([1, 2], [0.9, 0.8])


class TestProtocol:
    def _backend(self, depol: float, readout=None):
        model = NoiseModel()
        for g in ("h", "s", "u3"):
            model.add_gate_error(GateError(depolarizing=depol), g, None)
        if readout is not None:
            from repro.noise import ReadoutError

            model.add_readout_error(ReadoutError(*readout), 0)
        sim = DensityMatrixSimulator(model)

        class Backend:
            def run(self, c):
                return sim.probabilities(c)

        return Backend()

    def test_recovers_injected_noise_scale(self):
        result = run_rb(
            self._backend(0.01), lengths=(1, 4, 8, 16, 32),
            sequences_per_length=4,
        )
        # Each Clifford averages a few H/S gates; error per Clifford must
        # land within a factor ~4 of the per-gate rate.
        assert 0.004 < result.error_per_clifford < 0.04

    def test_more_noise_faster_decay(self):
        low = run_rb(self._backend(0.005), lengths=(1, 8, 24), sequences_per_length=3)
        high = run_rb(self._backend(0.03), lengths=(1, 8, 24), sequences_per_length=3)
        assert high.decay < low.decay

    def test_readout_error_does_not_bias_decay(self):
        """RB's defining property: SPAM error moves A/B, not p."""
        clean = run_rb(
            self._backend(0.02), lengths=(1, 6, 16, 32), sequences_per_length=4
        )
        spam = run_rb(
            self._backend(0.02, readout=(0.05, 0.08)),
            lengths=(1, 6, 16, 32),
            sequences_per_length=4,
        )
        assert spam.decay == pytest.approx(clean.decay, abs=0.01)

    def test_rows_render(self):
        result = run_rb(self._backend(0.01), lengths=(1, 4, 8), sequences_per_length=2)
        assert "error/Clifford" in result.rows()


class TestInterleavedRB:
    def _backend(self, base: float, x_error: float):
        model = NoiseModel()
        for g in ("h", "s", "u3"):
            model.add_gate_error(GateError(depolarizing=base), g, None)
        model.add_gate_error(GateError(depolarizing=x_error), "x", None)
        sim = DensityMatrixSimulator(model)

        class Backend:
            def run(self, c):
                return sim.probabilities(c)

        return Backend()

    def test_ideal_interleaved_survival(self):
        from repro.circuits import Gate
        from repro.hardware import interleaved_rb_sequence

        for m in (0, 4, 12):
            circuit = interleaved_rb_sequence(m, Gate("x", (0,)), seed=m)
            probs = StatevectorSimulator().probabilities(circuit)
            assert probs[0] == pytest.approx(1.0, abs=1e-9)

    def test_isolates_target_gate_error(self):
        from repro.circuits import Gate
        from repro.hardware import run_interleaved_rb

        _std, _inter, err = run_interleaved_rb(
            self._backend(0.002, 0.02),
            Gate("x", (0,)),
            lengths=(1, 4, 8, 16, 32),
            sequences_per_length=3,
        )
        # Injected x error is 0.02 depolarizing ~ 0.01 average error.
        assert 0.005 < err < 0.02

    def test_two_qubit_gate_rejected(self):
        from repro.circuits import Gate
        from repro.hardware import interleaved_rb_sequence

        with pytest.raises(ValueError):
            interleaved_rb_sequence(3, Gate("cx", (0, 1)))
