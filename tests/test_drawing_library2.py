"""ASCII circuit drawing and the extended circuit library."""

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    bell_pair,
    bind_parameters,
    draw_circuit,
    ghz_circuit,
    hardware_efficient_ansatz,
    w_state_circuit,
)
from repro.linalg import is_unitary
from repro.sim import StatevectorSimulator


class TestDrawing:
    def test_one_line_per_qubit(self):
        art = draw_circuit(ghz_circuit(3))
        lines = art.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0:")

    def test_cx_symbols(self):
        art = draw_circuit(QuantumCircuit(2).cx(0, 1))
        assert "●" in art and "X" in art

    def test_vertical_connector_spans_gap(self):
        art = draw_circuit(QuantumCircuit(3).cx(0, 2))
        middle = art.splitlines()[1]
        assert "│" in middle

    def test_parallel_gates_share_column(self):
        art_parallel = draw_circuit(QuantumCircuit(2).h(0).h(1))
        art_serial = draw_circuit(QuantumCircuit(2).h(0).h(0))
        assert len(art_parallel.splitlines()[0]) < len(
            art_serial.splitlines()[0]
        )

    def test_measure_and_barrier_rendered(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.measure_all()
        art = draw_circuit(qc)
        assert "░" in art and "[M]" in art

    def test_params_rendered(self):
        art = draw_circuit(QuantumCircuit(1).rx(0.5, 0))
        assert "RX(0.5)" in art

    def test_max_width_truncates(self):
        qc = QuantumCircuit(1)
        for _ in range(50):
            qc.h(0)
        art = draw_circuit(qc, max_width=40)
        assert all(len(line) <= 41 for line in art.splitlines())
        assert "…" in art

    def test_circuit_draw_method(self):
        assert "●" in ghz_circuit(2).draw()
        assert "h" in ghz_circuit(2).draw(style="list")
        with pytest.raises(ValueError):
            ghz_circuit(2).draw(style="png")


class TestExtendedLibrary:
    def test_bell_pair(self):
        probs = StatevectorSimulator().probabilities(bell_pair())
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_w_state_amplitudes(self, n):
        probs = StatevectorSimulator().probabilities(w_state_circuit(n))
        for k in range(n):
            assert probs[1 << k] == pytest.approx(1.0 / n, abs=1e-9)
        assert probs.sum() == pytest.approx(1.0)

    def test_w_state_minimum_width(self):
        with pytest.raises(ValueError):
            w_state_circuit(1)

    def test_hea_parameter_count(self):
        qc, params = hardware_efficient_ansatz(3, 2)
        assert len(params) == 2 * 3 * 2
        assert qc.cnot_count == 2 * 2

    def test_hea_binds_to_unitary(self):
        qc, params = hardware_efficient_ansatz(2, 1)
        bound = bind_parameters(qc, {p.name: 0.3 for p in params})
        assert is_unitary(bound.unitary())

    def test_hea_distinct_parameter_names(self):
        _qc, params = hardware_efficient_ansatz(3, 3)
        names = [p.name for p in params]
        assert len(names) == len(set(names))
