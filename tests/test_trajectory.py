"""Trajectory simulator: unravelling correctness and statistics."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.metrics import total_variation_distance
from repro.noise import GateError, NoiseModel, get_device
from repro.sim import DensityMatrixSimulator, StatevectorSimulator
from repro.sim.trajectory import TrajectorySimulator


class TestNoiseless:
    def test_single_shot_matches_statevector(self):
        circuit = ghz_circuit(3)
        traj = TrajectorySimulator(seed=0).run_single_shot(circuit)
        ideal = StatevectorSimulator().run(circuit).data
        assert np.allclose(traj, ideal)

    def test_counts_shape(self):
        counts = TrajectorySimulator(seed=1).run(ghz_circuit(2), shots=100)
        assert sum(counts.values()) == 100
        assert set(counts) <= {"00", "11"}


class TestNoisy:
    def test_unravels_density_matrix(self):
        """Mean over trajectories converges to the density-matrix result."""
        model = get_device("ourense").noise_model()
        circuit = ghz_circuit(3)
        dm = DensityMatrixSimulator(model).probabilities(circuit)
        tj = TrajectorySimulator(model, seed=3).probabilities(circuit, shots=4000)
        assert total_variation_distance(dm, tj) < 0.05

    def test_norm_preserved_per_shot(self):
        model = NoiseModel()
        model.add_gate_error(GateError(depolarizing=0.3), "cx", None)
        sim = TrajectorySimulator(model, seed=2)
        qc = QuantumCircuit(2).h(0).cx(0, 1).cx(0, 1).cx(0, 1)
        for _ in range(10):
            state = sim.run_single_shot(qc)
            assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_deterministic_with_seed(self):
        model = get_device("rome").noise_model()
        a = TrajectorySimulator(model, seed=9).run(ghz_circuit(2), shots=200)
        b = TrajectorySimulator(model, seed=9).run(ghz_circuit(2), shots=200)
        assert a == b

    def test_readout_error_applied(self):
        model = get_device("rome").noise_model()
        qc = QuantumCircuit(2)  # identity circuit
        counts = TrajectorySimulator(model, seed=5).run(qc, shots=3000)
        assert counts.get("00", 0) < 3000  # readout flips some shots
        clean = TrajectorySimulator(model, seed=5).run(
            qc, shots=3000, with_readout_error=False
        )
        assert clean == {"00": 3000}

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            TrajectorySimulator().run(ghz_circuit(2), shots=0)
