"""Trajectory simulator: unravelling correctness and statistics."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.metrics import total_variation_distance
from repro.noise import GateError, NoiseModel, get_device
from repro.sim import DensityMatrixSimulator, StatevectorSimulator
from repro.sim.trajectory import TrajectorySimulator


class TestNoiseless:
    def test_single_shot_matches_statevector(self):
        circuit = ghz_circuit(3)
        traj = TrajectorySimulator(seed=0).run_single_shot(circuit)
        ideal = StatevectorSimulator().run(circuit).data
        assert np.allclose(traj, ideal)

    def test_counts_shape(self):
        counts = TrajectorySimulator(seed=1).run(ghz_circuit(2), shots=100)
        assert sum(counts.values()) == 100
        assert set(counts) <= {"00", "11"}


class TestNoisy:
    def test_unravels_density_matrix(self):
        """Mean over trajectories converges to the density-matrix result."""
        model = get_device("ourense").noise_model()
        circuit = ghz_circuit(3)
        dm = DensityMatrixSimulator(model).probabilities(circuit)
        tj = TrajectorySimulator(model, seed=3).probabilities(circuit, shots=4000)
        assert total_variation_distance(dm, tj) < 0.05

    def test_norm_preserved_per_shot(self):
        model = NoiseModel()
        model.add_gate_error(GateError(depolarizing=0.3), "cx", None)
        sim = TrajectorySimulator(model, seed=2)
        qc = QuantumCircuit(2).h(0).cx(0, 1).cx(0, 1).cx(0, 1)
        for _ in range(10):
            state = sim.run_single_shot(qc)
            assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_deterministic_with_seed(self):
        model = get_device("rome").noise_model()
        a = TrajectorySimulator(model, seed=9).run(ghz_circuit(2), shots=200)
        b = TrajectorySimulator(model, seed=9).run(ghz_circuit(2), shots=200)
        assert a == b

    def test_readout_error_applied(self):
        model = get_device("rome").noise_model()
        qc = QuantumCircuit(2)  # identity circuit
        counts = TrajectorySimulator(model, seed=5).run(qc, shots=3000)
        assert counts.get("00", 0) < 3000  # readout flips some shots
        clean = TrajectorySimulator(model, seed=5).run(
            qc, shots=3000, with_readout_error=False
        )
        assert clean == {"00": 3000}

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            TrajectorySimulator().run(ghz_circuit(2), shots=0)


class TestBatchedEngine:
    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            TrajectorySimulator(method="vectorised")
        with pytest.raises(ValueError):
            TrajectorySimulator().run(ghz_circuit(2), method="vectorised")

    def test_batched_equals_per_shot_exactly(self):
        """The two execution paths share per-shot streams and kernel, so
        counts must be identical, not merely close."""
        model = get_device("ourense").noise_model()
        circuit = ghz_circuit(3)
        batched = TrajectorySimulator(model, seed=21, method="batched").run(
            circuit, shots=300
        )
        per_shot = TrajectorySimulator(model, seed=21, method="per_shot").run(
            circuit, shots=300
        )
        assert batched == per_shot

    def test_shard_invariance(self):
        """run(n) twice merges to exactly run(2n): shot seeding continues
        the SeedSequence spawn numbering across calls."""
        model = get_device("rome").noise_model()
        circuit = ghz_circuit(2)
        sim = TrajectorySimulator(model, seed=13)
        first = sim.run(circuit, shots=150)
        second = sim.run(circuit, shots=150)
        merged = {
            k: first.get(k, 0) + second.get(k, 0)
            for k in set(first) | set(second)
        }
        whole = TrajectorySimulator(model, seed=13).run(circuit, shots=300)
        assert merged == whole

    def test_chunking_invisible(self):
        """Splitting a batch into arbitrary chunks must not change any
        outcome — every shot owns its random stream."""
        model = get_device("rome").noise_model()
        circuit = ghz_circuit(2)
        sim = TrajectorySimulator(model, seed=4)
        sequences = sim._root.spawn(64)
        whole = sim._sample_batch(circuit, sequences, True)
        parts = np.concatenate(
            [
                sim._sample_batch(circuit, sequences[lo : lo + 7], True)
                for lo in range(0, 64, 7)
            ]
        )
        assert np.array_equal(whole, parts)

    def test_generator_seed_accepted(self):
        model = get_device("rome").noise_model()
        a = TrajectorySimulator(
            model, seed=np.random.default_rng(3)
        ).run(ghz_circuit(2), shots=100)
        b = TrajectorySimulator(
            model, seed=np.random.default_rng(3)
        ).run(ghz_circuit(2), shots=100)
        assert a == b

    def test_noiseless_batched_matches_statevector_distribution(self):
        circuit = ghz_circuit(3)
        probs = TrajectorySimulator(seed=8).probabilities(circuit, shots=2000)
        ideal = StatevectorSimulator().run(circuit).probabilities()
        assert abs(probs[0] - ideal[0]) < 0.05
        assert probs[1:7].sum() == 0.0  # only GHZ outcomes ever sampled
