"""Synthesis disk cache and experiment scale presets."""

import json

import numpy as np
import pytest

from repro.experiments import PAPER, QUICK, SMOKE, get_scale
from repro.utils.cache import cache_dir, cache_key, load_records, store_records


class TestCache:
    def test_key_deterministic(self):
        target = np.eye(4)
        a = cache_key(target, {"tool": "qsearch"})
        b = cache_key(target, {"tool": "qsearch"})
        assert a == b

    def test_key_sensitive_to_target(self):
        assert cache_key(np.eye(4), {}) != cache_key(np.eye(8), {})

    def test_key_sensitive_to_settings(self):
        t = np.eye(4)
        assert cache_key(t, {"seed": 1}) != cache_key(t, {"seed": 2})

    def test_store_and_load(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        records = [{"placements": [[0, 1]], "params": [0.1] * 12, "hs": 0.3}]
        store_records("abc123", records)
        assert load_records("abc123") == records

    def test_miss_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert load_records("missing") is None

    def test_corrupt_file_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        assert load_records("bad") is None

    def test_disable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_dir() is None
        store_records("x", [])  # no-op, must not raise
        assert load_records("x") is None


class TestScale:
    def test_presets_ordered_by_budget(self):
        assert SMOKE.max_nodes < QUICK.max_nodes < PAPER.max_nodes
        assert len(SMOKE.tfim_steps) < len(QUICK.tfim_steps)
        assert QUICK.tfim_steps == tuple(range(1, 22))

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale().name == "paper"

    def test_explicit_name_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale("smoke").name == "smoke"

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_max_cnots_lookup(self):
        assert QUICK.max_cnots(3) == 6
        assert QUICK.max_cnots(5) == 14
        # unknown width falls back to the widest entry
        assert QUICK.max_cnots(9) == 14
