"""Synthesis disk cache and experiment scale presets."""

import json
import os

import numpy as np
import pytest

from repro.experiments import PAPER, QUICK, SMOKE, get_scale
from repro.parallel import parallel_map
from repro.utils.cache import (
    cache_dir,
    cache_key,
    clear_memory_cache,
    load_records,
    store_records,
)


def _hammer_cache(task):
    """Worker for the concurrent-writer stress test (module-level so the
    process pool can pickle it)."""
    directory, key, worker_id, rounds = task
    os.environ["REPRO_CACHE_DIR"] = directory
    records = [{"worker": worker_id, "payload": list(range(64))}]
    for _ in range(rounds):
        store_records(key, records)
        clear_memory_cache()  # force the read below onto the disk path
        loaded = load_records(key)
        assert loaded is not None
        assert loaded[0]["payload"] == list(range(64))
    return worker_id


class TestCache:
    def test_key_deterministic(self):
        target = np.eye(4)
        a = cache_key(target, {"tool": "qsearch"})
        b = cache_key(target, {"tool": "qsearch"})
        assert a == b

    def test_key_sensitive_to_target(self):
        assert cache_key(np.eye(4), {}) != cache_key(np.eye(8), {})

    def test_key_sensitive_to_settings(self):
        t = np.eye(4)
        assert cache_key(t, {"seed": 1}) != cache_key(t, {"seed": 2})

    def test_store_and_load(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        records = [{"placements": [[0, 1]], "params": [0.1] * 12, "hs": 0.3}]
        store_records("abc123", records)
        assert load_records("abc123") == records

    def test_miss_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert load_records("missing") is None

    def test_corrupt_file_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        assert load_records("bad") is None

    def test_disable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_dir() is None
        store_records("x", [])  # no-op, must not raise
        assert load_records("x") is None

    def test_key_ignores_signed_zero(self):
        """Regression: np.round maps -1e-15 to -0.0, whose byte pattern
        differs from +0.0 — numerically identical targets must share a
        cache entry."""
        settings = {"tool": "qsearch"}
        clean = np.eye(2, dtype=np.complex128)
        dirty = clean + np.full((2, 2), -1e-15)
        assert cache_key(dirty, settings) == cache_key(clean, settings)
        dirty_imag = clean + np.full((2, 2), -1e-15j)
        assert cache_key(dirty_imag, settings) == cache_key(clean, settings)

    def test_read_does_not_create_directory(self, tmp_path, monkeypatch):
        target = tmp_path / "never_created"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
        assert load_records("abc") is None
        assert not target.exists()

    def test_unwritable_location_degrades(self, tmp_path, monkeypatch):
        """A cache dir that cannot exist (path under a regular file) is a
        miss on read and a silent no-op on write."""
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "cache"))
        assert load_records("abc") is None
        store_records("abc", [{"hs": 0.1}])  # must not raise
        assert load_records("abc") is None

    def test_store_leaves_no_temp_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store_records("k1", [{"hs": 0.5}])
        assert [p.name for p in tmp_path.iterdir()] == ["k1.json"]

    def test_memory_layer_serves_after_file_removal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        records = [{"hs": 0.25}]
        store_records("mem", records)
        (tmp_path / "mem.json").unlink()
        assert load_records("mem") == records  # LRU hit
        clear_memory_cache()
        assert load_records("mem") is None  # now a real disk miss

    def test_memory_layer_returns_copies(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store_records("cp", [{"params": [1.0, 2.0]}])
        first = load_records("cp")
        first[0]["params"].append(99.0)
        assert load_records("cp") == [{"params": [1.0, 2.0]}]

    def test_concurrent_writers(self, tmp_path, monkeypatch):
        """Several processes hammering one key must never corrupt it or
        leak temp files (unique tmp names + atomic replace)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        tasks = [(str(tmp_path), "contended", w, 20) for w in range(4)]
        done = parallel_map(_hammer_cache, tasks, jobs=4)
        assert sorted(done) == [0, 1, 2, 3]
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        payload = json.loads((tmp_path / "contended.json").read_text())
        assert payload["records"][0]["payload"] == list(range(64))


class TestScale:
    def test_presets_ordered_by_budget(self):
        assert SMOKE.max_nodes < QUICK.max_nodes < PAPER.max_nodes
        assert len(SMOKE.tfim_steps) < len(QUICK.tfim_steps)
        assert QUICK.tfim_steps == tuple(range(1, 22))

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale().name == "paper"

    def test_explicit_name_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale("smoke").name == "smoke"

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_max_cnots_lookup(self):
        assert QUICK.max_cnots(3) == 6
        assert QUICK.max_cnots(5) == 14
        # unknown width falls back to the widest entry
        assert QUICK.max_cnots(9) == 14
