"""Cross-engine equivalence: all four simulators agree on shared domains.

The repository ships four execution engines (statevector, density matrix,
trajectory, stabilizer). Wherever their domains overlap they must agree —
these tests are the strongest internal-consistency check the stack has.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.metrics import total_variation_distance
from repro.noise import GateError, NoiseModel, get_device
from repro.sim import (
    DensityMatrixSimulator,
    StabilizerSimulator,
    StatevectorSimulator,
    TrajectorySimulator,
    counts_to_probabilities,
)


def _random_clifford(num_qubits: int, depth: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    one_q = ["h", "s", "sdg", "x", "z", "sx"]
    for _ in range(depth):
        if rng.random() < 0.4 and num_qubits > 1:
            a, b = rng.choice(num_qubits, 2, replace=False)
            qc.cx(int(a), int(b))
        else:
            getattr(qc, one_q[rng.integers(len(one_q))])(int(rng.integers(num_qubits)))
    return qc


class TestNoiselessAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_statevector_vs_density_matrix(self, seed):
        qc = random_circuit(3, 25, seed=seed)
        sv = StatevectorSimulator().probabilities(qc)
        dm = DensityMatrixSimulator().run(qc).probabilities()
        assert np.allclose(sv, dm, atol=1e-10)

    @pytest.mark.parametrize("seed", range(3))
    def test_statevector_vs_trajectory_single_shot(self, seed):
        qc = random_circuit(2, 15, seed=seed)
        sv = StatevectorSimulator().run(qc).data
        traj = TrajectorySimulator(seed=0).run_single_shot(qc)
        assert np.allclose(sv, traj)

    @pytest.mark.parametrize("seed", range(3))
    def test_statevector_vs_stabilizer_clifford(self, seed):
        qc = _random_clifford(3, 20, seed)
        sv = StatevectorSimulator().probabilities(qc)
        counts = StabilizerSimulator(seed=seed).sample(qc, shots=2000)
        emp = counts_to_probabilities(counts, 3)
        assert total_variation_distance(sv, emp) < 0.08


class TestNoisyAgreement:
    def test_trajectory_unravels_density_matrix_on_clifford(self):
        model = NoiseModel()
        model.add_gate_error(GateError(depolarizing=0.08), "cx", None)
        qc = _random_clifford(3, 15, seed=2)
        dm = DensityMatrixSimulator(model).probabilities(qc)
        tj = TrajectorySimulator(model, seed=7).probabilities(qc, shots=2500)
        assert total_variation_distance(dm, tj) < 0.08

    def test_device_model_on_both_dense_engines(self):
        model = get_device("santiago").noise_model()
        qc = random_circuit(3, 15, seed=5)
        dm = DensityMatrixSimulator(model).probabilities(qc)
        tj = TrajectorySimulator(model, seed=11).probabilities(qc, shots=2500)
        assert total_variation_distance(dm, tj) < 0.09


class TestTrajectoryEngines:
    """Batched and per-shot trajectory execution are the same engine."""

    @pytest.mark.parametrize("seed", range(3))
    def test_methods_identical_counts(self, seed):
        model = get_device("ourense").noise_model()
        qc = random_circuit(3, 12, seed=seed)
        batched = TrajectorySimulator(model, seed=seed, method="batched").run(
            qc, shots=400
        )
        per_shot = TrajectorySimulator(
            model, seed=seed, method="per_shot"
        ).run(qc, shots=400)
        assert batched == per_shot

    def test_batched_unravels_density_matrix(self):
        model = NoiseModel()
        model.add_gate_error(GateError(depolarizing=0.1), "cx", None)
        qc = _random_clifford(4, 18, seed=6)
        dm = DensityMatrixSimulator(model).probabilities(qc)
        tj = TrajectorySimulator(model, seed=17, method="batched").probabilities(
            qc, shots=3000
        )
        assert total_variation_distance(dm, tj) < 0.08


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_dense_engines_agree_property(seed):
    qc = random_circuit(3, 12, seed=seed)
    sv = StatevectorSimulator().probabilities(qc)
    dm = DensityMatrixSimulator().run(qc).probabilities()
    assert np.allclose(sv, dm, atol=1e-9)
