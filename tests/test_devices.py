"""Device snapshots: Table 1 data, topology, noise-model construction."""

import networkx as nx
import numpy as np
import pytest

from repro.circuits import Gate
from repro.noise import TABLE1_CNOT_ERRORS, available_devices, get_device
from repro.noise.sweep import PAPER_SWEEP_LEVELS, cnot_error_sweep


class TestSnapshots:
    @pytest.mark.parametrize("name", sorted(TABLE1_CNOT_ERRORS))
    def test_published_average_cnot_error(self, name):
        device = get_device(name)
        _, published = TABLE1_CNOT_ERRORS[name]
        assert device.average_cnot_error() == pytest.approx(published, abs=1e-9)

    @pytest.mark.parametrize("name", sorted(TABLE1_CNOT_ERRORS))
    def test_qubit_counts(self, name):
        device = get_device(name)
        assert device.num_qubits == TABLE1_CNOT_ERRORS[name][0]

    @pytest.mark.parametrize("name", sorted(TABLE1_CNOT_ERRORS))
    def test_connected_topology(self, name):
        assert nx.is_connected(get_device(name).coupling_graph())

    @pytest.mark.parametrize("name", sorted(TABLE1_CNOT_ERRORS))
    def test_heavy_hex_degree_bound(self, name):
        graph = get_device(name).coupling_graph()
        assert max(dict(graph.degree).values()) <= 3

    def test_prefixed_name_accepted(self):
        assert get_device("ibmq_toronto").name == "toronto"

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            get_device("yorktown")

    def test_deterministic_and_cached(self):
        a, b = get_device("rome"), get_device("rome")
        assert a is b

    def test_available_devices(self):
        assert set(available_devices()) == set(TABLE1_CNOT_ERRORS)

    def test_t2_physical(self):
        device = get_device("manhattan")
        for q in range(device.num_qubits):
            assert device.t2[q] <= 2 * device.t1[q] + 1e-9

    def test_edge_error_symmetric_lookup(self):
        device = get_device("ourense")
        assert device.edge_error(0, 1) == device.edge_error(1, 0)
        with pytest.raises(KeyError):
            device.edge_error(0, 4)

    def test_noise_report_mentions_all_couplers(self):
        device = get_device("ourense")
        report = device.noise_report()
        for a, b in device.edges:
            assert f"{a:>2}-{b:<2}" in report


class TestNoiseModelConstruction:
    def test_default_subset_is_first_five(self):
        model = get_device("toronto").noise_model()
        # toronto edge (0,1) should be registered with its calibrated rate
        err = model.gate_error(Gate("cx", (0, 1)))
        assert err.depolarizing == get_device("toronto").edge_error(0, 1)

    def test_subset_relabelling(self):
        device = get_device("toronto")
        model = device.noise_model([5, 3, 8])
        # physical edge (3, 5) -> local (1, 0)
        err = model.gate_error(Gate("cx", (1, 0)))
        assert err.depolarizing == device.edge_error(3, 5)

    def test_fallback_for_uncoupled_pair(self):
        device = get_device("ourense")
        model = device.noise_model()
        err = model.gate_error(Gate("cx", (0, 4)))  # not a coupler
        assert err.depolarizing == pytest.approx(device.average_cnot_error())

    def test_out_of_range_subset_rejected(self):
        with pytest.raises(ValueError):
            get_device("rome").noise_model([0, 9])

    def test_readout_toggle(self):
        device = get_device("rome")
        with_ro = device.noise_model()
        without_ro = device.noise_model(include_readout=False)
        assert with_ro.has_readout_error
        assert not without_ro.has_readout_error

    def test_thermal_toggle(self):
        device = get_device("rome")
        model = device.noise_model(include_thermal=False)
        err = model.gate_error(Gate("cx", (0, 1)))
        assert err.t1s is None


class TestSweep:
    def test_paper_levels(self):
        assert PAPER_SWEEP_LEVELS == (0.0, 0.03, 0.06, 0.12, 0.24)

    def test_sweep_pins_cnot_error(self):
        models = cnot_error_sweep("ourense", [0.0, 0.12, 0.24])
        assert [m.average_cnot_error() for m in models] == [0.0, 0.12, 0.24]

    def test_sweep_keeps_other_errors(self):
        base = get_device("ourense").noise_model()
        swept = cnot_error_sweep("ourense", [0.12])[0]
        base_u3 = base.gate_error(Gate("u3", (0,), (0.0, 0.0, 0.0)))
        swept_u3 = swept.gate_error(Gate("u3", (0,), (0.0, 0.0, 0.0)))
        assert base_u3.depolarizing == swept_u3.depolarizing

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            cnot_error_sweep("ourense", [1.5])

    def test_device_object_accepted(self):
        models = cnot_error_sweep(get_device("rome"), [0.1])
        assert models[0].average_cnot_error() == pytest.approx(0.1)
