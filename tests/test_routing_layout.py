"""Layout selection and SWAP routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, ghz_circuit, random_circuit
from repro.noise import get_device
from repro.transpile import (
    Layout,
    connected_subsets,
    equivalent_under_layout,
    noise_aware_layout,
    permute_statevector,
    route_circuit,
    to_basis_gates,
    transpile,
    trivial_layout,
)


class TestLayout:
    def test_trivial(self):
        layout = trivial_layout(4)
        assert layout.physical_qubits == (0, 1, 2, 3)
        assert layout.physical(2) == 2

    def test_injectivity_enforced(self):
        with pytest.raises(ValueError):
            Layout((0, 0, 1))

    def test_inverse_map(self):
        layout = Layout((3, 1, 4))
        assert layout.inverse_map() == {3: 0, 1: 1, 4: 2}


class TestConnectedSubsets:
    def test_line_graph_count(self):
        import networkx as nx

        graph = nx.path_graph(5)
        subsets = connected_subsets(graph, 3)
        # A path has exactly n-k+1 connected k-subsets
        assert len(subsets) == 3

    def test_all_connected(self):
        import networkx as nx

        graph = get_device("toronto").coupling_graph()
        for subset in connected_subsets(graph, 4)[:50]:
            assert nx.is_connected(graph.subgraph(subset))

    def test_no_duplicates(self):
        graph = get_device("ourense").coupling_graph()
        subsets = connected_subsets(graph, 3)
        assert len(subsets) == len(set(subsets))


class TestNoiseAwareLayout:
    def test_produces_connected_region(self):
        import networkx as nx

        device = get_device("toronto")
        circuit = to_basis_gates(ghz_circuit(4))
        layout = noise_aware_layout(circuit, device)
        sub = device.coupling_graph().subgraph(layout.physical_qubits)
        assert nx.is_connected(sub)

    def test_picks_minimal_score_region(self):
        from repro.transpile.layout import _subset_score

        device = get_device("toronto")
        circuit = to_basis_gates(ghz_circuit(3))
        layout = noise_aware_layout(circuit, device)
        chosen = _subset_score(device, layout.physical_qubits)
        best = min(
            _subset_score(device, s)
            for s in connected_subsets(device.coupling_graph(), 3)
        )
        assert chosen == pytest.approx(best)

    def test_too_wide_rejected(self):
        device = get_device("rome")
        with pytest.raises(ValueError):
            noise_aware_layout(QuantumCircuit(6), device)


class TestRouting:
    def test_native_circuit_untouched(self):
        device = get_device("rome")
        qc = to_basis_gates(ghz_circuit(3))
        routed = route_circuit(qc, device, trivial_layout(3))
        assert routed.swap_count == 0

    def test_nonadjacent_cx_inserts_swaps(self):
        device = get_device("rome")  # line 0-1-2-3-4
        qc = QuantumCircuit(5).cx(0, 4)
        routed = route_circuit(qc, device, trivial_layout(5))
        assert routed.swap_count >= 1
        for g in routed.circuit:
            if g.is_unitary and g.num_qubits == 2 and g.name != "swap":
                assert device.has_edge(*g.qubits)

    def test_every_two_qubit_gate_on_coupler(self):
        device = get_device("toronto")
        for seed in range(3):
            qc = to_basis_gates(random_circuit(4, 15, seed=seed))
            routed = route_circuit(qc, device, trivial_layout(4))
            for g in routed.circuit:
                if g.is_unitary and g.num_qubits == 2:
                    assert device.has_edge(*g.qubits), g

    def test_final_layout_tracked(self):
        device = get_device("rome")
        qc = QuantumCircuit(5).cx(0, 4)
        routed = route_circuit(qc, device, trivial_layout(5))
        finals = routed.final_layout.physical_qubits
        assert len(set(finals)) == 5

    def test_three_qubit_gate_rejected(self):
        device = get_device("rome")
        qc = QuantumCircuit(3).ccx(0, 1, 2)
        with pytest.raises(ValueError):
            route_circuit(qc, device, trivial_layout(3))


class TestPermuteStatevector:
    def test_identity_permutation(self, rng):
        from repro.linalg import haar_state

        psi = haar_state(3, rng)
        assert np.allclose(permute_statevector(psi, [0, 1, 2]), psi)

    def test_swap_two_qubits(self):
        psi = np.zeros(4)
        psi[0b01] = 1.0  # qubit0 = 1
        out = permute_statevector(psi, [1, 0])
        assert out[0b10] == 1.0

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permute_statevector(np.zeros(4), [0, 0])


class TestTranspilePipeline:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_no_device_levels(self, level):
        qc = random_circuit(3, 20, seed=level)
        result = transpile(qc, optimization_level=level)
        from repro.linalg import allclose_up_to_global_phase

        assert allclose_up_to_global_phase(
            qc.unitary(), result.circuit.unitary()
        )

    @pytest.mark.parametrize("level", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_device_equivalence(self, level, seed):
        device = get_device("toronto")
        qc = random_circuit(4, 15, seed=seed)
        result = transpile(qc, device, optimization_level=level)
        assert equivalent_under_layout(qc, result)

    def test_manual_layout_respected(self):
        device = get_device("manhattan")
        result = transpile(
            ghz_circuit(4), device, optimization_level=1,
            initial_layout=[0, 1, 2, 3],
        )
        assert result.initial_layout.physical_qubits == (0, 1, 2, 3)
        assert equivalent_under_layout(ghz_circuit(4), result)

    def test_level3_uses_noise_aware_layout(self):
        device = get_device("toronto")
        result = transpile(ghz_circuit(3), device, optimization_level=3)
        # noise-aware layout need not start at qubit 0
        assert equivalent_under_layout(ghz_circuit(3), result)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(2), optimization_level=7)

    def test_level2_not_worse_than_level0(self):
        qc = random_circuit(3, 25, seed=5)
        r0 = transpile(qc, optimization_level=0)
        r2 = transpile(qc, optimization_level=2)
        assert r2.circuit.cnot_count <= r0.circuit.cnot_count


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_routing_equivalence_property(seed):
    """Property: transpiling onto Ourense preserves the |0..0> action."""
    device = get_device("ourense")
    qc = random_circuit(3, 10, seed=seed)
    result = transpile(qc, device, optimization_level=1)
    assert equivalent_under_layout(qc, result)
