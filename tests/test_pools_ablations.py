"""Experiment pools and ablation studies (smoke scale, cached)."""

import numpy as np
import pytest

from repro.experiments import SMOKE
from repro.experiments.ablations import (
    mitigation_ablation,
    objective_ablation,
    selection_ablation,
    toffoli_suite_ablation,
    warm_start_ablation,
)
from repro.experiments.pools import (
    grover_pool,
    line_coupling,
    tfim_pools,
    toffoli_pool,
)


class TestPools:
    def test_line_coupling(self):
        assert line_coupling(4) == [(0, 1), (1, 2), (2, 3)]

    def test_tfim_pools_cover_scale_steps(self):
        pools = tfim_pools(3, scale=SMOKE)
        assert [step for step, _pool in pools] == list(SMOKE.tfim_steps)
        for _step, pool in pools:
            assert len(pool) > 0
            assert pool.num_qubits == 3

    def test_tfim_pools_respect_line_coupling(self):
        pools = tfim_pools(3, scale=SMOKE)
        allowed = set(map(tuple, line_coupling(3)))
        for _step, pool in pools:
            for candidate in pool:
                for gate in candidate.circuit:
                    if gate.name == "cx":
                        edge = tuple(sorted(gate.qubits))
                        assert edge in allowed

    def test_grover_pool(self):
        pool = grover_pool(3, scale=SMOKE)
        assert len(pool) > 3
        assert pool.num_qubits == 3

    def test_toffoli_pool_contains_exact_and_shallow(self):
        pool = toffoli_pool(2, scale=SMOKE)
        assert pool.minimal_hs().hs_distance < 1e-4
        assert min(pool.cnot_counts()) <= 2

    def test_spec_width_mismatch_rejected(self):
        from repro.apps.tfim import TFIMSpec

        with pytest.raises(ValueError):
            tfim_pools(3, scale=SMOKE, spec=TFIMSpec(4))


class TestAblations:
    def test_objective_smooth_dominates(self):
        result = objective_ablation(trials=6)
        assert result.smooth_success > result.sqrt_success
        assert "smooth" in result.rows()

    def test_selection_table_shape(self):
        result = selection_ablation(SMOKE, levels=(0.01, 0.24))
        assert set(result.levels) == {0.01, 0.24}
        assert "oracle" in result.table
        # Oracle never loses.
        for name in result.table:
            for level in result.levels:
                assert (
                    result.table["oracle"][level]
                    <= result.table[name][level] + 1e-12
                )

    def test_noise_aware_adapts(self):
        result = selection_ablation(SMOKE, levels=(0.01, 0.24))
        # At high noise, the noise-aware prediction is at least as good
        # as pure process distance.
        assert (
            result.table["noise_aware"][0.24]
            <= result.table["minimal_hs"][0.24] + 1e-9
        )

    def test_warm_start_both_converge(self):
        result = warm_start_ablation(trials=2)
        assert result.warm_success == 2
        assert "warm" in result.rows()

    def test_suite_ablation_spreads_positive(self):
        result = toffoli_suite_ablation(SMOKE)
        assert result.basic_spread > 0.0
        assert result.extended_spread > 0.0
        assert result.basic_scores != result.extended_scores

    def test_mitigation_preserves_advantage(self):
        result = mitigation_ablation(SMOKE)
        assert result.mitigated_improvement > 0.3
        assert result.mitigated_beating > 0.4
        assert "mitigated" in result.rows()
