"""Resumable campaign orchestration and the store-backed CLI flow."""

import json
import os

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.store import (
    ArtifactStore,
    CampaignInterrupted,
    campaign,
    checkpoint_unit,
    config_digest,
    current_campaign,
    list_runs,
    load_manifest,
)
from repro.store.campaign import ACTIVE_ENV, UNITS_LOG_ENV
from repro.store.manifest import manifest_path


class TestCheckpointUnit:
    def test_passthrough_without_campaign(self):
        assert current_campaign() is None
        calls = []
        out = checkpoint_unit({"kind": "t"}, lambda: calls.append(1) or 7)
        assert out == 7 and calls == [1]

    def test_computes_then_skips(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def run_once():
            with campaign(store, experiment="exp", scale="smoke") as ctx:
                for i in range(3):
                    checkpoint_unit(
                        {"kind": "unit", "i": i},
                        lambda i=i: calls.append(i) or {"i": i},
                    )
            return ctx.manifest

        first = run_once()
        assert calls == [0, 1, 2]
        assert (first.units_computed, first.units_cached) == (3, 0)
        assert first.status == "complete"
        second = run_once()
        assert calls == [0, 1, 2]  # nothing recomputed
        assert (second.units_computed, second.units_cached) == (0, 3)
        assert second.unit_keys == first.unit_keys

    def test_max_units_interrupts_and_resumes(self, tmp_path):
        store = ArtifactStore(tmp_path)

        def run(budget):
            with campaign(
                store,
                experiment="exp",
                scale="smoke",
                run_id=f"run-{budget}",
                max_units=budget,
            ) as ctx:
                total = 0.0
                for i in range(4):
                    unit = checkpoint_unit(
                        {"kind": "unit", "i": i}, lambda i=i: {"v": i * 0.5}
                    )
                    total += unit["v"]
            return total, ctx.manifest

        with pytest.raises(CampaignInterrupted) as info:
            run(2)
        assert info.value.units_computed == 2
        interrupted = load_manifest(store, "run-2")
        assert interrupted.status == "interrupted"
        assert len(interrupted.unit_keys) == 2

        total, manifest = run(None)
        assert total == pytest.approx(3.0)
        assert manifest.status == "complete"
        assert (manifest.units_computed, manifest.units_cached) == (2, 2)

    def test_failure_recorded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(RuntimeError, match="boom"):
            with campaign(
                store, experiment="exp", scale="smoke", run_id="run-f"
            ):
                checkpoint_unit({"kind": "ok"}, lambda: {})
                raise RuntimeError("boom")
        manifest = load_manifest(store, "run-f")
        assert manifest.status == "failed"
        assert "boom" in manifest.error
        # The completed unit survives for the next attempt.
        assert store.has({"kind": "ok"})

    def test_provenance_collected_from_unit_configs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with campaign(
            store, experiment="exp", scale="smoke", run_id="run-p"
        ) as ctx:
            checkpoint_unit(
                {"kind": "u", "pool_seed": 1003, "device": "toronto"},
                lambda: {},
            )
            checkpoint_unit(
                {"kind": "u2", "seeds": [17, 23], "device": "rome"},
                lambda: {},
            )
        manifest = ctx.manifest
        assert manifest.seeds["pool_seed"] == [1003]
        assert manifest.seeds["seeds"] == [17, 23]
        assert manifest.devices == ["rome", "toronto"]
        assert manifest.config_hash
        assert manifest.code_version["package"]

    def test_worker_checkpointer_via_env(self, tmp_path, monkeypatch):
        """Workers reconstruct the store from the env and log their keys."""
        store = ArtifactStore(tmp_path)
        units_log = tmp_path / "runs" / "run-w.units.log"
        units_log.parent.mkdir(parents=True)
        monkeypatch.setenv(ACTIVE_ENV, str(tmp_path))
        monkeypatch.setenv(UNITS_LOG_ENV, str(units_log))
        out = checkpoint_unit({"kind": "w", "i": 1}, lambda: {"v": 1})
        assert out == {"v": 1}
        key = config_digest({"kind": "w", "i": 1})
        assert store.has(key)
        assert key in units_log.read_text()

    def test_campaign_exports_and_restores_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ACTIVE_ENV, raising=False)
        store = ArtifactStore(tmp_path)
        with campaign(store, experiment="exp", scale="smoke"):
            assert os.environ[ACTIVE_ENV] == str(store.root)
        assert ACTIVE_ENV not in os.environ


def _fig02(store_dir, out_dir, *extra):
    argv = ["fig02", "--scale", "smoke", "--store", str(store_dir)]
    if out_dir is not None:
        argv += ["--output", str(out_dir)]
    return main(argv + list(extra))


class TestResumableCLI:
    def test_interrupt_resume_byte_identical(self, tmp_path, capsys):
        """The acceptance scenario: kill after k units, resume, compare."""
        store_a, store_b = tmp_path / "a", tmp_path / "b"
        out_a, out_b = tmp_path / "outa", tmp_path / "outb"

        assert _fig02(store_a, None, "--max-units", "2") == EXIT_INTERRUPTED
        text = capsys.readouterr().out
        assert "interrupted" in text and "2 unit(s) computed" in text

        assert _fig02(store_a, out_a) == 0
        text = capsys.readouterr().out
        assert "2 skipped (checkpointed)" in text
        assert "complete" in text

        assert _fig02(store_b, out_b) == 0
        capsys.readouterr()
        resumed = (out_a / "fig02.json").read_bytes()
        fresh = (out_b / "fig02.json").read_bytes()
        assert resumed == fresh  # byte-identical final artifact

        runs = list_runs(ArtifactStore(store_a))
        assert sorted(m.status for m in runs) == ["complete", "interrupted"]
        complete = next(m for m in runs if m.status == "complete")
        assert complete.artifacts["fig02"]
        assert complete.seeds and complete.scale == "smoke"

    def test_registry_cli_against_two_runs(self, tmp_path, capsys):
        store = tmp_path / "s"
        assert _fig02(store, None, "--run-id", "first") == 0
        assert _fig02(store, None, "--run-id", "second") == 0
        capsys.readouterr()

        assert main(["runs", "list", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "first" in out and "second" in out

        assert main(["runs", "show", "first", "--store", str(store)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment"] == "fig02"
        assert data["config_hash"] and data["code_version"]["package"]

        assert main(["runs", "diff", "first", "second", "--store", str(store)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_truncated_manifest_recovery(self, tmp_path, capsys):
        """A corrupted manifest costs provenance only, never resumability."""
        store_dir = tmp_path / "s"
        assert _fig02(store_dir, None, "--run-id", "first") == 0
        capsys.readouterr()
        store = ArtifactStore(store_dir)
        path = manifest_path(store, "first")
        path.write_text(path.read_text()[: 40])  # truncate mid-JSON

        assert main(["runs", "list", "--store", str(store_dir)]) == 0
        assert "corrupt" in capsys.readouterr().out

        assert _fig02(store_dir, None, "--run-id", "second") == 0
        out = capsys.readouterr().out
        assert "0 unit(s) computed" in out  # every unit still skipped
        second = load_manifest(store, "second")
        assert second.status == "complete"

    def test_store_campaign_target(self, tmp_path, capsys):
        store = tmp_path / "s"
        code = main(
            ["campaign", "fig16", "table1", "--scale", "smoke", "--store", str(store)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[campaign] fig16" in out and "[campaign] table1" in out
        runs = list_runs(ArtifactStore(store))
        assert {m.experiment for m in runs} == {"fig16", "table1"}

    def test_campaign_requires_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main(["campaign", "fig16"])
        with pytest.raises(SystemExit):
            main(["runs", "list"])

    def test_max_units_requires_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main(["fig16", "--max-units", "1"])

    def test_store_env_var(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert main(["fig16", "--scale", "smoke"]) == 0
        assert "[campaign] fig16" in capsys.readouterr().out
        assert (tmp_path / "env-store" / "runs").is_dir()
