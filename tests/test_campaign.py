"""Resumable campaign orchestration and the store-backed CLI flow."""

import json
import os

import pytest

from repro.cli import EXIT_INTERRUPTED, EXIT_PARTIAL, main
from repro.faults import TransientError, note_degradation
from repro.store import (
    ArtifactStore,
    CampaignInterrupted,
    UnitQuarantined,
    campaign,
    checkpoint_unit,
    config_digest,
    current_campaign,
    list_runs,
    load_manifest,
    prune_for_retry,
)
from repro.store.campaign import ACTIVE_ENV, UNITS_LOG_ENV
from repro.store.manifest import manifest_path


class TestCheckpointUnit:
    def test_passthrough_without_campaign(self):
        assert current_campaign() is None
        calls = []
        out = checkpoint_unit({"kind": "t"}, lambda: calls.append(1) or 7)
        assert out == 7 and calls == [1]

    def test_computes_then_skips(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def run_once():
            with campaign(store, experiment="exp", scale="smoke") as ctx:
                for i in range(3):
                    checkpoint_unit(
                        {"kind": "unit", "i": i},
                        lambda i=i: calls.append(i) or {"i": i},
                    )
            return ctx.manifest

        first = run_once()
        assert calls == [0, 1, 2]
        assert (first.units_computed, first.units_cached) == (3, 0)
        assert first.status == "complete"
        second = run_once()
        assert calls == [0, 1, 2]  # nothing recomputed
        assert (second.units_computed, second.units_cached) == (0, 3)
        assert second.unit_keys == first.unit_keys

    def test_max_units_interrupts_and_resumes(self, tmp_path):
        store = ArtifactStore(tmp_path)

        def run(budget):
            with campaign(
                store,
                experiment="exp",
                scale="smoke",
                run_id=f"run-{budget}",
                max_units=budget,
            ) as ctx:
                total = 0.0
                for i in range(4):
                    unit = checkpoint_unit(
                        {"kind": "unit", "i": i}, lambda i=i: {"v": i * 0.5}
                    )
                    total += unit["v"]
            return total, ctx.manifest

        with pytest.raises(CampaignInterrupted) as info:
            run(2)
        assert info.value.units_computed == 2
        interrupted = load_manifest(store, "run-2")
        assert interrupted.status == "interrupted"
        assert len(interrupted.unit_keys) == 2

        total, manifest = run(None)
        assert total == pytest.approx(3.0)
        assert manifest.status == "complete"
        assert (manifest.units_computed, manifest.units_cached) == (2, 2)

    def test_failure_recorded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(RuntimeError, match="boom"):
            with campaign(
                store, experiment="exp", scale="smoke", run_id="run-f"
            ):
                checkpoint_unit({"kind": "ok"}, lambda: {})
                raise RuntimeError("boom")
        manifest = load_manifest(store, "run-f")
        assert manifest.status == "failed"
        assert "boom" in manifest.error
        # The completed unit survives for the next attempt.
        assert store.has({"kind": "ok"})

    def test_provenance_collected_from_unit_configs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with campaign(
            store, experiment="exp", scale="smoke", run_id="run-p"
        ) as ctx:
            checkpoint_unit(
                {"kind": "u", "pool_seed": 1003, "device": "toronto"},
                lambda: {},
            )
            checkpoint_unit(
                {"kind": "u2", "seeds": [17, 23], "device": "rome"},
                lambda: {},
            )
        manifest = ctx.manifest
        assert manifest.seeds["pool_seed"] == [1003]
        assert manifest.seeds["seeds"] == [17, 23]
        assert manifest.devices == ["rome", "toronto"]
        assert manifest.config_hash
        assert manifest.code_version["package"]

    def test_worker_checkpointer_via_env(self, tmp_path, monkeypatch):
        """Workers reconstruct the store from the env and log their keys."""
        store = ArtifactStore(tmp_path)
        units_log = tmp_path / "runs" / "run-w.units.log"
        units_log.parent.mkdir(parents=True)
        monkeypatch.setenv(ACTIVE_ENV, str(tmp_path))
        monkeypatch.setenv(UNITS_LOG_ENV, str(units_log))
        out = checkpoint_unit({"kind": "w", "i": 1}, lambda: {"v": 1})
        assert out == {"v": 1}
        key = config_digest({"kind": "w", "i": 1})
        assert store.has(key)
        assert key in units_log.read_text()

    def test_campaign_exports_and_restores_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ACTIVE_ENV, raising=False)
        store = ArtifactStore(tmp_path)
        with campaign(store, experiment="exp", scale="smoke"):
            assert os.environ[ACTIVE_ENV] == str(store.root)
        assert ACTIVE_ENV not in os.environ


class TestQuarantine:
    def test_transient_builder_failure_quarantines(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with campaign(
            store, experiment="exp", scale="smoke", run_id="run-q"
        ) as ctx:
            checkpoint_unit({"kind": "ok"}, lambda: {"v": 1})
            with pytest.raises(UnitQuarantined) as info:
                checkpoint_unit(
                    {"kind": "sick"},
                    lambda: (_ for _ in ()).throw(TransientError("queue lost job")),
                )
            checkpoint_unit({"kind": "ok2"}, lambda: {"v": 2})
        key = config_digest({"kind": "sick"})
        assert info.value.key == key
        manifest = ctx.manifest
        assert manifest.status == "partial"
        assert manifest.failed_units == {key: "TransientError: queue lost job"}
        assert manifest.units_computed == 2  # the healthy units completed
        assert not store.has(key)  # no payload for the quarantined unit
        # The manifest round-trips through disk with the failure intact.
        loaded = load_manifest(store, "run-q")
        assert loaded.status == "partial"
        assert loaded.failed_units == manifest.failed_units

    def test_fatal_builder_failure_propagates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="bad config"):
            with campaign(
                store, experiment="exp", scale="smoke", run_id="run-fatal"
            ):
                checkpoint_unit(
                    {"kind": "sick"},
                    lambda: (_ for _ in ()).throw(ValueError("bad config")),
                )
        manifest = load_manifest(store, "run-fatal")
        assert manifest.status == "failed"
        assert manifest.failed_units == {}

    def test_escaped_quarantine_marks_run_partial(self, tmp_path):
        """A driver that cannot continue re-raises; the run stays partial."""
        store = ArtifactStore(tmp_path)
        with pytest.raises(UnitQuarantined):
            with campaign(
                store, experiment="exp", scale="smoke", run_id="run-esc"
            ):
                checkpoint_unit(
                    {"kind": "sick"},
                    lambda: (_ for _ in ()).throw(TransientError("gone")),
                )
        manifest = load_manifest(store, "run-esc")
        assert manifest.status == "partial"
        assert len(manifest.failed_units) == 1

    def test_quarantined_unit_recomputes_on_retry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        attempts = []

        def run(healthy):
            with campaign(
                store, experiment="exp", scale="smoke", run_id="run-r"
            ) as ctx:
                try:
                    checkpoint_unit(
                        {"kind": "flaky"},
                        lambda: attempts.append(1) or (
                            {"v": 7}
                            if healthy
                            else (_ for _ in ()).throw(TransientError("down"))
                        ),
                    )
                except UnitQuarantined:
                    pass
            return ctx.manifest

        first = run(healthy=False)
        assert first.status == "partial" and len(attempts) == 1
        assert prune_for_retry(store, first) == 0  # nothing was stored
        second = run(healthy=True)
        assert second.status == "complete" and len(attempts) == 2
        assert store.get_payload({"kind": "flaky"}) == {"v": 7}


class TestDegradation:
    def test_degraded_unit_flagged_and_not_checkpointed(self, tmp_path):
        store = ArtifactStore(tmp_path)

        def degraded_builder():
            note_degradation("fake_dev:job0", "fell back to plain simulation")
            return {"v": 1}

        with campaign(
            store, experiment="exp", scale="smoke", run_id="run-d"
        ) as ctx:
            out = checkpoint_unit({"kind": "deg"}, degraded_builder)
        assert out == {"v": 1}  # the degraded result is still returned
        manifest = ctx.manifest
        assert manifest.status == "partial"
        key = config_digest({"kind": "deg"})
        assert "plain simulation" in manifest.degraded_units[key]
        assert not store.has(key)  # never written: a resume must recompute
        loaded = load_manifest(store, "run-d")
        assert loaded.degraded_units == manifest.degraded_units


class TestWorkerSidecarMerge:
    def test_tagged_lines_fold_into_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with campaign(
            store, experiment="exp", scale="smoke", run_id="run-m"
        ) as ctx:
            checkpoint_unit({"kind": "parent"}, lambda: {})
            # Simulate worker processes reporting through the sidecar.
            with open(os.environ[UNITS_LOG_ENV], "a") as fh:
                fh.write("aaaa1111\n")
                fh.write("bbbb2222\tFAILED-looking-but-plain\n".replace("\t", " "))
                fh.write("FAILED\tcccc3333\tTransientError: worker lost it\n")
                fh.write("DEGRADED\tdddd4444\tsimulated instead\n")
        manifest = ctx.manifest
        assert "aaaa1111" in manifest.unit_keys
        assert manifest.failed_units["cccc3333"] == "TransientError: worker lost it"
        assert manifest.degraded_units["dddd4444"] == "simulated instead"
        assert manifest.status == "partial"


def _fig02(store_dir, out_dir, *extra):
    argv = ["fig02", "--scale", "smoke", "--store", str(store_dir)]
    if out_dir is not None:
        argv += ["--output", str(out_dir)]
    return main(argv + list(extra))


class TestResumableCLI:
    def test_interrupt_resume_byte_identical(self, tmp_path, capsys):
        """The acceptance scenario: kill after k units, resume, compare."""
        store_a, store_b = tmp_path / "a", tmp_path / "b"
        out_a, out_b = tmp_path / "outa", tmp_path / "outb"

        assert _fig02(store_a, None, "--max-units", "2") == EXIT_INTERRUPTED
        text = capsys.readouterr().out
        assert "interrupted" in text and "2 unit(s) computed" in text

        assert _fig02(store_a, out_a) == 0
        text = capsys.readouterr().out
        assert "2 skipped (checkpointed)" in text
        assert "complete" in text

        assert _fig02(store_b, out_b) == 0
        capsys.readouterr()
        resumed = (out_a / "fig02.json").read_bytes()
        fresh = (out_b / "fig02.json").read_bytes()
        assert resumed == fresh  # byte-identical final artifact

        runs = list_runs(ArtifactStore(store_a))
        assert sorted(m.status for m in runs) == ["complete", "interrupted"]
        complete = next(m for m in runs if m.status == "complete")
        assert complete.artifacts["fig02"]
        assert complete.seeds and complete.scale == "smoke"

    def test_registry_cli_against_two_runs(self, tmp_path, capsys):
        store = tmp_path / "s"
        assert _fig02(store, None, "--run-id", "first") == 0
        assert _fig02(store, None, "--run-id", "second") == 0
        capsys.readouterr()

        assert main(["runs", "list", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "first" in out and "second" in out

        assert main(["runs", "show", "first", "--store", str(store)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment"] == "fig02"
        assert data["config_hash"] and data["code_version"]["package"]

        assert main(["runs", "diff", "first", "second", "--store", str(store)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_truncated_manifest_recovery(self, tmp_path, capsys):
        """A corrupted manifest costs provenance only, never resumability."""
        store_dir = tmp_path / "s"
        assert _fig02(store_dir, None, "--run-id", "first") == 0
        capsys.readouterr()
        store = ArtifactStore(store_dir)
        path = manifest_path(store, "first")
        path.write_text(path.read_text()[: 40])  # truncate mid-JSON

        assert main(["runs", "list", "--store", str(store_dir)]) == 0
        assert "corrupt" in capsys.readouterr().out

        assert _fig02(store_dir, None, "--run-id", "second") == 0
        out = capsys.readouterr().out
        assert "0 unit(s) computed" in out  # every unit still skipped
        second = load_manifest(store, "second")
        assert second.status == "complete"

    def test_store_campaign_target(self, tmp_path, capsys):
        store = tmp_path / "s"
        code = main(
            ["campaign", "fig16", "table1", "--scale", "smoke", "--store", str(store)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[campaign] fig16" in out and "[campaign] table1" in out
        runs = list_runs(ArtifactStore(store))
        assert {m.experiment for m in runs} == {"fig16", "table1"}

    def test_campaign_requires_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main(["campaign", "fig16"])
        with pytest.raises(SystemExit):
            main(["runs", "list"])

    def test_max_units_requires_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main(["fig16", "--max-units", "1"])

    def test_store_env_var(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert main(["fig16", "--scale", "smoke"]) == 0
        assert "[campaign] fig16" in capsys.readouterr().out
        assert (tmp_path / "env-store" / "runs").is_dir()


class TestFaultedCLI:
    def test_invalid_faults_spec_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main(
                ["fig16", "--store", str(tmp_path), "--faults", "frob=1"]
            )
        assert info.value.code == 2

    def test_fault_campaign_retry_byte_identical(
        self, tmp_path, monkeypatch, capsys
    ):
        """The acceptance scenario: a fault-injected figure campaign ends
        with quarantined units and exit 4; ``runs retry`` (faults off)
        re-executes only those units and the final artifact is
        byte-identical to a fault-free run's."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_FAULTS_LOG", raising=False)
        store, out_dir = tmp_path / "s", tmp_path / "out"

        code = _fig02(
            store, None, "--run-id", "faulted", "--faults", "seed=3,store=1"
        )
        assert code == EXIT_PARTIAL
        text = capsys.readouterr().out
        assert "quarantined" in text and "runs retry faulted" in text
        assert "[faults] activations" in text
        assert (store / "faults.log").read_text().strip()  # faults fired
        manifest = load_manifest(ArtifactStore(store), "faulted")
        assert manifest.status == "partial"
        assert len(manifest.failed_units) == 5  # every smoke-scale step

        # Retry with injection off: quarantined units recompute cleanly.
        os.environ.pop("REPRO_FAULTS", None)
        os.environ.pop("REPRO_FAULTS_LOG", None)
        code = main(
            ["runs", "retry", "faulted", "--store", str(store),
             "--output", str(out_dir)]
        )
        assert code == 0
        capsys.readouterr()
        retried = load_manifest(ArtifactStore(store), "faulted")
        assert retried.status == "complete"
        assert retried.failed_units == {}

        clean_store, clean_out = tmp_path / "c", tmp_path / "outc"
        assert _fig02(clean_store, clean_out) == 0
        capsys.readouterr()
        assert (out_dir / "fig02.json").read_bytes() == (
            clean_out / "fig02.json"
        ).read_bytes()

    def test_retry_unknown_run_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main(["runs", "retry", "nope", "--store", str(tmp_path)])
        assert info.value.code == 2
