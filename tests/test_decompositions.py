"""ZYZ decomposition and related analytic rewrites."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import gate_matrix, u3_matrix
from repro.linalg import (
    allclose_up_to_global_phase,
    haar_unitary,
    rotation_axis_angle,
    su2_from_unitary,
    u3_params_from_unitary,
    zyz_decomposition,
)
from repro.linalg.decompositions import verify_zyz


class TestSU2Split:
    def test_det_one(self, rng):
        v, _alpha = su2_from_unitary(haar_unitary(2, rng))
        assert abs(np.linalg.det(v) - 1.0) < 1e-10

    def test_reconstruction(self, rng):
        u = haar_unitary(2, rng)
        v, alpha = su2_from_unitary(u)
        assert np.allclose(u, np.exp(1j * alpha) * v)


class TestZYZ:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_unitaries(self, seed):
        assert verify_zyz(haar_unitary(2, seed))

    def test_identity(self):
        theta, phi, lam, phase = zyz_decomposition(np.eye(2))
        assert theta == pytest.approx(0.0)
        assert abs(phase) < 1e-12

    def test_x_gate(self):
        assert verify_zyz(gate_matrix("x"))
        theta, _, _, _ = zyz_decomposition(gate_matrix("x"))
        assert theta == pytest.approx(math.pi)

    def test_diagonal_gate(self):
        assert verify_zyz(gate_matrix("u1", (0.9,)))

    def test_u3_roundtrip(self):
        params = (0.7, -1.2, 2.5)
        theta, phi, lam = u3_params_from_unitary(u3_matrix(params))
        assert allclose_up_to_global_phase(
            u3_matrix(params), u3_matrix((theta, phi, lam))
        )

    def test_near_identity_stability(self):
        eps = 1e-11
        m = u3_matrix((eps, 0.3, -0.2))
        assert verify_zyz(m)

    def test_near_pi_stability(self):
        m = u3_matrix((math.pi - 1e-11, 0.3, -0.2))
        assert verify_zyz(m)


class TestRotationAxis:
    def test_x_axis(self):
        n, angle = rotation_axis_angle(gate_matrix("x"))
        assert angle == pytest.approx(math.pi)
        assert np.allclose(np.abs(n), [1, 0, 0], atol=1e-9)

    def test_z_axis(self):
        n, angle = rotation_axis_angle(gate_matrix("rz", (0.8,)))
        assert angle == pytest.approx(0.8)
        assert np.allclose(np.abs(n), [0, 0, 1], atol=1e-9)

    def test_identity_angle_zero(self):
        _n, angle = rotation_axis_angle(np.eye(2))
        assert angle == pytest.approx(0.0)

    def test_axis_normalised(self, rng):
        n, _ = rotation_axis_angle(haar_unitary(2, rng))
        assert abs(np.linalg.norm(n) - 1.0) < 1e-9


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_zyz_property_random_unitaries(seed):
    """Property: ZYZ reconstructs every 1q unitary up to global phase."""
    assert verify_zyz(haar_unitary(2, seed))
