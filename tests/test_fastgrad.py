"""The structured fast evaluator (the synthesis hot path)."""

import numpy as np
import pytest

from repro.linalg import haar_unitary
from repro.synthesis import CircuitStructure, StructureEvaluator
from repro.synthesis.objective import HilbertSchmidtObjective


@pytest.fixture
def setup(rng):
    target = haar_unitary(8, rng)
    structure = CircuitStructure(
        3, ((0, 1), (1, 2), (0, 2), (0, 1), (1, 2))
    )
    return target, structure, StructureEvaluator(target, structure)


class TestStructureEvaluator:
    def test_unitary_matches_generic_path(self, setup, rng):
        target, structure, evaluator = setup
        for _ in range(5):
            params = rng.uniform(-np.pi, np.pi, structure.num_params)
            assert np.allclose(
                evaluator.unitary(params), structure.unitary(params), atol=1e-12
            )

    def test_unitary_is_unitary(self, setup, rng):
        _t, structure, evaluator = setup
        params = rng.uniform(-np.pi, np.pi, structure.num_params)
        u = evaluator.unitary(params)
        assert np.allclose(u.conj().T @ u, np.eye(8), atol=1e-10)

    def test_gradient_matches_generic_path(self, setup, rng):
        target, structure, evaluator = setup
        objective = HilbertSchmidtObjective(target, structure)
        for _ in range(3):
            params = rng.uniform(-np.pi, np.pi, structure.num_params)
            c_fast, g_fast = evaluator.smooth_cost_and_grad(params)
            c_ref, g_ref = objective.smooth_cost_and_grad_reference(params)
            assert abs(c_fast - c_ref) < 1e-12
            assert np.max(np.abs(g_fast - g_ref)) < 1e-10

    def test_gradient_finite_difference(self, setup, rng):
        _t, structure, evaluator = setup
        params = rng.uniform(-np.pi, np.pi, structure.num_params)
        cost, grad = evaluator.smooth_cost_and_grad(params)
        eps = 1e-7
        for i in range(0, structure.num_params, 7):  # sample of params
            shifted = params.copy()
            shifted[i] += eps
            fd = (evaluator.smooth_cost(shifted) - cost) / eps
            assert abs(fd - grad[i]) < 1e-4, i

    def test_hs_distance_consistent(self, setup, rng):
        _t, structure, evaluator = setup
        params = rng.uniform(-np.pi, np.pi, structure.num_params)
        hs = evaluator.hs_distance(params)
        assert hs == pytest.approx(np.sqrt(evaluator.smooth_cost(params)))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            StructureEvaluator(np.eye(4), CircuitStructure(3))

    def test_zero_placement_structure(self, rng):
        target = haar_unitary(4, rng)
        structure = CircuitStructure(2)
        evaluator = StructureEvaluator(target, structure)
        params = rng.uniform(-np.pi, np.pi, 6)
        cost, grad = evaluator.smooth_cost_and_grad(params)
        assert grad.shape == (6,)
        assert 0.0 <= cost <= 1.0

    def test_two_qubit_structures(self, rng):
        target = haar_unitary(4, rng)
        structure = CircuitStructure(2, ((0, 1), (0, 1), (0, 1)))
        evaluator = StructureEvaluator(target, structure)
        objective = HilbertSchmidtObjective(target, structure)
        params = rng.uniform(-np.pi, np.pi, structure.num_params)
        c1, g1 = evaluator.smooth_cost_and_grad(params)
        c2, g2 = objective.smooth_cost_and_grad_reference(params)
        assert abs(c1 - c2) < 1e-12 and np.max(np.abs(g1 - g2)) < 1e-10

    def test_reversed_edge_direction(self, rng):
        """CNOT direction (a, b) vs (b, a) must produce different circuits."""
        target = haar_unitary(4, rng)
        params = rng.uniform(-np.pi, np.pi, 12)
        fwd = StructureEvaluator(target, CircuitStructure(2, ((0, 1),)))
        rev = StructureEvaluator(target, CircuitStructure(2, ((1, 0),)))
        assert not np.allclose(fwd.unitary(params), rev.unitary(params))
