"""Readout mitigation and zero-noise extrapolation."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import (
    ReadoutError,
    apply_readout_errors,
    get_device,
    invert_readout,
    mitigate_readout,
    richardson_extrapolate,
    zne_observable,
)
from repro.sim import (
    DensityMatrixSimulator,
    StatevectorSimulator,
    average_magnetization,
)
from repro.transpile import to_basis_gates


def _errors():
    return [ReadoutError(0.05, 0.08), None, ReadoutError(0.1, 0.02)]


class TestReadoutMitigation:
    def test_inversion_exact_without_shot_noise(self, rng):
        probs = rng.random(8)
        probs /= probs.sum()
        noisy = apply_readout_errors(probs, _errors())
        recovered = mitigate_readout(noisy, _errors())
        assert np.allclose(recovered, probs, atol=1e-10)

    def test_raw_inverse_can_leave_simplex(self):
        # A distribution impossible under this confusion produces negative
        # quasi-probabilities on inversion.
        errors = [ReadoutError(0.3, 0.3)]
        impossible = np.array([1.0, 0.0])
        quasi = invert_readout(impossible, errors)
        assert quasi.min() < 0
        projected = mitigate_readout(impossible, errors)
        assert projected.min() >= 0
        assert projected.sum() == pytest.approx(1.0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            invert_readout(np.ones(4) / 4, [None])

    def test_identity_when_no_errors(self, rng):
        probs = rng.random(4)
        probs /= probs.sum()
        assert np.allclose(mitigate_readout(probs, [None, None]), probs)

    def test_mitigation_improves_magnetization(self):
        device = get_device("rome")
        model = device.noise_model()
        qc = QuantumCircuit(2)  # ideal magnetization exactly 1
        sim = DensityMatrixSimulator(model)
        noisy = sim.probabilities(qc)
        errors = model.readout_errors(2)
        mitigated = mitigate_readout(noisy, errors)
        assert abs(average_magnetization(mitigated) - 1.0) < abs(
            average_magnetization(noisy) - 1.0
        )


class TestRichardson:
    def test_linear_exact(self):
        assert richardson_extrapolate([1, 2], [0.9, 0.8]) == pytest.approx(1.0)

    def test_quadratic_exact(self):
        f = lambda s: 1.0 - 0.2 * s + 0.05 * s * s
        scales = [1.0, 1.5, 2.0]
        assert richardson_extrapolate(
            scales, [f(s) for s in scales]
        ) == pytest.approx(1.0)

    def test_duplicate_scales_rejected(self):
        with pytest.raises(ValueError):
            richardson_extrapolate([1, 1], [0.5, 0.5])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            richardson_extrapolate([1], [0.5])


class TestZNE:
    @pytest.fixture(scope="class")
    def workload(self):
        qc = QuantumCircuit(3)
        for _ in range(4):
            qc.rzz(0.3, 0, 1)
            qc.rzz(0.3, 1, 2)
            for q in range(3):
                qc.rx(0.25, q)
        return to_basis_gates(qc)

    def test_zne_beats_raw(self, workload):
        model = get_device("rome").noise_model(
            include_readout=False, include_thermal=False
        )
        ideal = average_magnetization(
            StatevectorSimulator().run(workload).probabilities()
        )
        raw = average_magnetization(
            DensityMatrixSimulator(model).probabilities(
                workload, with_readout_error=False
            )
        )
        zne = zne_observable(
            workload,
            model,
            average_magnetization,
            scales=(1.0, 1.5, 2.0),
            with_readout_error=False,
        )
        assert abs(zne - ideal) < abs(raw - ideal)

    def test_invalid_scale_rejected(self, workload):
        model = get_device("rome").noise_model()
        with pytest.raises(ValueError):
            zne_observable(
                workload, model, average_magnetization, scales=(0.0, 1.0)
            )
