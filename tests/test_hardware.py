"""Hardware emulation: drift, crosstalk, shots, mapping regions."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.faults import TransientError, degradation_events, retrying
from repro.hardware import FakeHardware, mapping_candidates, noise_report, paper_mappings
from repro.metrics import total_variation_distance
from repro.noise import get_device
from repro.sim import DensityMatrixSimulator, StatevectorSimulator


class TestFakeHardware:
    def test_run_returns_distribution(self):
        hw = FakeHardware("rome", shots=2048, seed=1)
        probs = hw.run(ghz_circuit(3))
        assert probs.size == 8
        assert probs.sum() == pytest.approx(1.0)

    def test_deterministic_for_seed(self):
        a = FakeHardware("rome", shots=1024, seed=5).run(ghz_circuit(2))
        b = FakeHardware("rome", shots=1024, seed=5).run(ghz_circuit(2))
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = FakeHardware("rome", shots=1024, seed=5).run(ghz_circuit(2))
        b = FakeHardware("rome", shots=1024, seed=6).run(ghz_circuit(2))
        assert not np.allclose(a, b)

    def test_noisier_than_clean_noise_model(self):
        circuit = ghz_circuit(3)
        ideal = StatevectorSimulator().run(circuit).probabilities()
        clean = DensityMatrixSimulator(
            get_device("manhattan").noise_model()
        ).probabilities(circuit)
        hw = FakeHardware("manhattan", seed=3).run_exact(circuit)
        assert total_variation_distance(ideal, hw) > total_variation_distance(
            ideal, clean
        ) * 0.8

    def test_drift_zero_matches_calibration(self):
        hw = FakeHardware("rome", drift=0.0, crosstalk=0.0, seed=1)
        circuit = ghz_circuit(3)
        clean = DensityMatrixSimulator(
            get_device("rome").noise_model()
        ).probabilities(circuit)
        assert np.allclose(hw.run_exact(circuit), clean, atol=1e-10)

    def test_crosstalk_adds_error(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(0, 1).cx(0, 1).cx(0, 1)
        ideal = StatevectorSimulator().run(circuit).probabilities()
        quiet = FakeHardware("rome", drift=0.0, crosstalk=0.0, seed=1)
        loud = FakeHardware("rome", drift=0.0, crosstalk=2.0, seed=1)
        tvd_quiet = total_variation_distance(ideal, quiet.run_exact(circuit))
        tvd_loud = total_variation_distance(ideal, loud.run_exact(circuit))
        assert tvd_loud > tvd_quiet

    def test_width_check(self):
        hw = FakeHardware("rome", qubits=[0, 1], seed=1)
        with pytest.raises(ValueError):
            hw.run(ghz_circuit(3))

    def test_shot_noise_scales_down(self):
        circuit = ghz_circuit(2)
        exact = FakeHardware("ourense", seed=9).run_exact(circuit)
        few = FakeHardware("ourense", shots=64, seed=9).run(circuit)
        many = FakeHardware("ourense", shots=65536, seed=9).run(circuit)
        assert total_variation_distance(exact, many) < total_variation_distance(
            exact, few
        )

    def test_device_object_accepted(self):
        hw = FakeHardware(get_device("rome"), seed=1)
        assert hw.device.name == "rome"


def _instant_retry(attempts=4):
    return retrying(attempts=attempts, base_delay=0, max_delay=0, sleep=lambda d: None)


class TestHardwareResilience:
    def test_retried_jobs_are_bit_identical(self, monkeypatch):
        """Faults fire before the shot sampler touches randomness, so a
        job that succeeds after retries equals an unfaulted one exactly."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        clean = FakeHardware("rome", shots=512, seed=5, retry=_instant_retry())
        baseline = [clean.run(ghz_circuit(2)) for _ in range(3)]

        # job=0.5 at 4 attempts: every job eventually gets through (at
        # seed=2 the first two jobs fail their first attempt and retry),
        # so the comparison genuinely exercises the retry path.
        from repro.faults import activation_counts, reset_activations

        monkeypatch.setenv("REPRO_FAULTS", "seed=2,job=0.5")
        monkeypatch.delenv("REPRO_FAULTS_LOG", raising=False)
        reset_activations()
        faulted = FakeHardware("rome", shots=512, seed=5, retry=_instant_retry())
        out = [faulted.run(ghz_circuit(2)) for _ in range(3)]
        assert activation_counts().get("job", 0) >= 2
        for a, b in zip(baseline, out):
            assert np.array_equal(a, b)

    def test_hard_outage_propagates_without_degradation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=2,job=1")
        monkeypatch.delenv("REPRO_FAULTS_LOG", raising=False)
        hw = FakeHardware("rome", shots=512, seed=5, retry=_instant_retry())
        with pytest.raises(TransientError):
            hw.run(ghz_circuit(2))
        assert not hw.degraded

    def test_hard_outage_degrades_when_allowed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=2,job=1,degrade=1")
        monkeypatch.delenv("REPRO_FAULTS_LOG", raising=False)
        mark = len(degradation_events())
        hw = FakeHardware("rome", shots=512, seed=5, retry=_instant_retry())
        probs = hw.run(ghz_circuit(2))
        assert hw.degraded
        assert probs.sum() == pytest.approx(1.0)
        events = degradation_events()[mark:]
        assert events and "degraded" in events[0][1]
        # Degraded output is the plain calibrated noise-model simulation:
        # no drift, no crosstalk, no shot noise.
        model = get_device("rome").noise_model(hw.qubits)
        expected = DensityMatrixSimulator(model).probabilities(ghz_circuit(2))
        assert np.allclose(probs, expected)

    def test_allow_degraded_flag_overrides_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=2,job=1,degrade=1")
        monkeypatch.delenv("REPRO_FAULTS_LOG", raising=False)
        hw = FakeHardware(
            "rome", shots=512, seed=5, retry=_instant_retry(), allow_degraded=False
        )
        with pytest.raises(TransientError):
            hw.run(ghz_circuit(2))


class TestMappings:
    def test_four_distinct_regions(self):
        maps = paper_mappings("toronto")
        assert len(maps) == 4
        assert len({tuple(v) for v in maps.values()}) == 4

    def test_regions_are_connected(self):
        import networkx as nx

        device = get_device("toronto")
        graph = device.coupling_graph()
        for subset in paper_mappings("toronto").values():
            assert nx.is_connected(graph.subgraph(subset))

    def test_candidates_carry_stats(self):
        cands = mapping_candidates(get_device("toronto"), 4)
        assert len(cands) > 10
        for _subset, cx, ro in cands[:5]:
            assert 0 < cx < 0.5 and 0 < ro < 0.5

    def test_noise_report_mentions_regions(self):
        report = noise_report("toronto")
        assert "manual mapping regions" in report
        assert "best" in report and "worst" in report

    def test_too_small_device_rejected(self):
        with pytest.raises(ValueError):
            paper_mappings("ourense", size=5)
