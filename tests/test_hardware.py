"""Hardware emulation: drift, crosstalk, shots, mapping regions."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.hardware import FakeHardware, mapping_candidates, noise_report, paper_mappings
from repro.metrics import total_variation_distance
from repro.noise import get_device
from repro.sim import DensityMatrixSimulator, StatevectorSimulator


class TestFakeHardware:
    def test_run_returns_distribution(self):
        hw = FakeHardware("rome", shots=2048, seed=1)
        probs = hw.run(ghz_circuit(3))
        assert probs.size == 8
        assert probs.sum() == pytest.approx(1.0)

    def test_deterministic_for_seed(self):
        a = FakeHardware("rome", shots=1024, seed=5).run(ghz_circuit(2))
        b = FakeHardware("rome", shots=1024, seed=5).run(ghz_circuit(2))
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = FakeHardware("rome", shots=1024, seed=5).run(ghz_circuit(2))
        b = FakeHardware("rome", shots=1024, seed=6).run(ghz_circuit(2))
        assert not np.allclose(a, b)

    def test_noisier_than_clean_noise_model(self):
        circuit = ghz_circuit(3)
        ideal = StatevectorSimulator().run(circuit).probabilities()
        clean = DensityMatrixSimulator(
            get_device("manhattan").noise_model()
        ).probabilities(circuit)
        hw = FakeHardware("manhattan", seed=3).run_exact(circuit)
        assert total_variation_distance(ideal, hw) > total_variation_distance(
            ideal, clean
        ) * 0.8

    def test_drift_zero_matches_calibration(self):
        hw = FakeHardware("rome", drift=0.0, crosstalk=0.0, seed=1)
        circuit = ghz_circuit(3)
        clean = DensityMatrixSimulator(
            get_device("rome").noise_model()
        ).probabilities(circuit)
        assert np.allclose(hw.run_exact(circuit), clean, atol=1e-10)

    def test_crosstalk_adds_error(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(0, 1).cx(0, 1).cx(0, 1)
        ideal = StatevectorSimulator().run(circuit).probabilities()
        quiet = FakeHardware("rome", drift=0.0, crosstalk=0.0, seed=1)
        loud = FakeHardware("rome", drift=0.0, crosstalk=2.0, seed=1)
        tvd_quiet = total_variation_distance(ideal, quiet.run_exact(circuit))
        tvd_loud = total_variation_distance(ideal, loud.run_exact(circuit))
        assert tvd_loud > tvd_quiet

    def test_width_check(self):
        hw = FakeHardware("rome", qubits=[0, 1], seed=1)
        with pytest.raises(ValueError):
            hw.run(ghz_circuit(3))

    def test_shot_noise_scales_down(self):
        circuit = ghz_circuit(2)
        exact = FakeHardware("ourense", seed=9).run_exact(circuit)
        few = FakeHardware("ourense", shots=64, seed=9).run(circuit)
        many = FakeHardware("ourense", shots=65536, seed=9).run(circuit)
        assert total_variation_distance(exact, many) < total_variation_distance(
            exact, few
        )

    def test_device_object_accepted(self):
        hw = FakeHardware(get_device("rome"), seed=1)
        assert hw.device.name == "rome"


class TestMappings:
    def test_four_distinct_regions(self):
        maps = paper_mappings("toronto")
        assert len(maps) == 4
        assert len({tuple(v) for v in maps.values()}) == 4

    def test_regions_are_connected(self):
        import networkx as nx

        device = get_device("toronto")
        graph = device.coupling_graph()
        for subset in paper_mappings("toronto").values():
            assert nx.is_connected(graph.subgraph(subset))

    def test_candidates_carry_stats(self):
        cands = mapping_candidates(get_device("toronto"), 4)
        assert len(cands) > 10
        for _subset, cx, ro in cands[:5]:
            assert 0 < cx < 0.5 and 0 < ro < 0.5

    def test_noise_report_mentions_regions(self):
        report = noise_report("toronto")
        assert "manual mapping regions" in report
        assert "best" in report and "worst" in report

    def test_too_small_device_rejected(self):
        with pytest.raises(ValueError):
            paper_mappings("ourense", size=5)
