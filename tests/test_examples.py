"""Smoke-run every example script at the fastest scale.

Examples are the user-facing face of the repository; each must run to
completion and print its interpretation. Heavy pools are disk-cached, so
these run in seconds after the first suite execution.
"""

import importlib.util
import os
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    module = _load(path)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates its result


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "tfim_dynamics",
        "grover_on_hardware",
        "noise_sensitivity",
        "toffoli_mappings",
        "wider_circuits",
        "device_characterization",
    } <= names
