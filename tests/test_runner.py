"""Experiment runner plumbing: backends, marginalisation, virtual dists."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.experiments import (
    IdealBackend,
    NoiseModelBackend,
    marginal_distribution,
    run_magnetization,
    transpiled_virtual_distribution,
)
from repro.hardware import FakeHardware
from repro.noise import get_device
from repro.sim import StatevectorSimulator


class TestBackends:
    def test_ideal_backend(self):
        probs = IdealBackend().run(ghz_circuit(2))
        assert probs[0] == pytest.approx(0.5)

    def test_noise_model_backend_deterministic(self):
        backend = NoiseModelBackend(get_device("rome").noise_model())
        a = backend.run(ghz_circuit(3))
        b = backend.run(ghz_circuit(3))
        assert np.allclose(a, b)

    def test_run_magnetization(self):
        assert run_magnetization(QuantumCircuit(2), IdealBackend()) == pytest.approx(1.0)


class TestMarginalDistribution:
    def test_identity_marginal(self):
        p = np.array([0.1, 0.2, 0.3, 0.4])
        assert np.allclose(marginal_distribution(p, [0, 1]), p)

    def test_drop_one_qubit(self):
        p = np.zeros(4)
        p[0b10] = 1.0  # qubit1 = 1
        out = marginal_distribution(p, [1])
        assert np.allclose(out, [0.0, 1.0])

    def test_reorder(self):
        p = np.zeros(4)
        p[0b01] = 1.0  # qubit0 = 1
        out = marginal_distribution(p, [1, 0])
        assert out[0b10] == 1.0

    def test_duplicate_wires_rejected(self):
        with pytest.raises(ValueError):
            marginal_distribution(np.ones(4) / 4, [0, 0])

    def test_brute_force_agreement(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            m = int(rng.integers(2, 6))
            probs = rng.random(2**m)
            probs /= probs.sum()
            k = int(rng.integers(1, m + 1))
            wires = rng.choice(m, size=k, replace=False).tolist()
            expected = np.zeros(2**k)
            for i in range(probs.size):
                j = 0
                for t, w in enumerate(wires):
                    j |= ((i >> w) & 1) << t
                expected[j] += probs[i]
            assert np.allclose(marginal_distribution(probs, wires), expected)


class TestVirtualDistribution:
    def test_routed_ideal_limit_matches_original(self):
        device = get_device("toronto")
        circuit = ghz_circuit(3)
        probs, result = transpiled_virtual_distribution(
            circuit, device, optimization_level=1
        )
        assert probs.size == 8
        assert probs.sum() == pytest.approx(1.0)

    def test_routing_with_manual_layout(self):
        device = get_device("toronto")
        circuit = ghz_circuit(3)
        probs, result = transpiled_virtual_distribution(
            circuit, device, optimization_level=1, initial_layout=[0, 1, 4]
        )
        assert result.initial_layout.physical_qubits == (0, 1, 4)
        assert probs.sum() == pytest.approx(1.0)

    def test_hardware_factory_used(self):
        device = get_device("rome")
        created = []

        def factory(dev, qubits):
            hw = FakeHardware(dev, qubits, shots=1024, seed=2)
            created.append(hw)
            return hw

        probs, _ = transpiled_virtual_distribution(
            ghz_circuit(3), device, hardware=factory
        )
        assert len(created) == 1
        assert probs.sum() == pytest.approx(1.0)

    def test_ghz_marginal_shape_preserved(self):
        """Routed + marginalised GHZ keeps the 00..0/11..1 structure."""
        device = get_device("toronto")
        probs, _ = transpiled_virtual_distribution(
            ghz_circuit(3), device, optimization_level=3
        )
        # even under noise, the two GHZ peaks dominate
        assert probs[0] + probs[7] > 0.6


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_marginal_preserves_mass_property(seed):
    rng = np.random.default_rng(seed)
    probs = rng.random(16)
    probs /= probs.sum()
    out = marginal_distribution(probs, [2, 0])
    assert out.sum() == pytest.approx(1.0)
    assert (out >= 0).all()
