"""Synthesis: objective, QSearch, QFast, compression, approximation pools."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit, random_u3_cx_circuit
from repro.linalg import allclose_up_to_global_phase, haar_unitary
from repro.synthesis import (
    ApproximateCircuitSet,
    CircuitStructure,
    CompressionSynthesizer,
    HilbertSchmidtObjective,
    MIN_HS_THRESHOLD,
    QFastSynthesizer,
    QSearchSynthesizer,
    decompose_two_qubit_unitary,
    generate_approximate_circuits,
    hs_distance,
    optimize_structure,
    structure_from_circuit,
)


class TestHSDistance:
    def test_zero_for_equal(self, rng):
        u = haar_unitary(4, rng)
        assert hs_distance(u, u) == pytest.approx(0.0, abs=1e-7)

    def test_phase_invariant(self, rng):
        u = haar_unitary(4, rng)
        assert hs_distance(u, np.exp(0.9j) * u) == pytest.approx(0.0, abs=1e-7)

    def test_symmetric(self, rng):
        a, b = haar_unitary(4, 1), haar_unitary(4, 2)
        assert hs_distance(a, b) == pytest.approx(hs_distance(b, a))

    def test_orthogonal_processes(self):
        # Tr(Z^+ X) = 0 -> distance 1
        from repro.circuits.gates import gate_matrix

        assert hs_distance(gate_matrix("z"), gate_matrix("x")) == pytest.approx(1.0)

    def test_bounded(self, rng):
        for s in range(5):
            d = hs_distance(haar_unitary(8, s), haar_unitary(8, s + 100))
            assert 0.0 <= d <= 1.0


class TestCircuitStructure:
    def test_param_count(self):
        st = CircuitStructure(3, ((0, 1), (1, 2)))
        assert st.num_params == 9 + 12
        assert st.cnot_count == 2

    def test_invalid_placement(self):
        with pytest.raises(ValueError):
            CircuitStructure(2, ((0, 0),))
        with pytest.raises(ValueError):
            CircuitStructure(2, ((0, 5),))

    def test_to_circuit_matches_unitary(self, rng):
        st = CircuitStructure(2, ((0, 1),))
        p = rng.uniform(-np.pi, np.pi, st.num_params)
        assert allclose_up_to_global_phase(
            st.unitary(p), st.to_circuit(p).unitary()
        )

    def test_extended(self):
        st = CircuitStructure(2).extended((0, 1))
        assert st.placements == ((0, 1),)


class TestObjective:
    def test_fast_matches_reference(self, rng):
        target = haar_unitary(8, rng)
        st = CircuitStructure(3, ((0, 1), (1, 2), (0, 2)))
        obj = HilbertSchmidtObjective(target, st)
        for _ in range(5):
            p = rng.uniform(-np.pi, np.pi, st.num_params)
            c1, g1 = obj.smooth_cost_and_grad(p)
            c2, g2 = obj.smooth_cost_and_grad_reference(p)
            assert abs(c1 - c2) < 1e-12
            assert np.max(np.abs(g1 - g2)) < 1e-10

    def test_gradient_finite_difference(self, rng):
        target = haar_unitary(4, rng)
        st = CircuitStructure(2, ((0, 1),))
        obj = HilbertSchmidtObjective(target, st)
        p = rng.uniform(-np.pi, np.pi, st.num_params)
        c, g = obj.smooth_cost_and_grad(p)
        eps = 1e-7
        for i in range(p.size):
            p2 = p.copy()
            p2[i] += eps
            fd = (obj.smooth_cost(p2) - c) / eps
            assert abs(fd - g[i]) < 1e-4, i

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            HilbertSchmidtObjective(haar_unitary(8, rng), CircuitStructure(2))

    def test_optimize_reaches_representable_target(self, rng):
        st = CircuitStructure(2, ((0, 1),))
        truth = rng.uniform(-np.pi, np.pi, st.num_params)
        target = st.unitary(truth)
        res = optimize_structure(target, st, restarts=4, rng=rng)
        assert res.cost < 1e-6


class TestQSearch:
    def test_ghz2_one_cnot(self):
        res = QSearchSynthesizer(seed=0).synthesize(ghz_circuit(2).unitary())
        assert res.success and res.best.cnot_count == 1

    def test_ghz3_two_cnots(self):
        res = QSearchSynthesizer(seed=0, max_cnots=4).synthesize(
            ghz_circuit(3).unitary()
        )
        assert res.success and res.best.cnot_count == 2

    def test_identity_zero_cnots(self):
        res = QSearchSynthesizer(seed=0).synthesize(np.eye(4))
        assert res.success and res.best.cnot_count == 0

    def test_intermediates_recorded(self):
        res = QSearchSynthesizer(seed=0, max_cnots=4).synthesize(
            ghz_circuit(3).unitary()
        )
        assert len(res.intermediates) == res.nodes_explored
        assert any(r.cnot_count == 0 for r in res.intermediates)

    def test_progress_callback(self):
        seen = []
        QSearchSynthesizer(seed=0).synthesize(
            ghz_circuit(2).unitary(), progress_callback=seen.append
        )
        assert len(seen) >= 2

    def test_coupling_respected(self):
        res = QSearchSynthesizer(
            coupling=[(0, 1), (1, 2)], seed=0, max_cnots=4
        ).synthesize(ghz_circuit(3).unitary())
        for record in res.intermediates:
            for edge in record.structure.placements:
                assert edge in ((0, 1), (1, 2))

    def test_synthesized_circuit_matches_target(self):
        target = random_u3_cx_circuit(2, 2, seed=3).unitary()
        res = QSearchSynthesizer(seed=1, max_cnots=4).synthesize(target)
        assert res.success
        assert allclose_up_to_global_phase(
            target, res.circuit().unitary(), atol=1e-5
        )

    def test_bad_target_shape(self):
        with pytest.raises(ValueError):
            QSearchSynthesizer().synthesize(np.eye(3))

    def test_bad_coupling_rejected(self):
        with pytest.raises(ValueError):
            QSearchSynthesizer(coupling=[(0, 9)]).synthesize(np.eye(4))


class TestQFast:
    def test_ghz3(self):
        res = QFastSynthesizer(seed=5, max_cnots=6).synthesize(
            ghz_circuit(3).unitary()
        )
        assert res.success

    def test_partial_solution_callback(self):
        partials = []
        QFastSynthesizer(
            seed=5,
            model_options={"partial_solution_callback": partials.append},
        ).synthesize(ghz_circuit(3).unitary())
        assert len(partials) >= 2
        assert all(isinstance(c, QuantumCircuit) for c in partials)

    def test_unknown_model_option_rejected(self):
        with pytest.raises(ValueError):
            QFastSynthesizer(model_options={"bogus": 1})

    def test_respects_max_cnots(self):
        res = QFastSynthesizer(seed=1, max_cnots=2, patience=99).synthesize(
            haar_unitary(8, 3)
        )
        assert all(r.cnot_count <= 2 for r in res.intermediates)


class TestCompression:
    def test_structure_from_circuit_exact(self):
        qc = random_u3_cx_circuit(3, 4, seed=9)
        st, p = structure_from_circuit(qc)
        assert st.cnot_count == 4
        assert hs_distance(st.unitary(p), qc.unitary()) < 1e-6

    def test_rejects_non_basis_circuit(self):
        qc = QuantumCircuit(2).swap(0, 1)
        with pytest.raises(ValueError):
            structure_from_circuit(qc)

    def test_compression_produces_frontier(self):
        qc = random_u3_cx_circuit(2, 5, seed=11)
        cs = CompressionSynthesizer(trial_drops=2, maxiter=80, seed=0)
        res = cs.synthesize(qc.unitary(), qc)
        counts = {r.cnot_count for r in res.intermediates}
        assert 0 in counts and 5 in counts
        # The undeleted encoding is exact.
        assert min(
            r.hs_distance for r in res.intermediates if r.cnot_count == 5
        ) < 1e-5

    def test_width_mismatch_rejected(self):
        qc = random_u3_cx_circuit(2, 2, seed=1)
        with pytest.raises(ValueError):
            CompressionSynthesizer().synthesize(np.eye(8), qc)


class TestTwoQubitDecomposition:
    @pytest.mark.parametrize("seed", range(3))
    def test_haar_needs_three_cnots(self, seed):
        u = haar_unitary(4, seed)
        circ, k = decompose_two_qubit_unitary(u, seed=0)
        assert k == 3
        assert allclose_up_to_global_phase(u, circ.unitary(), atol=1e-6)

    def test_cx_needs_one(self):
        from repro.circuits.gates import gate_matrix

        _circ, k = decompose_two_qubit_unitary(gate_matrix("cx"), seed=0)
        assert k == 1

    def test_local_unitary_needs_zero(self):
        u = np.kron(haar_unitary(2, 1), haar_unitary(2, 2))
        _circ, k = decompose_two_qubit_unitary(u, seed=0)
        assert k == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            decompose_two_qubit_unitary(np.eye(8))


class TestApproximationPools:
    def test_generate_and_filter(self):
        pool = generate_approximate_circuits(
            ghz_circuit(3).unitary(),
            max_hs=float("inf"),
            seed=42,
            use_cache=False,
        )
        assert len(pool) > 0
        assert pool.minimal_hs().hs_distance < 1e-6
        narrowed = pool.filtered(0.5)
        assert all(c.hs_distance <= 0.5 for c in narrowed)

    def test_min_threshold_enforced(self):
        with pytest.raises(ValueError):
            generate_approximate_circuits(np.eye(4), max_hs=0.01)
        assert MIN_HS_THRESHOLD == 0.1

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        target = ghz_circuit(2).unitary()
        a = generate_approximate_circuits(target, max_hs=float("inf"), seed=1)
        b = generate_approximate_circuits(target, max_hs=float("inf"), seed=1)
        assert len(a) == len(b)
        assert [c.cnot_count for c in a] == [c.cnot_count for c in b]

    def test_selectors(self):
        pool = generate_approximate_circuits(
            ghz_circuit(2).unitary(),
            max_hs=float("inf"),
            seed=2,
            use_cache=False,
        )
        assert pool.shortest().cnot_count == min(pool.cnot_counts())
        per_depth = pool.best_per_cnot_count()
        for count, circ in per_depth.items():
            assert circ.cnot_count == count

    def test_unknown_tool_rejected(self):
        with pytest.raises(ValueError):
            generate_approximate_circuits(np.eye(4), tool="magic")

    def test_compress_requires_reference(self):
        with pytest.raises(ValueError):
            generate_approximate_circuits(np.eye(4), tool="compress")

    def test_circuit_target_accepted(self):
        pool = generate_approximate_circuits(
            ghz_circuit(2), max_hs=float("inf"), seed=3, use_cache=False
        )
        assert pool.num_qubits == 2
