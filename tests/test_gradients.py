"""Gradient machinery: analytic derivatives vs finite differences."""

import numpy as np
import pytest

from repro.circuits.gates import gate_matrix
from repro.linalg import (
    GateSpec,
    circuit_unitary_and_gradient,
    u3_matrix_and_derivatives,
)


def _build_specs(params):
    m1, d1 = u3_matrix_and_derivatives(*params[0:3])
    m2, d2 = u3_matrix_and_derivatives(*params[3:6])
    m3, d3 = u3_matrix_and_derivatives(*params[6:9])
    return [
        GateSpec((0,), m1, d1, 0),
        GateSpec((1,), m2, d2, 3),
        GateSpec((0, 1), gate_matrix("cx")),
        GateSpec((1,), m3, d3, 6),
    ]


class TestU3Derivatives:
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_finite_difference(self, index, rng):
        p = rng.uniform(-np.pi, np.pi, 3)
        m, dm = u3_matrix_and_derivatives(*p)
        eps = 1e-7
        p2 = p.copy()
        p2[index] += eps
        m2, _ = u3_matrix_and_derivatives(*p2)
        fd = (m2 - m) / eps
        assert np.max(np.abs(fd - dm[index])) < 1e-6

    def test_matrix_matches_registry(self, rng):
        p = rng.uniform(-np.pi, np.pi, 3)
        m, _ = u3_matrix_and_derivatives(*p)
        assert np.allclose(m, gate_matrix("u3", tuple(p)))


class TestCircuitGradient:
    def test_unitary_matches_composition(self, rng):
        p = rng.uniform(-np.pi, np.pi, 9)
        u, _ = circuit_unitary_and_gradient(_build_specs(p), 2, 9)
        assert np.allclose(u.conj().T @ u, np.eye(4), atol=1e-10)

    def test_gradient_vs_finite_difference(self, rng):
        p = rng.uniform(-np.pi, np.pi, 9)
        u, du = circuit_unitary_and_gradient(_build_specs(p), 2, 9)
        eps = 1e-7
        for i in range(9):
            p2 = p.copy()
            p2[i] += eps
            u2, _ = circuit_unitary_and_gradient(_build_specs(p2), 2, 9)
            fd = (u2 - u) / eps
            assert np.max(np.abs(fd - du[i])) < 1e-5, i

    def test_zero_params(self):
        specs = [GateSpec((0, 1), gate_matrix("cx"))]
        u, du = circuit_unitary_and_gradient(specs, 2, 0)
        assert np.allclose(u, gate_matrix("cx"))
        assert du.shape == (0, 4, 4)

    def test_three_qubits(self, rng):
        p = rng.uniform(-np.pi, np.pi, 3)
        m, dm = u3_matrix_and_derivatives(*p)
        specs = [
            GateSpec((2,), m, dm, 0),
            GateSpec((0, 2), gate_matrix("cx")),
        ]
        u, du = circuit_unitary_and_gradient(specs, 3, 3)
        eps = 1e-7
        for i in range(3):
            p2 = p.copy()
            p2[i] += eps
            m2, dm2 = u3_matrix_and_derivatives(*p2)
            specs2 = [GateSpec((2,), m2, dm2, 0), GateSpec((0, 2), gate_matrix("cx"))]
            u2, _ = circuit_unitary_and_gradient(specs2, 3, 3)
            assert np.max(np.abs((u2 - u) / eps - du[i])) < 1e-5
