"""Process-pool fan-out: determinism, fallback, and driver integration."""

import os
import time

import numpy as np
import pytest

from repro.experiments import get_scale, tfim_pools
from repro.faults import TaskTimeoutError
from repro.noise import sweep_map
from repro.parallel import (
    POOL_RETRY_COOLDOWN,
    effective_jobs,
    parallel_map,
    reset_pool,
    spawn_generators,
)
from repro.parallel import pool as pool_module


# --- module-level workers (must be picklable for the pool path) -----------

def _square(x):
    return x * x


def _draw(x, rng):
    return (x, rng.random(3).tolist())


def _boom(x):
    raise ValueError(f"task {x} failed")


def _sweep_probe(level, model):
    return (level, model.name)


def _sleepy(x):
    time.sleep(5.0)
    return x


class TestEffectiveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_jobs() == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert effective_jobs() == 3

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert effective_jobs(2) == 2

    @pytest.mark.parametrize("value", ["auto", "0", "-1"])
    def test_auto_means_cpu_count(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        assert effective_jobs() == (os.cpu_count() or 1)

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            effective_jobs()


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(_square, range(10), jobs=1) == [
            x * x for x in range(10)
        ]

    def test_preserves_order_pooled(self):
        assert parallel_map(_square, range(10), jobs=3) == [
            x * x for x in range(10)
        ]

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_draw, [], jobs=4, seed=1) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="task 2"):
            parallel_map(_boom, [2], jobs=1)
        with pytest.raises(ValueError):
            parallel_map(_boom, [1, 2, 3], jobs=2)

    def test_seeding_independent_of_worker_count(self):
        serial = parallel_map(_draw, range(6), jobs=1, seed=42)
        pooled = parallel_map(_draw, range(6), jobs=3, seed=42)
        assert serial == pooled

    def test_seed_changes_streams(self):
        a = parallel_map(_draw, range(4), jobs=1, seed=1)
        b = parallel_map(_draw, range(4), jobs=1, seed=2)
        assert a != b

    def test_tasks_get_distinct_streams(self):
        draws = [d for _, d in parallel_map(_draw, range(5), jobs=1, seed=7)]
        flat = [tuple(d) for d in draws]
        assert len(set(flat)) == len(flat)


class TestCrashResilience:
    CRASH_SPEC = "seed=5,crash=0.6"

    def test_worker_crashes_rescheduled_deterministically(
        self, monkeypatch, tmp_path
    ):
        """Injected worker deaths never change results or re-fire on_result."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        expected = parallel_map(_draw, range(8), jobs=1, seed=42)

        log = tmp_path / "faults.log"
        monkeypatch.setenv("REPRO_FAULTS", self.CRASH_SPEC)
        monkeypatch.setenv("REPRO_FAULTS_LOG", str(log))
        fired = []
        out = parallel_map(
            _draw,
            range(8),
            jobs=2,
            seed=42,
            on_result=lambda i, value: fired.append(i),
        )
        assert out == expected
        assert fired == list(range(8))  # exactly once each, in order
        # The schedule actually killed workers (the point of the test).
        assert "crash" in log.read_text()

    def test_crash_faults_ignored_when_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=5,crash=1")
        assert parallel_map(_square, range(4), jobs=1) == [0, 1, 4, 9]


class TestDeadlines:
    def test_deadline_exhaustion_raises_task_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with pytest.raises(TaskTimeoutError, match="deadline"):
            parallel_map(
                _sleepy, range(2), jobs=2, deadline=0.2, max_restarts=0
            )

    def test_fast_tasks_unaffected_by_deadline(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        out = parallel_map(_square, range(6), jobs=2, deadline=30.0)
        assert out == [x * x for x in range(6)]


class TestPoolCooldown:
    def test_failure_latches_then_expires(self, monkeypatch):
        monkeypatch.setattr(pool_module, "_POOL_FAILED_AT", time.monotonic())
        assert pool_module._pool_unavailable()
        # Inside the cooldown the map silently runs serial (same results).
        assert parallel_map(_square, range(4), jobs=4) == [0, 1, 4, 9]
        monkeypatch.setattr(
            pool_module,
            "_POOL_FAILED_AT",
            time.monotonic() - POOL_RETRY_COOLDOWN - 1,
        )
        assert not pool_module._pool_unavailable()  # expired -> retried

    def test_reset_pool_clears_latch(self, monkeypatch):
        monkeypatch.setattr(pool_module, "_POOL_FAILED_AT", time.monotonic())
        reset_pool()
        assert not pool_module._pool_unavailable()


class TestSpawnGenerators:
    def test_stable_per_index(self):
        a = [g.random() for g in spawn_generators(5, 4)]
        b = [g.random() for g in spawn_generators(5, 4)]
        assert a == b

    def test_accepts_seedsequence(self):
        root = np.random.SeedSequence(5)
        a = [g.random() for g in spawn_generators(root, 3)]
        b = [g.random() for g in spawn_generators(5, 3)]
        assert a == b


class TestDriverIntegration:
    def test_tfim_pools_identical_across_worker_counts(self):
        scale = get_scale("smoke")
        serial = tfim_pools(2, scale=scale, jobs=1)
        pooled = tfim_pools(2, scale=scale, jobs=2)
        assert [s for s, _ in serial] == [s for s, _ in pooled]
        for (_, a), (_, b) in zip(serial, pooled):
            assert [c.cnot_count for c in a.circuits] == [
                c.cnot_count for c in b.circuits
            ]
            assert [c.hs_distance for c in a.circuits] == [
                c.hs_distance for c in b.circuits
            ]

    def test_sweep_map_order_and_models(self):
        levels = (0.0, 0.06, 0.24)
        out = sweep_map(_sweep_probe, "ourense", levels, qubits=[0, 1], jobs=2)
        assert [level for level, _ in out] == list(levels)
        assert all(isinstance(name, str) for _, name in out)
