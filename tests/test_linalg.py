"""Tests for the dense linear-algebra substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.gates import gate_matrix
from repro.linalg import (
    Operator,
    allclose_up_to_global_phase,
    apply_matrix_to_state,
    controlled_unitary,
    embed_gate,
    global_phase_aligned,
    haar_state,
    haar_unitary,
    is_unitary,
    random_special_unitary,
)


class TestApplyMatrix:
    def test_matches_kron_embedding_1q(self, rng):
        g = haar_unitary(2, rng)
        state = haar_state(3, rng)
        # qubit 1 of 3: kron(I, g, I)
        full = np.kron(np.eye(2), np.kron(g, np.eye(2)))
        assert np.allclose(
            apply_matrix_to_state(g, state, (1,), 3), full @ state
        )

    def test_matches_kron_embedding_2q_adjacent(self, rng):
        g = haar_unitary(4, rng)
        state = haar_state(3, rng)
        # qubits (0, 1): kron(I, g)
        full = np.kron(np.eye(2), g)
        assert np.allclose(
            apply_matrix_to_state(g, state, (0, 1), 3), full @ state
        )

    def test_qubit_order_matters(self, rng):
        cx = gate_matrix("cx")
        psi01 = apply_matrix_to_state(cx, haar_state(2, 1), (0, 1), 2)
        psi10 = apply_matrix_to_state(cx, haar_state(2, 1), (1, 0), 2)
        assert not np.allclose(psi01, psi10)

    def test_batch_application(self, rng):
        g = haar_unitary(2, rng)
        batch = np.stack([haar_state(2, s) for s in range(5)], axis=1)
        out = apply_matrix_to_state(g, batch, (0,), 2)
        for col in range(5):
            single = apply_matrix_to_state(g, batch[:, col], (0,), 2)
            assert np.allclose(out[:, col], single)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_matrix_to_state(np.eye(2), np.zeros(8), (0, 1), 3)

    def test_embed_gate_unitary(self, rng):
        g = haar_unitary(4, rng)
        e = embed_gate(g, (0, 2), 3)
        assert is_unitary(e)


class TestOperator:
    def test_from_circuit(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        op = Operator(qc)
        assert np.allclose(op.data, qc.unitary())

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Operator(np.eye(3))

    def test_compose_order(self, rng):
        a, b = haar_unitary(4, 1), haar_unitary(4, 2)
        composed = Operator(a).compose(Operator(b))
        assert np.allclose(composed.data, b @ a)

    def test_tensor(self):
        x, h = Operator(gate_matrix("x")), Operator(gate_matrix("h"))
        assert np.allclose(x.tensor(h).data, np.kron(x.data, h.data))

    def test_adjoint_inverts(self, rng):
        u = Operator(haar_unitary(8, rng))
        assert (u @ u.adjoint()).equiv(Operator(np.eye(8)))

    def test_equiv_ignores_phase(self, rng):
        u = haar_unitary(4, rng)
        assert Operator(u).equiv(Operator(np.exp(0.7j) * u))


class TestPhaseHelpers:
    def test_global_phase_alignment(self, rng):
        u = haar_unitary(4, rng)
        v = np.exp(1.3j) * u
        assert np.allclose(global_phase_aligned(u, v), u)

    def test_allclose_up_to_phase_rejects_distinct(self, rng):
        assert not allclose_up_to_global_phase(
            haar_unitary(4, 1), haar_unitary(4, 2)
        )


class TestHaar:
    @pytest.mark.parametrize("dim", [2, 4, 8])
    def test_haar_unitary_is_unitary(self, dim):
        assert is_unitary(haar_unitary(dim, seed=dim))

    def test_special_unitary_det_one(self):
        u = random_special_unitary(4, seed=3)
        assert abs(np.linalg.det(u) - 1.0) < 1e-9

    def test_haar_state_normalised(self):
        psi = haar_state(4, seed=5)
        assert abs(np.linalg.norm(psi) - 1.0) < 1e-12

    def test_deterministic_for_seed(self):
        assert np.allclose(haar_unitary(4, 7), haar_unitary(4, 7))

    def test_generator_seed_accepted(self):
        g = np.random.default_rng(0)
        haar_unitary(4, g)  # should not raise


class TestControlledUnitary:
    def test_single_control_x_is_cx(self):
        cu = controlled_unitary(gate_matrix("x"), 1)
        assert np.allclose(cu, gate_matrix("cx"))

    def test_two_controls_is_ccx(self):
        cu = controlled_unitary(gate_matrix("x"), 2)
        assert np.allclose(cu, gate_matrix("ccx"))

    def test_controlled_unitary_is_unitary(self, rng):
        assert is_unitary(controlled_unitary(haar_unitary(2, rng), 2))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_random_circuit_unitarity_property(seed):
    """Property: every random circuit's computed unitary is unitary."""
    qc = random_circuit(3, 15, seed=seed)
    assert is_unitary(qc.unitary())
