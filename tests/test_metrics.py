"""Process and distribution metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import gate_matrix
from repro.linalg import haar_unitary
from repro.metrics import (
    UNIFORM_NOISE_JS,
    average_gate_fidelity,
    frobenius_distance,
    hellinger_distance,
    hs_distance,
    jensen_shannon_distance,
    kl_divergence,
    process_fidelity,
    total_variation_distance,
)


def _dist(seed, n=8):
    rng = np.random.default_rng(seed)
    p = rng.random(n)
    return p / p.sum()


class TestDistributionMetrics:
    def test_js_zero_for_identical(self):
        p = _dist(0)
        assert jensen_shannon_distance(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_js_symmetric(self):
        p, q = _dist(1), _dist(2)
        assert jensen_shannon_distance(p, q) == pytest.approx(
            jensen_shannon_distance(q, p)
        )

    def test_js_max_for_disjoint(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert jensen_shannon_distance(p, q) == pytest.approx(math.sqrt(math.log(2)))

    def test_js_triangle_inequality(self):
        p, q, r = _dist(3), _dist(4), _dist(5)
        assert jensen_shannon_distance(p, r) <= (
            jensen_shannon_distance(p, q) + jensen_shannon_distance(q, r) + 1e-12
        )

    def test_uniform_noise_floor_value(self):
        """The paper's 0.465 line, independent of qubit count."""
        assert UNIFORM_NOISE_JS == pytest.approx(0.4645, abs=5e-4)
        for n in (4, 5, 6):
            d = 2**n
            half = np.zeros(d)
            half[: d // 2] = 2.0 / d
            uniform = np.full(d, 1.0 / d)
            assert jensen_shannon_distance(half, uniform) == pytest.approx(
                UNIFORM_NOISE_JS, abs=1e-12
            )

    def test_kl_asymmetric_and_infinite(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        assert kl_divergence(p, q) == math.inf
        assert kl_divergence(q, p) == pytest.approx(math.log(2))

    def test_kl_zero_for_identical(self):
        p = _dist(6)
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_tvd_bounds(self):
        assert total_variation_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)
        p = _dist(7)
        assert total_variation_distance(p, p) == pytest.approx(0.0)

    def test_hellinger_bounds(self):
        assert hellinger_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            jensen_shannon_distance(np.ones(2) / 2, np.ones(4) / 4)

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.5, -0.5]), np.ones(2) / 2)

    def test_unnormalised_inputs_normalised(self):
        p = np.array([2.0, 2.0])
        q = np.array([1.0, 1.0])
        assert jensen_shannon_distance(p, q) == pytest.approx(0.0, abs=1e-9)


class TestProcessMetrics:
    def test_process_fidelity_identity(self, rng):
        u = haar_unitary(4, rng)
        assert process_fidelity(u, u) == pytest.approx(1.0)

    def test_average_gate_fidelity_relation(self, rng):
        a, b = haar_unitary(4, 1), haar_unitary(4, 2)
        d = 4
        expected = (d * process_fidelity(a, b) + 1) / (d + 1)
        assert average_gate_fidelity(a, b) == pytest.approx(expected)

    def test_hs_and_fidelity_consistency(self, rng):
        a, b = haar_unitary(8, 3), haar_unitary(8, 4)
        assert hs_distance(a, b) ** 2 + process_fidelity(a, b) == pytest.approx(1.0)

    def test_frobenius_phase_aligned(self, rng):
        u = haar_unitary(4, rng)
        assert frobenius_distance(u, np.exp(1j) * u) == pytest.approx(0.0, abs=1e-9)

    def test_frobenius_unaligned(self, rng):
        u = haar_unitary(4, rng)
        raw = frobenius_distance(u, np.exp(1j) * u, align_phase=False)
        assert raw > 0.5


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_js_metric_axioms_property(seed):
    """Property: JS distance is a symmetric, bounded pseudo-metric."""
    rng = np.random.default_rng(seed)
    p = rng.random(8)
    q = rng.random(8)
    p /= p.sum()
    q /= q.sum()
    d = jensen_shannon_distance(p, q)
    assert 0.0 <= d <= math.sqrt(math.log(2)) + 1e-12
    assert d == pytest.approx(jensen_shannon_distance(q, p))
