"""Density-matrix simulator tests, including cross-validation."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit, random_circuit
from repro.noise import GateError, NoiseModel, depolarizing_channel, get_device
from repro.sim import (
    DensityMatrix,
    DensityMatrixSimulator,
    StatevectorSimulator,
)


class TestDensityMatrix:
    def test_zero_state(self):
        rho = DensityMatrix.zero_state(2)
        assert rho.probabilities()[0] == 1.0
        assert rho.purity() == pytest.approx(1.0)

    def test_from_statevector(self):
        sv = StatevectorSimulator().run(ghz_circuit(2))
        rho = DensityMatrix.from_statevector(sv)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.fidelity_with_pure(sv) == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            DensityMatrix(np.zeros((3, 3)))

    def test_expectation_z(self):
        rho = DensityMatrix.zero_state(2)
        assert rho.expectation_z(1) == pytest.approx(1.0)


class TestNoiselessAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_statevector(self, seed):
        qc = random_circuit(3, 25, seed=seed)
        p_dm = DensityMatrixSimulator().run(qc).probabilities()
        p_sv = StatevectorSimulator().run(qc).probabilities()
        assert np.allclose(p_dm, p_sv, atol=1e-10)

    def test_purity_stays_one_without_noise(self):
        rho = DensityMatrixSimulator().run(random_circuit(3, 20, seed=1))
        assert rho.purity() == pytest.approx(1.0)


class TestNoisyEvolution:
    def _noisy_model(self, p=0.05):
        model = NoiseModel("test")
        model.add_gate_error(GateError(depolarizing=p), "cx", None)
        return model

    def test_noise_reduces_purity(self):
        sim = DensityMatrixSimulator(self._noisy_model())
        rho = sim.run(ghz_circuit(3))
        assert rho.purity() < 1.0

    def test_trace_preserved(self):
        sim = DensityMatrixSimulator(self._noisy_model(0.2))
        rho = sim.run(ghz_circuit(3))
        assert rho.trace() == pytest.approx(1.0)
        assert rho.is_positive_semidefinite()

    def test_more_noise_less_fidelity(self):
        qc = ghz_circuit(3)
        ideal = StatevectorSimulator().run(qc)
        fids = []
        for p in (0.01, 0.05, 0.2):
            rho = DensityMatrixSimulator(self._noisy_model(p)).run(qc)
            fids.append(rho.fidelity_with_pure(ideal))
        assert fids[0] > fids[1] > fids[2]

    def test_depth_dependence(self):
        """Deeper circuits accumulate more error — the paper's premise."""
        model = get_device("toronto").noise_model()
        sim = DensityMatrixSimulator(model)
        sv = StatevectorSimulator()
        shallow = QuantumCircuit(2).cx(0, 1)
        deep = QuantumCircuit(2)
        for _ in range(10):
            deep.cx(0, 1)
            deep.cx(0, 1)
        deep.cx(0, 1)
        f_shallow = sim.run(shallow).fidelity_with_pure(sv.run(shallow))
        f_deep = sim.run(deep).fidelity_with_pure(sv.run(deep))
        assert f_deep < f_shallow

    def test_readout_error_shifts_distribution(self):
        device = get_device("rome")
        model = device.noise_model()
        sim = DensityMatrixSimulator(model)
        qc = QuantumCircuit(2)  # identity: ideal distribution is delta at 00
        with_ro = sim.probabilities(qc, with_readout_error=True)
        without_ro = sim.probabilities(qc, with_readout_error=False)
        assert without_ro[0] == pytest.approx(1.0)
        assert with_ro[0] < 1.0
        assert with_ro.sum() == pytest.approx(1.0)

    def test_initial_state_width_check(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator().run(
                QuantumCircuit(2), initial_state=DensityMatrix.zero_state(3)
            )
