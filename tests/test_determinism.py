"""Determinism / regression guards.

Every stochastic component is seeded; these tests pin a few end-to-end
values so silent behavioural drift (a changed default, a reordered RNG
draw) fails loudly instead of quietly changing every figure.
"""

import numpy as np
import pytest

from repro.apps.tfim import ideal_magnetization
from repro.circuits import random_circuit
from repro.hardware import FakeHardware
from repro.linalg import haar_unitary
from repro.noise import get_device
from repro.sim import DensityMatrixSimulator


class TestSeededDeterminism:
    def test_device_snapshots_are_frozen(self):
        """The synthesised Toronto calibration must never silently change."""
        device = get_device("toronto")
        assert device.edge_error(0, 1) == pytest.approx(
            0.024574659936095995, rel=1e-12
        )
        p01, p10 = device.readout_errors[0]
        assert p01 == pytest.approx(0.012003872846648013, rel=1e-9)
        assert p10 == pytest.approx(0.03520828728722907, rel=1e-9)

    def test_haar_sampling_frozen(self):
        u = haar_unitary(2, seed=42)
        assert u[0, 0] == pytest.approx(
            0.14398278928991304 - 0.9218895399350062j, rel=1e-12
        )

    def test_random_circuit_frozen(self):
        qc = random_circuit(3, 10, seed=0)
        assert [g.name for g in qc][:4] == ["t", "cx", "t", "sx"]

    def test_noise_free_magnetization_frozen(self):
        mags = ideal_magnetization(num_steps=5)
        expected = [0.99977, 0.99645, 0.98294, 0.94985, 0.88851]
        assert np.allclose(mags, expected, atol=1e-4)

    def test_noisy_simulation_deterministic(self):
        from repro.circuits import ghz_circuit

        sim = DensityMatrixSimulator(get_device("rome").noise_model())
        a = sim.probabilities(ghz_circuit(3))
        b = sim.probabilities(ghz_circuit(3))
        assert np.array_equal(a, b)

    def test_fake_hardware_reproducible_across_instances(self):
        from repro.circuits import ghz_circuit

        a = FakeHardware("manhattan", shots=512, seed=9).run(ghz_circuit(3))
        b = FakeHardware("manhattan", shots=512, seed=9).run(ghz_circuit(3))
        assert np.array_equal(a, b)

    def test_trajectory_backend_independent_of_call_order(self):
        """TrajectoryBackend reseeds per run, so a circuit's distribution
        cannot depend on what was executed before it."""
        from repro.circuits import ghz_circuit
        from repro.experiments import TrajectoryBackend

        model = get_device("rome").noise_model()
        fresh = TrajectoryBackend(model, shots=256, seed=5).run(ghz_circuit(2))
        reused = TrajectoryBackend(model, shots=256, seed=5)
        reused.run(random_circuit(2, 8, seed=1).without_measurements())
        assert np.array_equal(reused.run(ghz_circuit(2)), fresh)

    def test_worker_count_does_not_change_results(self, monkeypatch):
        """REPRO_JOBS is a throughput knob, never a results knob."""
        from repro.experiments import get_scale, tfim_pools

        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = tfim_pools(2, scale=get_scale("smoke"))
        monkeypatch.setenv("REPRO_JOBS", "2")
        pooled = tfim_pools(2, scale=get_scale("smoke"))
        for (_, a), (_, b) in zip(serial, pooled):
            assert [(c.cnot_count, c.hs_distance) for c in a.circuits] == [
                (c.cnot_count, c.hs_distance) for c in b.circuits
            ]
