"""The content-addressed artifact store and run manifests."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    RunManifest,
    canonical_config,
    config_digest,
    list_runs,
    load_manifest,
    open_store,
    resolve_store_path,
    save_manifest,
)
from repro.store.core import dumps_canonical
from repro.store.manifest import code_version, manifest_path
from repro.store.registry import diff_payloads, runs_main


class TestCanonicalConfig:
    def test_key_order_irrelevant(self):
        a = {"b": 1, "a": [1, 2], "c": {"y": 2.5, "x": "s"}}
        b = {"c": {"x": "s", "y": 2.5}, "a": [1, 2], "b": 1}
        assert config_digest(a) == config_digest(b)

    def test_distinct_configs_distinct_digests(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})
        assert config_digest({"a": 1}) != config_digest({"a": 1.0001})

    def test_numpy_scalars_collapse(self):
        a = {"n": np.int64(3), "x": np.float64(0.5), "f": np.bool_(True)}
        b = {"n": 3, "x": 0.5, "f": True}
        assert config_digest(a) == config_digest(b)

    def test_tuples_and_sets_normalise(self):
        assert config_digest({"c": (1, 2)}) == config_digest({"c": [1, 2]})
        assert canonical_config({3, 1, 2}) == [1, 2, 3]

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            config_digest({"x": float("nan")})
        with pytest.raises(ValueError):
            config_digest({"x": float("inf")})

    def test_non_serialisable_rejected(self):
        with pytest.raises(TypeError):
            config_digest({"f": object()})

    def test_canonical_text_is_compact_and_sorted(self):
        text = dumps_canonical({"b": 1, "a": 2})
        assert text == '{"a":2,"b":1}'


class TestResolveStore:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
        assert resolve_store_path(tmp_path / "arg") == tmp_path / "arg"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
        assert resolve_store_path() == tmp_path / "env"
        store = open_store()
        assert store is not None and store.root == tmp_path / "env"

    def test_none_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert resolve_store_path() is None
        assert open_store() is None


class TestObjects:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = {"kind": "unit", "step": 3}
        key = store.put_payload(config, {"value": 0.25})
        assert key == config_digest(config)
        assert store.get_payload(config) == {"value": 0.25}
        assert store.get_payload(key) == {"value": 0.25}
        assert store.has(config)
        envelope = store.get_object(key)
        assert envelope["config"] == config
        assert envelope["key"] == key

    def test_miss_and_corrupt_file(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get_payload({"kind": "missing"}) is None
        key = store.put_payload({"kind": "x"}, {"v": 1})
        store.object_path(key).write_text('{"key": "trunc')
        assert store.get_payload(key) is None  # corrupt = miss, no raise

    def test_sharded_layout_no_temp_leftovers(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put_payload({"kind": "y"}, {"v": 2})
        path = store.object_path(key)
        assert path.parent.name == key[:2]
        assert store.temp_files() == []

    def test_arrays_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arrays = {"m": np.arange(6).reshape(2, 3), "v": np.array([0.5])}
        key = store.put_arrays({"kind": "arr"}, arrays)
        out = store.get_arrays(key)
        np.testing.assert_array_equal(out["m"], arrays["m"])
        np.testing.assert_array_equal(out["v"], arrays["v"])
        assert store.get_arrays({"kind": "other"}) is None

    def test_object_keys_and_remove(self, tmp_path):
        store = ArtifactStore(tmp_path)
        k1 = store.put_payload({"kind": "a"}, {})
        k2 = store.put_arrays({"kind": "b"}, {"x": np.zeros(1)})
        assert store.object_keys() == sorted([k1, k2])
        assert store.remove_object(k1) == 1
        assert store.object_keys() == [k2]


_STRESS_SCRIPT = """
import sys
from repro.store import ArtifactStore
store = ArtifactStore(sys.argv[1])
offset = int(sys.argv[2])
for i in range(40):
    config = {"kind": "stress", "i": i % 20}
    store.put_payload(config, {"i": i % 20, "writer": "either"})
print(len(store.object_keys()))
"""


class TestConcurrentWriters:
    def test_two_processes_one_store(self, tmp_path):
        """Two processes hammering overlapping keys never corrupt the store."""
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _STRESS_SCRIPT, str(tmp_path), str(k)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for k in (0, 1)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        store = ArtifactStore(tmp_path)
        keys = store.object_keys()
        assert len(keys) == 20
        for key in keys:
            payload = store.get_payload(key)  # every object parses whole
            assert payload is not None and payload["writer"] == "either"
        assert store.temp_files() == []


class TestManifest:
    def make(self, run_id="run-1"):
        config = {"experiment": "fig02", "scale": "smoke"}
        return RunManifest(
            run_id=run_id,
            experiment="fig02",
            scale="smoke",
            config=config,
            config_hash=config_digest(config),
        )

    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        manifest = self.make()
        manifest.seeds["pool_seed"] = [1001]
        manifest.status = "complete"
        assert save_manifest(store, manifest)
        loaded = load_manifest(store, "run-1")
        assert loaded.to_json() == manifest.to_json()
        assert loaded.units_total == 0

    def test_records_required_provenance(self):
        manifest = self.make()
        assert manifest.config_hash == config_digest(manifest.config)
        assert manifest.scale == "smoke"
        assert manifest.code_version["package"]
        assert manifest.created_at  # ISO timestamp auto-stamped
        assert "seeds" in manifest.to_json()

    def test_code_version_shape(self):
        version = code_version()
        assert set(version) == {"package", "git"}

    def test_missing_vs_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert load_manifest(store, "nope") is None
        store.runs_dir.mkdir(parents=True)
        manifest_path(store, "bad").write_text('{"run_id": "bad", trunc')
        stub = load_manifest(store, "bad")
        assert stub.status == "corrupt"
        assert stub.run_id == "bad"

    def test_from_json_ignores_unknown_fields(self):
        data = self.make().to_json()
        data["future_field"] = 42
        loaded = RunManifest.from_json(data)
        assert loaded.run_id == "run-1"

    def test_list_runs_sorted_with_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = self.make("run-a")
        a.created_at = "2026-01-02T00:00:00+00:00"
        b = self.make("run-b")
        b.created_at = "2026-01-01T00:00:00+00:00"
        save_manifest(store, a)
        save_manifest(store, b)
        manifest_path(store, "run-c").write_text("not json")
        runs = list_runs(store)
        assert [m.run_id for m in runs[:2]] == ["run-b", "run-a"]
        assert any(m.status == "corrupt" for m in runs)


class TestDiffPayloads:
    def test_identical(self):
        assert diff_payloads({"a": [1, {"b": 2}]}, {"a": [1, {"b": 2}]}) == []

    def test_leaf_and_structure_diffs(self):
        diffs = diff_payloads(
            {"a": 1, "b": [1, 2], "c": "x"},
            {"a": 2, "b": [1, 2, 3], "d": "y"},
        )
        joined = "\n".join(diffs)
        assert "a:" in joined
        assert "length" in joined
        assert "only in" in joined


class TestRunsCLI:
    def seeded_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for rid, value in (("run-a", 1.0), ("run-b", 2.0)):
            config = {"experiment": "fig02", "scale": "smoke"}
            manifest = RunManifest(
                run_id=rid,
                experiment="fig02",
                scale="smoke",
                config=config,
                config_hash=config_digest(config),
                status="complete",
            )
            key = store.put_payload(
                {"kind": "artifact", "run_id": rid}, {"value": value}
            )
            manifest.artifacts["fig02"] = key
            manifest.unit_keys.append(key)
            save_manifest(store, manifest)
        return store

    def run(self, store, argv):
        lines = []
        code = runs_main(argv, store, out=lines.append)
        return code, "\n".join(lines)

    def test_list(self, tmp_path):
        store = self.seeded_store(tmp_path)
        code, out = self.run(store, ["list"])
        assert code == 0
        assert "run-a" in out and "run-b" in out and "complete" in out

    def test_list_empty(self, tmp_path):
        code, out = self.run(ArtifactStore(tmp_path), ["list"])
        assert code == 0 and "no runs" in out

    def test_show(self, tmp_path):
        store = self.seeded_store(tmp_path)
        code, out = self.run(store, ["show", "run-a"])
        assert code == 0
        data = json.loads(out)
        assert data["run_id"] == "run-a"
        assert data["config_hash"] == config_digest(data["config"])

    def test_show_missing(self, tmp_path):
        code, out = self.run(ArtifactStore(tmp_path), ["show", "nope"])
        assert code == 1 and "no run" in out

    def test_diff_differing_artifacts(self, tmp_path):
        store = self.seeded_store(tmp_path)
        code, out = self.run(store, ["diff", "run-a", "run-b"])
        assert code == 1  # artifact data differs
        assert "value" in out

    def test_diff_identical_runs(self, tmp_path):
        store = self.seeded_store(tmp_path)
        code, out = self.run(store, ["diff", "run-a", "run-a"])
        assert code == 0 and "identical" in out

    def test_gc_orphans_and_temps(self, tmp_path):
        store = self.seeded_store(tmp_path)
        orphan = store.put_payload({"kind": "orphan"}, {})
        (store.objects_dir / "aa").mkdir(parents=True, exist_ok=True)
        temp = store.objects_dir / "aa" / "leftover.json.123.tmp"
        temp.write_text("partial")
        code, out = self.run(store, ["gc", "--dry-run"])
        assert code == 0 and "would remove 1 orphan" in out
        assert store.has(orphan)
        code, out = self.run(store, ["gc"])
        assert code == 0
        assert not store.has(orphan)
        assert not temp.exists()
        assert len(store.object_keys()) == 2  # referenced artifacts survive

    def test_gc_refuses_with_corrupt_manifest(self, tmp_path):
        store = self.seeded_store(tmp_path)
        manifest_path(store, "run-x").write_text("not json")
        code, out = self.run(store, ["gc"])
        assert code == 1 and "corrupt" in out
        code, out = self.run(store, ["gc", "--force"])
        assert code == 0
        assert load_manifest(store, "run-x") is None

    def test_usage_errors(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert self.run(store, [])[0] == 2
        assert self.run(store, ["bogus"])[0] == 2
        assert self.run(store, ["show"])[0] == 2
