"""Circuit DAG and standard-library circuits."""

import math

import numpy as np
import pytest

from repro.circuits import (
    CircuitDAG,
    QuantumCircuit,
    basis_state_preparation,
    ghz_circuit,
    qft_circuit,
    random_circuit,
    random_u3_cx_circuit,
)
from repro.linalg import allclose_up_to_global_phase, is_unitary
from repro.sim import StatevectorSimulator


class TestDAG:
    def test_layers_parallelism(self):
        qc = QuantumCircuit(3).h(0).h(1).h(2).cx(0, 1).cx(1, 2)
        layers = CircuitDAG(qc).layers()
        assert len(layers[0]) == 3  # all H gates parallel
        assert len(layers) == 3

    def test_longest_path(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1).cx(0, 1)
        dag = CircuitDAG(qc)
        assert dag.longest_path_length() == qc.depth()

    def test_cnot_critical_path(self):
        qc = QuantumCircuit(3).cx(0, 1).h(2).cx(1, 2)
        dag = CircuitDAG(qc)
        assert dag.longest_path_length(two_qubit_only=True) == 2

    def test_successor_predecessor_queries(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        dag = CircuitDAG(qc)
        assert dag.successors_on_qubit(0, 0) == 1
        assert dag.predecessors_on_qubit(1, 0) == 0
        assert dag.successors_on_qubit(1, 1) == 2
        assert dag.successors_on_qubit(2, 1) is None

    def test_roundtrip_preserves_semantics(self):
        qc = random_circuit(3, 20, seed=4)
        back = CircuitDAG(qc).to_circuit()
        assert allclose_up_to_global_phase(qc.unitary(), back.unitary())

    def test_empty_circuit(self):
        dag = CircuitDAG(QuantumCircuit(2))
        assert dag.layers() == []
        assert dag.longest_path_length() == 0


class TestLibrary:
    def test_ghz_probabilities(self):
        probs = StatevectorSimulator().probabilities(ghz_circuit(4))
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_qft_matches_dft(self):
        n = 3
        dim = 2**n
        omega = np.exp(2j * np.pi / dim)
        dft = np.array(
            [[omega ** (j * k) for k in range(dim)] for j in range(dim)]
        ) / math.sqrt(dim)
        assert allclose_up_to_global_phase(dft, qft_circuit(n).unitary())

    def test_qft_without_swaps_differs(self):
        a = qft_circuit(3).unitary()
        b = qft_circuit(3, swaps=False).unitary()
        assert not np.allclose(a, b)

    def test_random_circuit_deterministic(self):
        assert random_circuit(3, 20, seed=5) == random_circuit(3, 20, seed=5)

    def test_random_u3_cx_respects_coupling(self):
        qc = random_u3_cx_circuit(3, 6, seed=1, coupling=[(0, 1)])
        for g in qc:
            if g.name == "cx":
                assert set(g.qubits) == {0, 1}

    def test_random_u3_cx_cnot_count(self):
        assert random_u3_cx_circuit(3, 5, seed=2).cnot_count == 5

    def test_basis_state_preparation(self):
        qc = basis_state_preparation(4, "0110")
        probs = StatevectorSimulator().probabilities(qc)
        assert probs[0b0110] == pytest.approx(1.0)

    def test_basis_state_validation(self):
        with pytest.raises(ValueError):
            basis_state_preparation(2, "012")
        with pytest.raises(ValueError):
            basis_state_preparation(2, "0")
