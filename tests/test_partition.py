"""Partitioned synthesis of wide circuits."""

import numpy as np
import pytest

from repro.apps.tfim import TFIMSpec, tfim_step_circuit
from repro.circuits import QuantumCircuit, ghz_circuit
from repro.synthesis import hs_distance
from repro.synthesis.partition import (
    CircuitBlock,
    PartitionedSynthesizer,
    partition_circuit,
)
from repro.transpile import to_basis_gates


class TestPartition:
    def test_blocks_respect_width_limit(self):
        circuit = to_basis_gates(tfim_step_circuit(TFIMSpec(5), 3))
        for block in partition_circuit(circuit, 3):
            assert block.width <= 3

    def test_splicing_blocks_reproduces_circuit(self):
        circuit = to_basis_gates(tfim_step_circuit(TFIMSpec(5), 2))
        blocks = partition_circuit(circuit, 3)
        full = QuantumCircuit(5)
        for b in blocks:
            full.compose(b.circuit, qubits=b.qubits)
        assert hs_distance(circuit.unitary(), full.unitary()) < 1e-6

    def test_gate_order_preserved_within_block(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).h(1)
        blocks = partition_circuit(qc, 2)
        assert [g.name for g in blocks[0].circuit] == ["h", "cx", "h"]

    def test_barrier_closes_block(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.h(1)
        assert len(partition_circuit(qc, 2)) == 2

    def test_wide_gate_rejected(self):
        qc = QuantumCircuit(3).ccx(0, 1, 2)
        with pytest.raises(ValueError):
            partition_circuit(qc, 2)

    def test_block_limit_validated(self):
        with pytest.raises(ValueError):
            partition_circuit(QuantumCircuit(2), 1)

    def test_single_block_when_narrow(self):
        qc = to_basis_gates(ghz_circuit(3))
        assert len(partition_circuit(qc, 3)) == 1


class TestPartitionedSynthesizer:
    @pytest.fixture(scope="class")
    def frontier(self):
        circuit = to_basis_gates(tfim_step_circuit(TFIMSpec(4), 2))
        ps = PartitionedSynthesizer(
            max_block_qubits=2,
            seed=3,
            budgets=(0.0, 0.1, 0.4),
            synthesizer_options={"max_cnots": 4, "max_nodes": 30, "maxiter": 120},
        )
        return circuit, ps.synthesize(circuit)

    def test_produces_multiple_depths(self, frontier):
        _circuit, pool = frontier
        assert len(pool) >= 2
        assert len(set(c.cnot_count for c in pool)) >= 2

    def test_tight_budget_approaches_exact(self, frontier):
        _circuit, pool = frontier
        assert min(c.hs_distance for c in pool) < 0.15

    def test_loose_budget_is_shallower(self, frontier):
        _circuit, pool = frontier
        ordered = sorted(pool, key=lambda c: c.hs_distance)
        assert ordered[-1].cnot_count <= ordered[0].cnot_count

    def test_hs_subadditivity_holds_empirically(self, frontier):
        """Total error should not wildly exceed the sum of block errors."""
        circuit, pool = frontier
        # every spliced candidate is a valid circuit over the full width
        for c in pool:
            assert c.circuit.num_qubits == circuit.num_qubits
            assert 0.0 <= c.hs_distance <= 1.0

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            PartitionedSynthesizer().synthesize(QuantumCircuit(3))
