"""Exact TFIM dynamics and Trotter error (extension of the workload)."""

import numpy as np
import pytest

from repro.apps.tfim import (
    TFIMSpec,
    exact_magnetization,
    exact_step_unitary,
    ideal_magnetization,
    tfim_hamiltonian,
    tfim_step_circuit,
    trotter_error,
)
from repro.linalg import is_unitary


class TestHamiltonian:
    def test_term_count(self):
        h = tfim_hamiltonian(TFIMSpec(4), t=30.0)
        # 3 ZZ bonds + 4 X fields
        assert len(h) == 7

    def test_hermitian(self):
        assert tfim_hamiltonian(TFIMSpec(3), t=10.0).is_hermitian()

    def test_zero_field_is_classical(self):
        spec = TFIMSpec(3, field_schedule=lambda t: 0.0)
        h = tfim_hamiltonian(spec, t=5.0)
        m = h.to_matrix()
        assert np.allclose(m, np.diag(np.diagonal(m)))

    def test_propagator_unitary(self):
        assert is_unitary(exact_step_unitary(TFIMSpec(3), 5))


class TestTrotterError:
    def test_small_for_few_steps(self):
        assert trotter_error(num_steps=1) < 0.02

    def test_grows_with_steps(self):
        e5 = trotter_error(num_steps=5)
        e15 = trotter_error(num_steps=15)
        assert e15 >= e5

    def test_finer_trotterisation_reduces_error(self):
        """Halving dt (doubling steps over the same time) shrinks error."""
        coarse = TFIMSpec(3, dt=6.0)
        fine = TFIMSpec(3, dt=3.0)
        err_coarse = trotter_error(coarse, num_steps=5)
        err_fine = trotter_error(fine, num_steps=10)
        assert err_fine < err_coarse

    def test_exact_vs_trotter_magnetization_close(self):
        exact = exact_magnetization(num_steps=12)
        trotter = ideal_magnetization(num_steps=12)
        assert np.max(np.abs(exact - trotter)) < 0.05
