"""Application workloads: TFIM, Grover, Toffoli."""

import math

import numpy as np
import pytest

from repro.apps import (
    PAPER_NUM_STEPS,
    TFIMSpec,
    grover_circuit,
    ideal_magnetization,
    marked_state_index,
    mcx_circuit,
    mcx_unitary,
    optimal_iterations,
    success_probability,
    tfim_circuits,
    tfim_step_circuit,
    toffoli_js_score,
    toffoli_test_suite,
)
from repro.apps.toffoli import append_mcu, append_mcx, append_mcz
from repro.circuits import QuantumCircuit
from repro.linalg import allclose_up_to_global_phase, haar_unitary
from repro.metrics import UNIFORM_NOISE_JS
from repro.sim import StatevectorSimulator, average_magnetization
from repro.transpile import to_basis_gates


class TestTFIM:
    def test_default_spec(self):
        spec = TFIMSpec()
        assert spec.num_qubits == 3
        assert spec.bonds() == [(0, 1), (1, 2)]

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            TFIMSpec(num_qubits=1)

    def test_step_count_grows_linearly(self):
        spec = TFIMSpec(3)
        c5 = to_basis_gates(tfim_step_circuit(spec, 5))
        c10 = to_basis_gates(tfim_step_circuit(spec, 10))
        assert c10.cnot_count == 2 * c5.cnot_count

    def test_cnots_per_step(self):
        spec = TFIMSpec(4)
        qc = to_basis_gates(tfim_step_circuit(spec, 1))
        assert qc.cnot_count == 2 * 3  # 2 CNOTs per bond

    def test_zero_steps_is_identity(self):
        qc = tfim_step_circuit(TFIMSpec(3), 0)
        assert len(qc) == 0

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            tfim_step_circuit(TFIMSpec(3), -1)

    def test_paper_family_has_21_circuits(self):
        circuits = tfim_circuits()
        assert len(circuits) == PAPER_NUM_STEPS == 21

    def test_magnetization_starts_near_one(self):
        mags = ideal_magnetization(num_steps=3)
        assert mags[0] > 0.95

    def test_magnetization_decays_with_field(self):
        mags = ideal_magnetization()
        assert min(mags) < 0.2  # field ramp depolarises the chain

    def test_magnetization_bounded(self):
        mags = ideal_magnetization()
        assert np.all(np.abs(mags) <= 1.0 + 1e-12)

    def test_custom_schedule(self):
        spec = TFIMSpec(3, field_schedule=lambda t: 0.0)
        mags = ideal_magnetization(spec, num_steps=5)
        # no transverse field: |000> is an eigenstate, magnetization stays 1
        assert np.allclose(mags, 1.0, atol=1e-9)


class TestGrover:
    def test_optimal_iterations(self):
        assert optimal_iterations(3) == 2
        assert optimal_iterations(2) == 1

    def test_success_probability_high(self):
        probs = StatevectorSimulator().probabilities(grover_circuit(3, "111"))
        assert success_probability(probs, "111") > 0.9

    @pytest.mark.parametrize("marked", ["000", "101", "110"])
    def test_other_marked_states(self, marked):
        probs = StatevectorSimulator().probabilities(grover_circuit(3, marked))
        assert success_probability(probs, marked) > 0.9

    def test_marked_index(self):
        assert marked_state_index("110") == 6

    def test_bad_marked_string(self):
        with pytest.raises(ValueError):
            grover_circuit(3, "11")
        with pytest.raises(ValueError):
            grover_circuit(3, "11x")

    def test_single_iteration_weaker(self):
        p2 = success_probability(
            StatevectorSimulator().probabilities(grover_circuit(3, "111")), "111"
        )
        p1 = success_probability(
            StatevectorSimulator().probabilities(
                grover_circuit(3, "111", iterations=1)
            ),
            "111",
        )
        assert p1 < p2


class TestToffoli:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_mcx_circuit_exact(self, k):
        circuit = mcx_circuit(k)
        assert allclose_up_to_global_phase(
            mcx_unitary(k), circuit.unitary(), atol=1e-7
        )

    def test_mcx_unitary_is_permutation(self):
        u = mcx_unitary(3)
        assert np.allclose(np.abs(u) ** 2 @ np.ones(16), np.ones(16))

    def test_zero_controls_rejected(self):
        with pytest.raises(ValueError):
            mcx_circuit(0)

    def test_append_mcx_one_control_is_cx(self):
        qc = QuantumCircuit(2)
        append_mcx(qc, [0], 1)
        assert qc.gates[0].name == "cx"

    def test_append_mcz_phase(self):
        qc = QuantumCircuit(2)
        append_mcz(qc, [0, 1])
        expected = np.diag([1.0, 1.0, 1.0, -1.0])
        assert allclose_up_to_global_phase(expected, qc.unitary(), atol=1e-8)

    def test_append_mcu_random_unitary(self):
        from repro.linalg import controlled_unitary

        v = haar_unitary(2, 5)
        qc = QuantumCircuit(3)
        append_mcu(qc, v, [0, 1], 2)
        expected = controlled_unitary(v, 2)
        assert allclose_up_to_global_phase(expected, qc.unitary(), atol=1e-7)

    def test_cnot_growth_with_controls(self):
        counts = [to_basis_gates(mcx_circuit(k)).cnot_count for k in (2, 3, 4)]
        assert counts[0] < counts[1] < counts[2]
        assert counts[0] == 6  # the textbook Toffoli


class TestToffoliScoring:
    def test_ideal_scores_zero(self):
        run = lambda c: StatevectorSimulator().probabilities(c)
        score = toffoli_js_score(run, mcx_circuit(2), toffoli_test_suite(2))
        assert score == pytest.approx(0.0, abs=1e-7)

    def test_uniform_scores_noise_floor(self):
        run = lambda c: np.full(2**c.num_qubits, 2.0 ** -c.num_qubits)
        score = toffoli_js_score(run, mcx_circuit(3), toffoli_test_suite(3))
        assert score == pytest.approx(UNIFORM_NOISE_JS, abs=1e-9)

    def test_extended_suite(self):
        tests = toffoli_test_suite(2, include_basis_inputs=True)
        assert len(tests) == 4
        names = {t.name for t in tests}
        assert {"superposition", "all_ones", "all_zeros", "half"} <= names
        run = lambda c: StatevectorSimulator().probabilities(c)
        assert toffoli_js_score(run, mcx_circuit(2), tests) < 1e-6

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            toffoli_js_score(lambda c: None, mcx_circuit(2), [])

    def test_wrong_circuit_scores_high(self):
        run = lambda c: StatevectorSimulator().probabilities(c)
        wrong = QuantumCircuit(3).x(2)  # always flips the target
        score = toffoli_js_score(run, wrong, toffoli_test_suite(2))
        assert score > 0.4
