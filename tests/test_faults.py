"""Deterministic fault injection, retry policies and resilient execution."""

import subprocess

import pytest

from repro.faults import (
    CalibrationDriftError,
    CircuitBreaker,
    FaultPlan,
    JobFailedError,
    SubmissionTimeout,
    TornWriteError,
    TransientError,
    activation_counts,
    active_plan,
    classify_exception,
    maybe_inject,
    reset_activations,
    retrying,
)
from repro.store import ArtifactStore
from repro.store.manifest import (
    _reset_code_version_cache,
    code_version,
)


class TestFaultPlanGrammar:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=11,job=0.4,timeout=0.1,drift=0.1,crash=0.5,store=0.6,degrade=1"
        )
        assert plan.seed == 11
        assert plan.rates == {
            "job": 0.4, "timeout": 0.1, "drift": 0.1, "crash": 0.5, "store": 0.6
        }
        assert plan.degrade is True

    def test_defaults(self):
        plan = FaultPlan.parse("")
        assert plan.seed == 0 and plan.rates == {} and plan.degrade is False

    def test_format_round_trips(self):
        spec = "seed=3,crash=0.5,job=0.25,degrade=1"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.format()) == plan

    @pytest.mark.parametrize(
        "bad",
        ["job", "job=2", "store=-0.1", "frobnicate=0.5", "seed=x"],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


class TestFaultPlanDraws:
    def test_draw_is_deterministic_and_uniform_range(self):
        plan = FaultPlan(seed=7, rates={"job": 0.5})
        draws = [plan.draw("job", f"site{i}") for i in range(50)]
        assert draws == [plan.draw("job", f"site{i}") for i in range(50)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert len(set(draws)) == len(draws)  # sites decorrelated

    def test_attempt_coordinate_redraws(self):
        plan = FaultPlan(seed=7, rates={"job": 0.5})
        assert plan.draw("job", "s", 0) != plan.draw("job", "s", 1)

    def test_seed_changes_schedule(self):
        a = FaultPlan(seed=1, rates={"job": 0.5})
        b = FaultPlan(seed=2, rates={"job": 0.5})
        fired_a = [a.should_fire("job", f"s{i}") for i in range(64)]
        fired_b = [b.should_fire("job", f"s{i}") for i in range(64)]
        assert fired_a != fired_b

    def test_rate_edges(self):
        always = FaultPlan(rates={"job": 1.0})
        never = FaultPlan(rates={"job": 0.0})
        assert all(always.should_fire("job", f"s{i}") for i in range(20))
        assert not any(never.should_fire("job", f"s{i}") for i in range(20))
        # Unconfigured kinds never fire.
        assert not always.should_fire("store", "s0")

    def test_active_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert active_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "seed=5,job=0.5")
        plan = active_plan()
        assert plan is not None and plan.seed == 5
        monkeypatch.setenv("REPRO_FAULTS", "seed=6")
        assert active_plan().seed == 6  # cache keyed by spec text


class TestInjection:
    def test_maybe_inject_raises_kind_errors(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "job=1,timeout=1,drift=1,store=1"
        )
        monkeypatch.delenv("REPRO_FAULTS_LOG", raising=False)
        for kind, error in [
            ("job", JobFailedError),
            ("timeout", SubmissionTimeout),
            ("drift", CalibrationDriftError),
            ("store", TornWriteError),
        ]:
            with pytest.raises(error):
                maybe_inject(kind, "site")

    def test_activations_recorded_in_process_and_log(self, monkeypatch, tmp_path):
        log = tmp_path / "faults.log"
        monkeypatch.setenv("REPRO_FAULTS", "job=1")
        monkeypatch.setenv("REPRO_FAULTS_LOG", str(log))
        reset_activations()
        for i in range(3):
            with pytest.raises(JobFailedError):
                maybe_inject("job", f"site{i}")
        assert activation_counts() == {"job": 3}
        assert activation_counts(str(log)) == {"job": 3}

    def test_no_plan_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        maybe_inject("job", "site")  # must not raise


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            TransientError("x"),
            JobFailedError("x"),
            TornWriteError("x"),
            TimeoutError("x"),
            ConnectionError("x"),
            OSError("x"),
        ],
    )
    def test_transient(self, exc):
        assert classify_exception(exc) == "transient"

    @pytest.mark.parametrize(
        "exc", [ValueError("x"), KeyError("x"), AssertionError("x")]
    )
    def test_fatal(self, exc):
        assert classify_exception(exc) == "fatal"


class TestRetrying:
    def test_succeeds_after_transient_failures(self):
        sleeps = []
        policy = retrying(
            attempts=4, base_delay=0.01, max_delay=0.1, sleep=sleeps.append
        )
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise TransientError(f"attempt {attempt}")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert calls == [0, 1, 2]
        assert len(sleeps) == 2
        assert all(0.01 <= d <= 0.1 for d in sleeps)

    def test_budget_exhaustion_reraises_last(self):
        sleeps = []
        policy = retrying(attempts=3, base_delay=0, max_delay=0, sleep=sleeps.append)

        def always(attempt):
            raise TransientError(f"attempt {attempt}")

        with pytest.raises(TransientError, match="attempt 2"):
            policy.call(always)
        assert len(sleeps) == 2  # no sleep after the final failure

    def test_fatal_raises_immediately(self):
        sleeps = []
        policy = retrying(attempts=5, sleep=sleeps.append)
        calls = []

        def fatal(attempt):
            calls.append(attempt)
            raise ValueError("bad input")

        with pytest.raises(ValueError):
            policy.call(fatal)
        assert calls == [0] and sleeps == []

    def test_decorrelated_jitter_bounds(self):
        policy = retrying(attempts=10, base_delay=0.05, max_delay=1.0, sleep=lambda d: None)
        previous = None
        for _ in range(200):
            delay = policy.next_delay(previous)
            high = min(1.0, 3.0 * (previous if previous is not None else 0.05))
            assert 0.05 <= delay <= max(high, 0.05)
            previous = delay

    def test_on_retry_observer(self):
        seen = []
        policy = retrying(
            attempts=3,
            base_delay=0,
            max_delay=0,
            sleep=lambda d: None,
            on_retry=lambda attempt, exc, delay: seen.append((attempt, str(exc))),
        )

        def flaky(attempt):
            if attempt == 0:
                raise TransientError("first")
            return attempt

        assert policy.call(flaky) == 1
        assert seen == [(0, "first")]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            retrying(attempts=0)
        with pytest.raises(ValueError):
            retrying(base_delay=1.0, max_delay=0.5)


class TestCircuitBreaker:
    def test_opens_at_threshold_and_resets(self):
        breaker = CircuitBreaker(threshold=2)
        assert not breaker.open
        breaker.record_failure(TransientError("a"))
        assert not breaker.open
        breaker.record_failure(TransientError("b"))
        assert breaker.open
        assert str(breaker.last_error) == "b"
        breaker.record_success()
        assert not breaker.open and breaker.last_error is None

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestStoreWriteFaults:
    def test_torn_write_retries_through(self, tmp_path, monkeypatch):
        """A sub-1.0 store rate tears some attempts; the retry rewrites.

        Seed 3 is chosen so every unit's 4-attempt budget suffices (18
        injected tears across the 8 units, none torn four times in a row).
        """
        monkeypatch.setenv("REPRO_FAULTS", "seed=3,store=0.5")
        monkeypatch.delenv("REPRO_FAULTS_LOG", raising=False)
        store = ArtifactStore(tmp_path)
        for i in range(8):
            config = {"kind": "t", "i": i}
            key = store.put_payload(config, {"v": i})
            assert store.get_payload(key) == {"v": i}

    def test_hard_outage_exhausts_and_leaves_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1,store=1")
        monkeypatch.delenv("REPRO_FAULTS_LOG", raising=False)
        store = ArtifactStore(tmp_path)
        config = {"kind": "t"}
        with pytest.raises(TornWriteError):
            store.put_payload(config, {"v": 1})
        # The torn bytes on disk read as a miss, not as corrupt data.
        assert store.get_payload(config) is None
        monkeypatch.delenv("REPRO_FAULTS")
        key = store.put_payload(config, {"v": 1})
        assert store.get_payload(key) == {"v": 1}


class TestCodeVersionCache:
    def test_git_probe_runs_once_per_process(self, monkeypatch):
        calls = []
        real_run = subprocess.run

        def counting_run(*args, **kwargs):
            calls.append(args)
            return real_run(*args, **kwargs)

        monkeypatch.setattr(subprocess, "run", counting_run)
        _reset_code_version_cache()
        first = code_version()
        second = code_version()
        assert len(calls) == 1
        assert first == second
        assert first is not second  # fresh dict per manifest
        _reset_code_version_cache()
        code_version()
        assert len(calls) == 2
