"""Shared pytest configuration.

Tests always run at the ``smoke`` experiment scale so the integration
layer stays fast; synthesis results are disk-cached, so repeated test runs
reuse pools.
"""

import os

import numpy as np
import pytest

os.environ.setdefault("REPRO_SCALE", "smoke")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng():
    return np.random.default_rng(99)
