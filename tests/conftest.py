"""Shared pytest configuration.

Tests always run at the ``smoke`` experiment scale so the integration
layer stays fast; synthesis results are disk-cached, so repeated test runs
reuse pools. The cache directory itself is untracked — it is warmed from
the checked-in fixture set in ``tests/fixtures/repro_cache`` so fresh
clones skip synthesis too.
"""

import os
from pathlib import Path

import numpy as np
import pytest

os.environ.setdefault("REPRO_SCALE", "smoke")

from repro.utils.cache import seed_cache  # noqa: E402

seed_cache(Path(__file__).parent / "fixtures" / "repro_cache")


@pytest.fixture(autouse=True)
def _isolate_faults_env():
    """Contain fault-injection state: the CLI exports ``REPRO_FAULTS`` /
    ``REPRO_FAULTS_LOG`` into the process environment (worker processes
    inherit them), so restore both and drop the in-process activation and
    degradation records after every test."""
    saved = {
        key: os.environ.get(key) for key in ("REPRO_FAULTS", "REPRO_FAULTS_LOG")
    }
    yield
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    from repro.faults import reset_activations, reset_degradations

    reset_activations()
    reset_degradations()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng():
    return np.random.default_rng(99)
