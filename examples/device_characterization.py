"""Characterising the emulated devices from the outside.

The paper's calibration data (Table 1, Figure 16) comes from protocols
run *on* the hardware: randomized benchmarking for gate errors, state and
process tomography for channels, quantum volume for holistic capability.
This example runs all three against the reproduction's own noisy
simulator — closing the loop between the noise models and what an
experimentalist would measure on them.

Run:  python examples/device_characterization.py
"""

import numpy as np

from repro.circuits import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.experiments import IdealBackend, NoiseModelBackend
from repro.hardware import achieved_quantum_volume, measure_quantum_volume, run_rb
from repro.noise import (
    NoiseModel,
    GateError,
    depolarizing_channel,
    get_device,
    process_fidelity_to_channel,
    process_tomography,
)
from repro.noise.channels import KrausChannel
from repro.sim import DensityMatrixSimulator


def main() -> None:
    device = get_device("ourense")
    backend = NoiseModelBackend(device.noise_model(include_readout=False))

    print("=== randomized benchmarking (how Table 1's numbers are made) ===")
    result = run_rb(backend, lengths=(1, 4, 8, 16, 32), sequences_per_length=4)
    print(result.rows())
    print(
        f"(device snapshot 1q error on qubit 0: "
        f"{device.single_qubit_errors[0]:.2e})"
    )

    print("\n=== process tomography of a noisy CNOT ===")
    model = NoiseModel()
    injected = 0.05
    model.add_gate_error(GateError(depolarizing=injected), "cx", None)
    sim = DensityMatrixSimulator(model)

    def apply_process(prep: QuantumCircuit) -> np.ndarray:
        circuit = prep.copy()
        circuit.cx(0, 1)
        return sim.run(circuit).data

    measured = process_tomography(apply_process, 2)
    expected = KrausChannel([gate_matrix("cx")]).compose(
        depolarizing_channel(injected, 2)
    )
    fidelity = process_fidelity_to_channel(measured, expected)
    print(
        f"injected: CX + depolarizing({injected}); reconstructed process "
        f"fidelity to that model: {fidelity:.6f}"
    )

    print("\n=== quantum volume ===")
    for label, qv_backend in (
        ("ideal", IdealBackend()),
        ("ourense model", NoiseModelBackend(device.noise_model())),
    ):
        results = measure_quantum_volume(
            qv_backend, widths=(2, 3), circuits_per_width=3
        )
        print(
            f"{label:<14} HOP "
            + ", ".join(f"m={w}: {r.mean_hop:.3f}" for w, r in results.items())
            + f" -> QV {achieved_quantum_volume(results)}"
        )


if __name__ == "__main__":
    main()
