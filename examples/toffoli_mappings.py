"""Toffoli circuits and qubit-mapping sensitivity (paper §6.1, §6.4).

Scores the 4-qubit (3-control) Toffoli and its approximations by
Jensen-Shannon distance under the Manhattan noise model, then repeats the
experiment on emulated Toronto hardware for the paper's four manual qubit
mappings plus the automatic noise-aware mapping.

Run:  python examples/toffoli_mappings.py
"""

from repro.experiments import fig06, fig15, fig16, fig17, fig18, fig19, get_scale
from repro.metrics import UNIFORM_NOISE_JS


def main() -> None:
    scale = get_scale()

    print("=== 4q Toffoli, Manhattan noise model (paper Fig. 6) ===")
    r = fig06(scale)
    print(r.rows())

    print("\n=== same circuits on emulated Manhattan hardware (Fig. 15) ===")
    hw = fig15(scale)
    print(
        f"reference JS {hw.reference.value:.4f} @ {hw.reference.cnot_count} "
        f"CNOTs | best approximation {hw.best().value:.4f} @ "
        f"{hw.best().cnot_count} CNOTs | random-noise floor "
        f"{UNIFORM_NOISE_JS:.4f}"
    )

    print("\n=== Toronto calibration report (Fig. 16, excerpt) ===")
    report = fig16().splitlines()
    print("\n".join(report[:4] + report[-6:]))

    print("\n=== mapping sensitivity on emulated Toronto (Figs. 17-19) ===")
    for fig, label in ((fig17, "best manual"), (fig18, "worst manual"), (fig19, "auto level-3")):
        r = fig(scale)
        print(
            f"{label:<12}: ref JS {r.reference.value:.4f}, best approx "
            f"{r.best().value:.4f}, {r.fraction_better_than_reference():.0%} "
            "of circuits below reference"
        )

    print(
        "\nObservation 9 (paper): mapping quality is not predicted by CNOT "
        "calibration alone — readout and crosstalk contribute."
    )


if __name__ == "__main__":
    main()
