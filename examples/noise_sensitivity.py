"""CNOT-error sensitivity study (paper §6.2, Figures 8-11).

Pins the two-qubit error of the Ourense noise model to several levels and
shows the paper's central trade-off directly: as CNOT error grows, the
best-performing approximate circuits get *shallower*, and the benefit over
the exact reference grows.

Run:  python examples/noise_sensitivity.py
"""

from repro.experiments import fig08, fig09, fig10, fig11, get_scale


def main() -> None:
    scale = get_scale()
    print(f"CNOT-error sweep at scale={scale.name!r}\n")

    print("level   ref mean|err|   best mean|err|   improvement   winners")
    for level, fig in ((0.0, fig08), (0.12, fig09), (0.24, fig10)):
        r = fig(scale)
        print(
            f"{level:>5g}   {r.reference_error():>13.4f}   "
            f"{r.best_error():>14.4f}   {r.improvement():>11.1%}   "
            f"{r.fraction_beating_reference():>7.1%}"
        )

    print("\nbest-circuit CNOT depth per timestep (paper Fig. 11):")
    print(fig11(scale).rows())

    print(
        "\nObservation 6 (paper): the greater the two-qubit noise, the more "
        "benefit short approximate circuits give — visible above as the "
        "mean best depth falling with the error level."
    )


if __name__ == "__main__":
    main()
