"""Grover's search on emulated IBM hardware (paper §6.3, Figure 14).

Runs the 3-qubit Grover instance (marked state '111', eight "boxes") on an
emulated ibmq_rome — drifted calibration, crosstalk, finite shots — and
compares the routed reference against the approximate-circuit pool.

Run:  python examples/grover_on_hardware.py
      REPRO_SCALE=smoke python examples/grover_on_hardware.py
"""

from repro.experiments import fig05, fig14, get_scale


def main() -> None:
    scale = get_scale()

    print("=== noise-model simulation (Toronto) — paper Fig. 5 ===")
    sim = fig05(scale)
    print(sim.rows())

    print("\n=== emulated hardware (Rome) — paper Fig. 14 ===")
    hw = fig14(scale)
    print(hw.rows())

    print("\ninterpretation:")
    print(
        f"  - routing blows the reference up to {hw.reference.cnot_count} "
        f"CNOTs (the paper saw >50), collapsing its success probability to "
        f"{hw.reference.value:.3f}"
    )
    best = hw.best()
    print(
        f"  - the best approximate circuit uses {best.cnot_count} CNOTs and "
        f"finds the marked state with probability {best.value:.3f}"
    )
    print(
        f"  - {hw.fraction_better_than_reference():.0%} of approximations "
        "beat the reference on hardware"
    )


if __name__ == "__main__":
    main()
