"""Quickstart: synthesise approximate circuits and race them under noise.

This walks the paper's full workflow (Figure 1) on a small example:

1. build a reference circuit and take its unitary as the synthesis target,
2. run the instrumented QSearch synthesiser, harvesting every intermediate
   circuit as an approximation candidate,
3. execute the reference and every candidate under an IBM-device noise
   model,
4. show that short approximate circuits can beat the exact reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.circuits import QuantumCircuit
from repro.metrics import total_variation_distance
from repro.noise import get_device
from repro.sim import DensityMatrixSimulator, StatevectorSimulator
from repro.synthesis import generate_approximate_circuits
from repro.transpile import to_basis_gates


def main() -> None:
    # 1. A reference circuit: three Trotter-like layers on 3 qubits.
    reference = QuantumCircuit(3, name="reference")
    for _ in range(6):
        reference.rzz(0.4, 0, 1)
        reference.rzz(0.4, 1, 2)
        for q in range(3):
            reference.rx(0.3, q)
    reference = to_basis_gates(reference)
    print(f"reference: {reference.cnot_count} CNOTs")

    # 2. Harvest approximate circuits (every intermediate the search saw).
    pool = generate_approximate_circuits(
        reference.unitary(),
        tool="qsearch",
        coupling=[(0, 1), (1, 2)],
        max_hs=float("inf"),
        seed=7,
        synthesizer_options={"max_cnots": 6, "max_nodes": 30},
    )
    print(f"pool: {pool.summary()}")

    # 3. Execute everything under the Toronto noise model.
    ideal = StatevectorSimulator().run(reference).probabilities()
    noisy = DensityMatrixSimulator(get_device("toronto").noise_model())

    ref_err = total_variation_distance(ideal, noisy.probabilities(reference))
    print(f"\nreference TVD from ideal output: {ref_err:.4f}")

    print("\ncnots  HS-dist  TVD-from-ideal  beats-reference?")
    wins = 0
    for candidate in pool:
        err = total_variation_distance(
            ideal, noisy.probabilities(candidate.circuit)
        )
        beats = err < ref_err
        wins += beats
        print(
            f"{candidate.cnot_count:>5}  {candidate.hs_distance:>7.4f}  "
            f"{err:>14.4f}  {'YES' if beats else 'no'}"
        )

    # 4. The paper's claim in one line.
    print(
        f"\n{wins}/{len(pool)} approximate circuits beat the exact reference "
        "under device noise."
    )


if __name__ == "__main__":
    main()
