"""Beyond the paper: wider circuits and hardware metrics (§6.5 roadmap).

The paper's future-work section sketches two directions this repository
implements:

1. **Partitioned approximation** — "breaking a large program into pieces":
   a 5-qubit TFIM step (beyond QSearch's direct reach) is split into
   3-qubit blocks, each block is approximated independently, and spliced
   candidates form a frontier of full-width approximations.
2. **Quantum volume** — correlating circuit behaviour with "commonly
   accepted hardware evaluation metrics": the QV protocol runs on the
   ideal backend and on a noisy device model.

Run:  python examples/wider_circuits.py
"""

from repro.apps.tfim import TFIMSpec, tfim_step_circuit
from repro.experiments import IdealBackend, NoiseModelBackend
from repro.hardware import achieved_quantum_volume, measure_quantum_volume
from repro.noise import get_device
from repro.synthesis import PartitionedSynthesizer
from repro.transpile import to_basis_gates


def main() -> None:
    print("=== partitioned approximation of a 5-qubit TFIM step ===")
    circuit = to_basis_gates(tfim_step_circuit(TFIMSpec(5), 4))
    print(f"target: {circuit.num_qubits} qubits, {circuit.cnot_count} CNOTs")
    synthesizer = PartitionedSynthesizer(
        max_block_qubits=3,
        seed=5,
        synthesizer_options={"max_cnots": 5, "max_nodes": 60, "maxiter": 150},
    )
    pool = synthesizer.synthesize(circuit)
    print("frontier (CNOTs vs HS distance):")
    for candidate in sorted(pool, key=lambda c: c.cnot_count):
        print(f"  {candidate.cnot_count:>3} CNOTs  HS {candidate.hs_distance:.4f}")

    print("\n=== quantum volume on the reproduction's backends ===")
    for label, backend in (
        ("ideal", IdealBackend()),
        ("ourense model", NoiseModelBackend(get_device("ourense").noise_model())),
        (
            "ourense x10 noise",
            NoiseModelBackend(get_device("ourense").noise_model().scaled(10.0)),
        ),
    ):
        results = measure_quantum_volume(
            backend, widths=(2, 3), circuits_per_width=4
        )
        hops = {w: round(r.mean_hop, 3) for w, r in results.items()}
        print(
            f"{label:<18} mean HOP {hops} -> QV "
            f"{achieved_quantum_volume(results)}"
        )


if __name__ == "__main__":
    main()
