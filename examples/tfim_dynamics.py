"""TFIM magnetization dynamics with approximate circuits (paper §6.1).

Reproduces the Figure 2 experiment at a configurable scale: the
time-dependent Transverse-Field Ising Model simulated for 21 timesteps,
comparing four series —

* noise-free reference (the physics ground truth),
* the reference circuit under the Toronto noise model,
* the minimal-HS approximate circuit per timestep,
* the best approximate circuit per timestep.

Run:  python examples/tfim_dynamics.py            (quick scale)
      REPRO_SCALE=smoke python examples/tfim_dynamics.py   (fast demo)
"""

from repro.experiments import fig02, get_scale


def main() -> None:
    scale = get_scale()
    print(f"running the 3q TFIM experiment at scale={scale.name!r} ...\n")
    result = fig02(scale)
    print(result.rows())

    print("\ninterpretation:")
    print(
        f"  - the noisy reference accumulates "
        f"{result.reference_cnots[-1]} CNOTs by the last timestep and "
        f"drifts from the ideal curve (mean error "
        f"{result.reference_error():.4f})"
    )
    print(
        f"  - the best approximate circuits track the ideal curve "
        f"{result.improvement():.0%} more precisely, using "
        f"{max(result.best_depth_series())} CNOTs at most"
    )
    print(
        f"  - {result.fraction_beating_reference():.0%} of ALL harvested "
        "approximations beat the reference (paper Fig. 3)"
    )


if __name__ == "__main__":
    main()
