"""Quantum-volume estimation (paper §6.5 roadmap).

The paper plans to "correlate circuit behavior with commonly accepted
hardware evaluation metrics, such as ... 'quantum volume'". This module
implements the standard QV protocol (Cross et al.) on the reproduction's
own stack:

* model circuits: ``m`` qubits, ``m`` layers, each layer a random qubit
  permutation followed by Haar-random SU(4) blocks on adjacent pairs,
  lowered to the native ``{u3, cx}`` basis;
* heavy outputs: the basis states whose ideal probability exceeds the
  median;
* a width ``m`` passes when the mean heavy-output probability across the
  sampled circuits exceeds 2/3;
* ``QV = 2^m`` for the largest passing width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..linalg.random import haar_unitary
from ..sim.statevector import StatevectorSimulator
from ..synthesis.twoq import decompose_two_qubit_unitary

__all__ = [
    "qv_model_circuit",
    "heavy_outputs",
    "heavy_output_probability",
    "QVWidthResult",
    "measure_quantum_volume",
]

#: The QV pass threshold on mean heavy-output probability.
HOP_THRESHOLD = 2.0 / 3.0


def qv_model_circuit(width: int, seed: int) -> QuantumCircuit:
    """One QV model circuit over ``width`` qubits in the native basis."""
    if width < 2:
        raise ValueError("QV model circuits need at least 2 qubits")
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(width, name=f"qv{width}_s{seed}")
    for _layer in range(width):
        perm = rng.permutation(width)
        for i in range(0, width - 1, 2):
            a, b = int(perm[i]), int(perm[i + 1])
            block = haar_unitary(4, rng)
            sub, _k = decompose_two_qubit_unitary(
                block, seed=int(rng.integers(2**31))
            )
            qc.compose(sub, qubits=[a, b])
    return qc


def heavy_outputs(ideal_probabilities: np.ndarray) -> np.ndarray:
    """Indices of basis states above the median ideal probability."""
    probs = np.asarray(ideal_probabilities, dtype=np.float64)
    median = np.median(probs)
    return np.nonzero(probs > median)[0]


def heavy_output_probability(
    circuit: QuantumCircuit, backend
) -> float:
    """The probability mass a backend puts on the circuit's heavy set."""
    ideal = StatevectorSimulator().run(circuit.without_measurements()).probabilities()
    heavy = heavy_outputs(ideal)
    measured = backend.run(circuit)
    return float(measured[heavy].sum())


@dataclass
class QVWidthResult:
    """HOP statistics for one width."""

    width: int
    hops: List[float] = field(default_factory=list)

    @property
    def mean_hop(self) -> float:
        return float(np.mean(self.hops)) if self.hops else 0.0

    @property
    def passed(self) -> bool:
        return self.mean_hop > HOP_THRESHOLD

    @property
    def quantum_volume(self) -> int:
        return 2**self.width


def measure_quantum_volume(
    backend,
    *,
    widths: Sequence[int] = (2, 3, 4),
    circuits_per_width: int = 5,
    seed: int = 11,
) -> Dict[int, QVWidthResult]:
    """Run the QV protocol; returns per-width results.

    ``backend`` is anything with ``run(circuit) -> probabilities``; widths
    must fit within the backend's qubit subset. The achieved quantum
    volume is ``max(2**m for passing m)`` (the ideal backend passes every
    width; a noisy backend fails once depth x width outruns its fidelity
    budget).
    """
    results: Dict[int, QVWidthResult] = {}
    for width in widths:
        res = QVWidthResult(width)
        for c in range(circuits_per_width):
            circuit = qv_model_circuit(width, seed=seed * 1000 + width * 100 + c)
            res.hops.append(heavy_output_probability(circuit, backend))
        results[width] = res
    return results


def achieved_quantum_volume(results: Dict[int, QVWidthResult]) -> int:
    """Largest passing ``2^m``; 1 when no width passes."""
    passing = [r.quantum_volume for r in results.values() if r.passed]
    return max(passing) if passing else 1
