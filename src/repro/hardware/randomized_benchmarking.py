"""Single-qubit randomized benchmarking (RB).

RB is how IBM produces the calibration numbers this reproduction's device
snapshots are built from: random Clifford sequences of growing length are
run with a final inverting gate, and the survival probability of ``|0>``
decays as ``A p^m + B``. The error per Clifford is ``(1 - p) / 2`` for one
qubit, independent of state-preparation and measurement error — which is
exactly why calibration reports readout and gate errors separately.

Closing the loop: benchmarking the reproduction's own noisy simulator
recovers the depolarizing rate that was injected (see
``tests/test_rb.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..linalg.decompositions import u3_params_from_unitary

__all__ = [
    "clifford_1q_gates",
    "rb_sequence",
    "interleaved_rb_sequence",
    "RBResult",
    "run_rb",
    "run_interleaved_rb",
    "fit_rb_decay",
]

def _build_clifford_table() -> List[Tuple[str, ...]]:
    """Enumerate the 24 single-qubit Cliffords by BFS over {H, S}.

    Returns shortest gate sequences (circuit order: first gate applied
    first), deduplicated up to global phase.
    """
    from collections import deque

    # Exact symplectic representation: a 1q Clifford is determined (up to
    # phase) by the signed Paulis that X and Z conjugate to. Track each
    # image as (axis, sign) with axis 0=X, 1=Y, 2=Z — pure integer
    # bookkeeping, immune to float drift.
    #   H: X->Z, Y->-Y, Z->X          S: X->Y, Y->-X, Z->Z
    actions = {
        "h": {0: (2, 1), 1: (1, -1), 2: (0, 1)},
        "s": {0: (1, 1), 1: (0, -1), 2: (2, 1)},
    }

    def conjugate(gate: str, image):
        axis, sign = image
        new_axis, extra = actions[gate][axis]
        return (new_axis, sign * extra)

    identity = ((0, 1), (2, 1))  # X -> X, Z -> Z
    table: List[Tuple[str, ...]] = [()]
    seen = {identity}
    queue = deque([((), identity)])
    while queue:
        seq, (img_x, img_z) = queue.popleft()
        for name in actions:
            new_elem = (conjugate(name, img_x), conjugate(name, img_z))
            if new_elem in seen:
                continue
            seen.add(new_elem)
            new_seq = seq + (name,)
            table.append(new_seq)
            queue.append((new_seq, new_elem))
    if len(table) != 24:  # pragma: no cover - sanity guard
        raise RuntimeError(f"Clifford enumeration found {len(table)} != 24")
    return table


#: The 24 single-qubit Cliffords as shortest {H, S} gate sequences.
_CLIFFORD_DEFS: List[Tuple[str, ...]] = _build_clifford_table()


def clifford_1q_gates(index: int, qubit: int = 0) -> List[Gate]:
    """Gate list of the ``index``-th single-qubit Clifford."""
    if not 0 <= index < 24:
        raise ValueError("single-qubit Clifford index must be 0..23")
    return [Gate(name, (qubit,)) for name in _CLIFFORD_DEFS[index]]


def _clifford_unitary(index: int) -> np.ndarray:
    from ..circuits.gates import gate_matrix

    u = np.eye(2, dtype=np.complex128)
    for name in _CLIFFORD_DEFS[index]:
        u = gate_matrix(name) @ u
    return u


def rb_sequence(
    length: int, *, qubit: int = 0, seed: Optional[int] = None
) -> QuantumCircuit:
    """A random Clifford sequence of ``length`` plus its exact inverse.

    Ideal execution returns ``|0>`` with probability 1; noise turns the
    survival probability into the RB decay.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(qubit + 1, name=f"rb_m{length}")
    total = np.eye(2, dtype=np.complex128)
    for _ in range(length):
        index = int(rng.integers(24))
        for gate in clifford_1q_gates(index, qubit):
            qc.append(gate)
        total = _clifford_unitary(index) @ total
    # Exact inverse as one u3 (up to global phase).
    theta, phi, lam = u3_params_from_unitary(total.conj().T)
    qc.u3(theta, phi, lam, qubit)
    return qc


@dataclass
class RBResult:
    """Fitted RB decay."""

    lengths: List[int]
    survival: List[float]
    amplitude: float
    decay: float  # p in A p^m + B
    offset: float

    @property
    def error_per_clifford(self) -> float:
        """``(1 - p)(d - 1)/d`` with ``d = 2`` for one qubit."""
        return (1.0 - self.decay) / 2.0

    def rows(self) -> str:
        lines = ["[rb] single-qubit randomized benchmarking"]
        lines.append("m    survival")
        for m, s in zip(self.lengths, self.survival):
            lines.append(f"{m:>3}  {s:.4f}")
        lines.append(
            f"fit: A={self.amplitude:.3f} p={self.decay:.5f} "
            f"B={self.offset:.3f} -> error/Clifford "
            f"{self.error_per_clifford:.5f}"
        )
        return "\n".join(lines)


def fit_rb_decay(
    lengths: Sequence[int], survival: Sequence[float]
) -> Tuple[float, float, float]:
    """Fit ``A p^m + B``; returns ``(A, p, B)``."""
    lengths = np.asarray(lengths, dtype=np.float64)
    survival = np.asarray(survival, dtype=np.float64)
    if lengths.size < 3:
        raise ValueError("need at least 3 sequence lengths")

    def model(m, a, p, b):
        return a * np.power(p, m) + b

    import warnings

    from scipy.optimize import OptimizeWarning

    with warnings.catch_warnings():
        # Covariance is unused; suppress the few-points estimate warning.
        warnings.simplefilter("ignore", OptimizeWarning)
        popt, _cov = _curve_fit_wrapped(model, lengths, survival)
    return float(popt[0]), float(popt[1]), float(popt[2])


def _curve_fit_wrapped(model, lengths, survival):
    return curve_fit(
        model,
        lengths,
        survival,
        p0=[0.5, 0.98, 0.5],
        bounds=([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]),
        maxfev=10_000,
    )


def interleaved_rb_sequence(
    length: int,
    gate: Gate,
    *,
    qubit: int = 0,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """An interleaved-RB sequence: random Cliffords alternating with ``gate``.

    Interleaved RB isolates one gate's error from the average Clifford
    error: comparing the interleaved decay ``p_gate`` with the standard
    decay ``p`` gives ``error(gate) ~ (1 - p_gate/p)/2``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if gate.num_qubits != 1:
        raise ValueError("interleaved RB implemented for one-qubit gates")
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(max(qubit, gate.qubits[0]) + 1, name=f"irb_m{length}")
    gate_u = gate.matrix()
    total = np.eye(2, dtype=np.complex128)
    for _ in range(length):
        index = int(rng.integers(24))
        for clifford_gate in clifford_1q_gates(index, qubit):
            qc.append(clifford_gate)
        qc.append(gate)
        total = gate_u @ _clifford_unitary(index) @ total
    theta, phi, lam = u3_params_from_unitary(total.conj().T)
    qc.u3(theta, phi, lam, qubit)
    return qc


def run_interleaved_rb(
    backend,
    gate: Gate,
    *,
    lengths: Sequence[int] = (1, 4, 8, 16, 32),
    sequences_per_length: int = 4,
    seed: int = 7,
) -> Tuple[RBResult, RBResult, float]:
    """Standard + interleaved RB; returns ``(standard, interleaved, gate_error)``.

    ``gate_error = (1 - p_interleaved / p_standard) * (d - 1) / d``.
    """
    standard = run_rb(
        backend,
        lengths=lengths,
        sequences_per_length=sequences_per_length,
        seed=seed,
    )
    survival: List[float] = []
    for m in lengths:
        values = []
        for k in range(sequences_per_length):
            circuit = interleaved_rb_sequence(
                m, gate, seed=seed * 20_000 + m * 100 + k
            )
            values.append(float(backend.run(circuit)[0]))
        survival.append(float(np.mean(values)))
    amplitude, decay, offset = fit_rb_decay(list(lengths), survival)
    interleaved = RBResult(
        lengths=list(lengths),
        survival=survival,
        amplitude=amplitude,
        decay=decay,
        offset=offset,
    )
    ratio = interleaved.decay / max(standard.decay, 1e-12)
    gate_error = (1.0 - min(1.0, ratio)) / 2.0
    return standard, interleaved, gate_error


def run_rb(
    backend,
    *,
    lengths: Sequence[int] = (1, 4, 8, 16, 32, 64),
    sequences_per_length: int = 6,
    seed: int = 7,
) -> RBResult:
    """Run the RB protocol against any distribution-returning backend.

    ``backend.run(circuit)`` must return the output distribution of a
    one-qubit circuit; survival probability is the ``|0>`` mass averaged
    over random sequences.
    """
    lengths = list(lengths)
    survival: List[float] = []
    for m in lengths:
        values = []
        for k in range(sequences_per_length):
            circuit = rb_sequence(m, seed=seed * 10_000 + m * 100 + k)
            probs = backend.run(circuit)
            values.append(float(probs[0]))
        survival.append(float(np.mean(values)))
    amplitude, decay, offset = fit_rb_decay(lengths, survival)
    return RBResult(
        lengths=lengths,
        survival=survival,
        amplitude=amplitude,
        decay=decay,
        offset=offset,
    )
