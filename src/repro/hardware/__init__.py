"""Emulated hardware backends and calibration tooling."""

from .backend import FakeHardware
from .calibration import mapping_candidates, paper_mappings, noise_report
from .randomized_benchmarking import (
    clifford_1q_gates,
    rb_sequence,
    interleaved_rb_sequence,
    RBResult,
    run_rb,
    run_interleaved_rb,
    fit_rb_decay,
)
from .quantum_volume import (
    qv_model_circuit,
    heavy_outputs,
    heavy_output_probability,
    QVWidthResult,
    measure_quantum_volume,
    achieved_quantum_volume,
)

__all__ = [
    "FakeHardware",
    "mapping_candidates",
    "paper_mappings",
    "noise_report",
    "qv_model_circuit",
    "heavy_outputs",
    "heavy_output_probability",
    "QVWidthResult",
    "measure_quantum_volume",
    "achieved_quantum_volume",
    "clifford_1q_gates",
    "rb_sequence",
    "RBResult",
    "run_rb",
    "run_interleaved_rb",
    "interleaved_rb_sequence",
    "fit_rb_decay",
]
