"""Calibration reporting and the paper's manual qubit mappings.

Figure 16 shows IBM's noise report for ibmq_toronto with four circled
4-qubit regions used as manual mappings in the §6.4 sensitivity study.
Since the per-edge rates here are synthesised (see
:mod:`repro.noise.devices`), the mappings are *derived* from the snapshot
with the same intent the authors used when circling regions by eye:

* ``best`` — the connected region with the lowest combined CNOT error
  (the blue circle, Figure 17),
* ``worst`` — the region with good couplers but the worst readout (the
  red circle, Figure 18: "benefit from relatively good connections but
  lower readout fidelity"),
* two intermediate regions (the other circles).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..noise.devices import DeviceSnapshot, get_device
from ..transpile.layout import connected_subsets

__all__ = ["mapping_candidates", "paper_mappings", "noise_report"]


def _region_stats(device: DeviceSnapshot, subset: Sequence[int]) -> Tuple[float, float]:
    """(mean CNOT error, mean readout error) of a connected region."""
    graph = device.coupling_graph().subgraph(list(subset))
    cx = float(np.mean([device.edge_error(a, b) for a, b in graph.edges]))
    ro = float(
        np.mean(
            [
                (device.readout_errors[q][0] + device.readout_errors[q][1]) / 2.0
                for q in subset
            ]
        )
    )
    return cx, ro


def mapping_candidates(
    device: DeviceSnapshot, size: int = 4
) -> List[Tuple[Tuple[int, ...], float, float]]:
    """All connected regions with their (cnot, readout) error means."""
    graph = device.coupling_graph()
    out = []
    for subset in connected_subsets(graph, size):
        ordered = tuple(sorted(subset))
        cx, ro = _region_stats(device, ordered)
        out.append((ordered, cx, ro))
    return out


def paper_mappings(
    device: "DeviceSnapshot | str" = "toronto", size: int = 4
) -> Dict[str, Tuple[int, ...]]:
    """The four manual mappings of the §6.4 study, derived from calibration.

    Returns ``{"best": ..., "worst": ..., "mid_low": ..., "mid_high": ...}``
    where ``best`` minimises combined error, ``worst`` has low CNOT error
    but the worst readout (the paper's red-circle surprise), and the two
    ``mid`` mappings sit between them.
    """
    if isinstance(device, str):
        device = get_device(device)
    candidates = mapping_candidates(device, size)
    if len(candidates) < 4:
        raise ValueError(f"{device.name} has too few regions of size {size}")

    # Physically-motivated total error budget for the §6.4 workload (a
    # routed 4q Toffoli runs ~30-40 CNOTs): gate infidelity accumulated
    # over the circuit plus the per-shot readout flip probability.
    cnot_budget = 35.0

    def budget(c) -> float:
        _subset, cx, ro = c
        return 1.0 - (1.0 - cx) ** cnot_budget + ro * size / 4.0

    combined = sorted(candidates, key=budget)
    best = combined[0][0]
    worst = combined[-1][0]
    remaining = [c for c in combined[1:-1]]
    mid_low = remaining[len(remaining) // 3][0]
    mid_high = remaining[(2 * len(remaining)) // 3][0]
    return {
        "best": best,
        "worst": worst,
        "mid_low": mid_low,
        "mid_high": mid_high,
    }


def noise_report(device: "DeviceSnapshot | str" = "toronto") -> str:
    """Figure 16: the device's calibration report plus the mapping rings."""
    if isinstance(device, str):
        device = get_device(device)
    lines = [device.noise_report(), "", "manual mapping regions (derived):"]
    for name, subset in paper_mappings(device).items():
        cx, ro = _region_stats(device, subset)
        lines.append(
            f"  {name:<8} qubits {list(subset)}: "
            f"mean CNOT err {cx:.5f}, mean readout err {ro:.5f}"
        )
    return "\n".join(lines)
