"""Emulated IBM Q hardware execution.

The paper runs on physical ibmq_manhattan / ibmq_rome / ibmq_toronto
machines, which are not available offline. :class:`FakeHardware` stands in
for them by augmenting the device noise model with the effects the paper
explicitly names as present on hardware but absent from the calibrated
noise model (§6.3-6.4):

* **calibration drift** — real error rates differ from the calibration
  snapshot; every rate is scaled by a seeded lognormal factor,
* **crosstalk** — "not reported by IBM but also known to be of the same
  magnitude" as CNOT/readout error; each CNOT also depolarises the
  spectator qubits adjacent to its coupler,
* **shot noise** — results come from a finite number of samples.

These additions make hardware runs strictly noisier than clean noise-model
simulation while remaining "distributed similarly" (the paper's
Observation 7), which is the property the hardware figures rely on.

Resilience: real IBM queues lose jobs to transient failures, submission
timeouts and calibration drift. ``run`` is therefore a *job execution*
with a retry policy (:class:`repro.faults.retrying`): under an active
fault plan (``--faults`` / ``REPRO_FAULTS``) transient faults are injected
*before* the shot sampler consumes any randomness, so a retried job yields
bit-identical results to an uninjected one. When the retry budget is
exhausted a circuit breaker opens; if degradation is allowed (plan option
``degrade=1`` or ``allow_degraded=True``) subsequent jobs fall back to
plain noise-model simulation — flagged via
:func:`repro.faults.note_degradation` so the campaign manifest records the
unit as degraded, never silently mixing the two execution modes.
Otherwise the transient error propagates and the campaign layer
quarantines the unit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..faults import (
    CircuitBreaker,
    TransientError,
    active_plan,
    maybe_inject,
    note_degradation,
    retrying,
)
from ..linalg.unitary import apply_matrix_to_state
from ..noise.channels import KrausChannel, apply_readout_errors, depolarizing_channel
from ..noise.devices import DeviceSnapshot, get_device
from ..noise.model import NoiseModel
from ..sim.density_matrix import DensityMatrix, DensityMatrixSimulator
from ..sim.sampler import sample_counts, counts_to_probabilities

__all__ = ["FakeHardware"]


class FakeHardware:
    """A shot-based noisy backend emulating one physical device.

    Parameters
    ----------
    device:
        Device snapshot or name.
    qubits:
        Physical qubits the (local-index) circuits map onto; defaults to
        the first five qubits of the device.
    shots:
        Samples per run; the empirical distribution is returned.
    drift:
        Lognormal sigma of the calibration-vs-reality gap (0 disables).
    crosstalk:
        Spectator depolarizing rate as a fraction of the coupler's CNOT
        error (0 disables).
    seed:
        Seeds both the drift realisation and the shot sampler.
    retry:
        Retry policy for transient job failures; defaults to a 4-attempt
        exponential backoff with decorrelated jitter.
    allow_degraded:
        Whether exhausting the retry budget may open the circuit breaker
        and fall back to plain noise-model simulation. ``None`` (default)
        defers to the active fault plan's ``degrade`` option.
    """

    def __init__(
        self,
        device: Union[DeviceSnapshot, str],
        qubits: Optional[Sequence[int]] = None,
        *,
        shots: int = 8192,
        drift: float = 0.25,
        crosstalk: float = 0.35,
        seed: int = 1234,
        include_thermal: bool = True,
        retry: Optional[retrying] = None,
        allow_degraded: Optional[bool] = None,
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        if qubits is None:
            qubits = list(range(min(5, self.device.num_qubits)))
        self.qubits = tuple(int(q) for q in qubits)
        self.shots = int(shots)
        self.drift = float(drift)
        self.crosstalk = float(crosstalk)
        self.seed = int(seed)
        self.include_thermal = bool(include_thermal)
        self.allow_degraded = allow_degraded
        self.degraded = False
        self._retry = retry or retrying(
            attempts=4, base_delay=0.02, max_delay=0.5
        )
        self._breaker = CircuitBreaker()
        self._job_index = 0
        self._degraded_sim: Optional[DensityMatrixSimulator] = None
        self._rng = np.random.default_rng(seed)

        drifted = self._drifted_device()
        self.noise_model: NoiseModel = drifted.noise_model(
            self.qubits, include_thermal=include_thermal
        )
        self._drifted = drifted
        self._crosstalk_channels = self._build_crosstalk_channels()

    @property
    def name(self) -> str:
        return f"fake_{self.device.name}"

    # ------------------------------------------------------------------
    def _drifted_device(self) -> DeviceSnapshot:
        """A copy of the device with lognormal-drifted error rates."""
        if self.drift <= 0:
            return self.device
        rng = np.random.default_rng(self.seed * 7919 + 13)
        d = self.device

        def jitter(value: float, cap: float) -> float:
            return float(min(cap, value * rng.lognormal(0.0, self.drift)))

        return DeviceSnapshot(
            name=d.name,
            num_qubits=d.num_qubits,
            edges=list(d.edges),
            cnot_errors={e: jitter(v, 0.5) for e, v in d.cnot_errors.items()},
            readout_errors={
                q: (jitter(p01, 0.45), jitter(p10, 0.45))
                for q, (p01, p10) in d.readout_errors.items()
            },
            single_qubit_errors={
                q: jitter(v, 0.05) for q, v in d.single_qubit_errors.items()
            },
            t1=dict(d.t1),
            t2=dict(d.t2),
            cx_duration=d.cx_duration,
            sq_duration=d.sq_duration,
            calibration_date=d.calibration_date,
        )

    def _build_crosstalk_channels(
        self,
    ) -> Dict[Tuple[int, int], List[Tuple[KrausChannel, Tuple[int, ...]]]]:
        """Per-local-edge spectator channels.

        For a CNOT on local edge ``(a, b)``, every *active* local qubit
        physically adjacent to either endpoint receives a depolarizing
        kick proportional to the coupler's error rate.
        """
        out: Dict[Tuple[int, int], List[Tuple[KrausChannel, Tuple[int, ...]]]] = {}
        if self.crosstalk <= 0:
            return out
        graph = self._drifted.coupling_graph()
        local_of = {p: i for i, p in enumerate(self.qubits)}
        for a_local, a_phys in enumerate(self.qubits):
            for b_local, b_phys in enumerate(self.qubits):
                if a_local >= b_local or not graph.has_edge(a_phys, b_phys):
                    continue
                err = self._drifted.edge_error(a_phys, b_phys)
                spectators = set()
                for endpoint in (a_phys, b_phys):
                    for neighbor in graph.neighbors(endpoint):
                        if neighbor in local_of and neighbor not in (a_phys, b_phys):
                            spectators.add(local_of[neighbor])
                if spectators:
                    channel = depolarizing_channel(
                        min(1.0, self.crosstalk * err)
                    )
                    out[(a_local, b_local)] = [
                        (channel, (s,)) for s in sorted(spectators)
                    ]
        return out

    # ------------------------------------------------------------------
    def run_density_matrix(self, circuit: QuantumCircuit) -> DensityMatrix:
        """Evolve the full density matrix including crosstalk channels."""
        n = circuit.num_qubits
        if n > len(self.qubits):
            raise ValueError(
                f"circuit width {n} exceeds backend subset {len(self.qubits)}"
            )
        rho = DensityMatrix.zero_state(n).data
        for gate in circuit:
            if gate.name in ("barrier", "measure"):
                continue
            matrix = gate.matrix()
            rho = apply_matrix_to_state(matrix, rho, gate.qubits, n)
            rho = apply_matrix_to_state(
                matrix, rho.conj().T, gate.qubits, n
            ).conj().T
            for channel, qubits in self.noise_model.operations_for(gate):
                rho = channel.apply(rho, qubits, n)
            if gate.name == "cx":
                key = tuple(sorted(gate.qubits))
                for channel, qubits in self._crosstalk_channels.get(key, ()):
                    if qubits[0] < n:
                        rho = channel.apply(rho, qubits, n)
        return DensityMatrix(rho)

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        """Execute one job with shots: the *empirical* distribution.

        Transient failures (injected or genuine) are retried under the
        backend's policy; faults fire before the shot sampler consumes
        randomness, so a retried job is bit-identical to an unfaulted one.
        An exhausted retry budget opens the circuit breaker: with
        degradation allowed the job (and all subsequent ones) falls back
        to plain noise-model simulation, otherwise the error propagates
        for the campaign layer to quarantine the unit.
        """
        site = f"{self.name}:job{self._job_index}"
        self._job_index += 1
        if self.degraded:
            return self._run_degraded(circuit, site)
        try:
            probs = self._retry.call(
                lambda attempt: self._execute_job(circuit, site, attempt)
            )
        except TransientError as exc:
            self._breaker.record_failure(exc)
            if self._breaker.open and self._degradation_allowed():
                self.degraded = True
                return self._run_degraded(circuit, site)
            raise
        self._breaker.record_success()
        return probs

    def _execute_job(self, circuit: QuantumCircuit, site: str, attempt: int) -> np.ndarray:
        """One submission attempt; injection points precede any RNG use."""
        maybe_inject("timeout", site, attempt)
        maybe_inject("job", site, attempt)
        maybe_inject("drift", site, attempt)
        rho = self.run_density_matrix(circuit)
        probs = rho.probabilities()
        probs = apply_readout_errors(
            probs, self.noise_model.readout_errors(circuit.num_qubits)
        )
        counts = sample_counts(
            probs, self.shots, num_qubits=circuit.num_qubits, seed=self._rng
        )
        return counts_to_probabilities(counts, circuit.num_qubits)

    def _degradation_allowed(self) -> bool:
        if self.allow_degraded is not None:
            return self.allow_degraded
        plan = active_plan()
        return bool(plan is not None and plan.degrade)

    def _run_degraded(self, circuit: QuantumCircuit, site: str) -> np.ndarray:
        """Plain noise-model simulation of the *calibrated* device.

        No drift, no crosstalk, no shot noise — exactly what a
        :class:`~repro.experiments.runner.NoiseModelBackend` would return.
        Every degraded job is reported so campaign manifests flag the
        units it contributed to; degraded results are never checkpointed.
        """
        note_degradation(
            site,
            f"{self.name}: degraded to plain noise-model simulation "
            f"({self._breaker.last_error or 'emulation unavailable'})",
        )
        if self._degraded_sim is None:
            model = self.device.noise_model(
                self.qubits, include_thermal=self.include_thermal
            )
            self._degraded_sim = DensityMatrixSimulator(model)
        return self._degraded_sim.probabilities(circuit.without_measurements())

    def run_exact(self, circuit: QuantumCircuit) -> np.ndarray:
        """The shot-free limit (for variance-free tests)."""
        rho = self.run_density_matrix(circuit)
        probs = rho.probabilities()
        return apply_readout_errors(
            probs, self.noise_model.readout_errors(circuit.num_qubits)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FakeHardware({self.device.name!r}, qubits={self.qubits}, "
            f"shots={self.shots}, drift={self.drift}, crosstalk={self.crosstalk})"
        )
