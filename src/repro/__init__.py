"""repro — reproduction of "Empirical Evaluation of Circuit Approximations
on Noisy Quantum Devices" (Wilson, Bassman, Mueller, Iancu; SC 2021).

Packages
--------
``repro.circuits``
    Gate/circuit IR, DAG, OpenQASM, standard circuits.
``repro.linalg``
    Operators, decompositions, Haar sampling, circuit gradients.
``repro.sim``
    Statevector and density-matrix simulators, sampling, observables.
``repro.noise``
    Kraus channels, device noise models, the five IBM device snapshots.
``repro.transpile``
    Basis translation, layout, routing, optimisation levels 0-3.
``repro.synthesis``
    Instrumented QSearch/QFast synthesis and approximate-circuit pools —
    the paper's core method.
``repro.metrics``
    Hilbert-Schmidt / Jensen-Shannon / KL / TVD metrics.
``repro.apps``
    TFIM, Grover, multi-control Toffoli workloads.
``repro.hardware``
    Emulated IBM Q hardware (drift + crosstalk + shots).
``repro.experiments``
    One driver per paper table/figure.
"""

__version__ = "1.0.0"

from . import apps, circuits, experiments, hardware, linalg, metrics, noise, sim, synthesis, transpile
from .circuits import QuantumCircuit, Gate
from .linalg import Operator
from .sim import StatevectorSimulator, DensityMatrixSimulator
from .noise import NoiseModel, get_device
from .synthesis import (
    QSearchSynthesizer,
    QFastSynthesizer,
    generate_approximate_circuits,
    hs_distance,
)
from .hardware import FakeHardware

__all__ = [
    "__version__",
    "QuantumCircuit",
    "Gate",
    "Operator",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "NoiseModel",
    "get_device",
    "QSearchSynthesizer",
    "QFastSynthesizer",
    "generate_approximate_circuits",
    "hs_distance",
    "FakeHardware",
    "apps",
    "circuits",
    "experiments",
    "hardware",
    "linalg",
    "metrics",
    "noise",
    "sim",
    "synthesis",
    "transpile",
]
