"""Haar-random unitaries and states, for tests and synthesis targets."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["haar_unitary", "haar_state", "random_special_unitary"]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def haar_unitary(dim: int, seed: SeedLike = None) -> np.ndarray:
    """Sample a ``dim x dim`` unitary from the Haar measure.

    Uses the QR trick with the R-diagonal phase fix (Mezzadri 2007) so the
    distribution is exactly Haar rather than QR-biased.
    """
    rng = _rng(seed)
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    d = np.diagonal(r)
    q = q * (d / np.abs(d))
    return q.astype(np.complex128)


def random_special_unitary(dim: int, seed: SeedLike = None) -> np.ndarray:
    """Haar-random unitary normalised to determinant one."""
    u = haar_unitary(dim, seed)
    det = np.linalg.det(u)
    return u * det ** (-1.0 / dim)


def haar_state(num_qubits: int, seed: SeedLike = None) -> np.ndarray:
    """Sample a Haar-random pure state vector on ``num_qubits`` qubits."""
    rng = _rng(seed)
    dim = 2**num_qubits
    z = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return (z / np.linalg.norm(z)).astype(np.complex128)
