"""Analytic derivatives of parameterised gates and circuit unitaries.

The synthesis optimiser spends nearly all of its time evaluating the
Hilbert-Schmidt objective and its gradient, so the gradient must not cost
``P`` circuit evaluations for ``P`` parameters. This module implements the
standard prefix/suffix-product trick: one forward sweep builds cumulative
products ``P_j = G_j ... G_1``, one backward sweep builds
``S_j = G_L ... G_{j+1}``, and each parameter's derivative is the sandwich
``S_j (dG_j/dtheta) P_{j-1}`` — two sweeps total, independent of ``P``.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence, Tuple

import numpy as np

from .unitary import apply_matrix_to_state, embed_gate

__all__ = [
    "u3_matrix_and_derivatives",
    "circuit_unitary_and_gradient",
    "GateSpec",
]


def u3_matrix_and_derivatives(
    theta: float, phi: float, lam: float
) -> Tuple[np.ndarray, np.ndarray]:
    """U3 matrix plus its three parameter derivatives.

    Returns ``(U, dU)`` with ``dU`` of shape ``(3, 2, 2)`` ordered
    ``(d/dtheta, d/dphi, d/dlam)``.
    """
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    el = cmath.exp(1j * lam)
    ep = cmath.exp(1j * phi)
    epl = cmath.exp(1j * (phi + lam))
    u = np.array([[c, -el * s], [ep * s, epl * c]], dtype=np.complex128)
    du = np.empty((3, 2, 2), dtype=np.complex128)
    # d/dtheta
    du[0] = np.array(
        [[-0.5 * s, -0.5 * el * c], [0.5 * ep * c, -0.5 * epl * s]],
        dtype=np.complex128,
    )
    # d/dphi
    du[1] = np.array(
        [[0.0, 0.0], [1j * ep * s, 1j * epl * c]], dtype=np.complex128
    )
    # d/dlam
    du[2] = np.array(
        [[0.0, -1j * el * s], [0.0, 1j * epl * c]], dtype=np.complex128
    )
    return u, du


class GateSpec:
    """A gate in a differentiable circuit description.

    Attributes
    ----------
    qubits:
        Qubit labels the gate acts on.
    matrix:
        The current gate matrix.
    dmatrices:
        Parameter derivatives of the matrix, shape ``(p, d, d)``; empty for
        fixed gates.
    param_offset:
        Index of the gate's first parameter in the flat parameter vector.
    """

    __slots__ = ("qubits", "matrix", "dmatrices", "param_offset")

    def __init__(
        self,
        qubits: Sequence[int],
        matrix: np.ndarray,
        dmatrices: np.ndarray = None,
        param_offset: int = 0,
    ) -> None:
        self.qubits = tuple(qubits)
        self.matrix = matrix
        self.dmatrices = (
            dmatrices
            if dmatrices is not None
            else np.empty((0,) + matrix.shape, dtype=np.complex128)
        )
        self.param_offset = param_offset

    @property
    def num_params(self) -> int:
        return self.dmatrices.shape[0]


def circuit_unitary_and_gradient(
    specs: Sequence[GateSpec], num_qubits: int, num_params: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Unitary and its parameter gradient for a differentiable circuit.

    Parameters
    ----------
    specs:
        Gate descriptions in application order (first applied first).
    num_qubits:
        Circuit width ``n``.
    num_params:
        Length of the flat parameter vector.

    Returns
    -------
    (U, dU):
        ``U`` has shape ``(2**n, 2**n)``; ``dU`` has shape
        ``(num_params, 2**n, 2**n)`` with ``dU[i] = dU/dtheta_i``.
    """
    dim = 2**num_qubits
    ident = np.eye(dim, dtype=np.complex128)

    # Forward sweep: prefixes[j] = G_j ... G_1 (prefixes[0] = I).
    prefixes: List[np.ndarray] = [ident]
    acc = ident
    for spec in specs:
        acc = apply_matrix_to_state(spec.matrix, acc, spec.qubits, num_qubits)
        prefixes.append(acc)
    unitary = prefixes[-1]

    if num_params == 0:
        return unitary, np.empty((0, dim, dim), dtype=np.complex128)

    grad = np.zeros((num_params, dim, dim), dtype=np.complex128)

    # Backward sweep: suffix = G_L ... G_{j+1}, built by peeling gates off
    # the left of the product. Applying the adjoint of each gate to the
    # running suffix from the right is equivalent to suffix @ G_j^dagger,
    # implemented as (G_j^* applied to suffix^T)^T to reuse the fast
    # tensor-contraction kernel.
    suffix = ident
    for j in range(len(specs) - 1, -1, -1):
        spec = specs[j]
        if spec.num_params:
            pre = prefixes[j]
            for p in range(spec.num_params):
                # sandwich = suffix @ embed(dG) @ prefix_{j-1}
                mid = apply_matrix_to_state(
                    spec.dmatrices[p], pre, spec.qubits, num_qubits
                )
                grad[spec.param_offset + p] = suffix @ mid
        # Fold this gate into the suffix: new_suffix = suffix @ embed(G_j).
        suffix = apply_matrix_to_state(
            spec.matrix.T, suffix.T, spec.qubits, num_qubits
        ).T

    return unitary, grad
