"""Pauli-string algebra.

Provides the operator language the TFIM workload is defined in: sparse
sums of Pauli strings with efficient matrix construction, products,
commutation checks, and expectation values. Used to build the TFIM
Hamiltonian exactly and to quantify Trotterisation error against the exact
propagator.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PauliString", "PauliSum"]

_SINGLE = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}

# Single-qubit Pauli products: _MUL[a][b] = (phase, result)
_MUL = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}


class PauliString:
    """A tensor product of single-qubit Paulis, e.g. ``"XZI"``.

    The label reads MSB-first: the leftmost letter acts on the highest
    qubit (``"XZI"`` on 3 qubits puts X on qubit 2, Z on qubit 1).
    """

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        label = label.upper()
        if not label or any(ch not in "IXYZ" for ch in label):
            raise ValueError(f"invalid Pauli label {label!r}")
        self.label = label

    @classmethod
    def from_sparse(
        cls, num_qubits: int, terms: Mapping[int, str]
    ) -> "PauliString":
        """Build from ``{qubit: letter}``, identity elsewhere."""
        letters = ["I"] * num_qubits
        for qubit, letter in terms.items():
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit {qubit} out of range")
            letters[num_qubits - 1 - qubit] = letter.upper()
        return cls("".join(letters))

    @property
    def num_qubits(self) -> int:
        return len(self.label)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return sum(1 for ch in self.label if ch != "I")

    def letter(self, qubit: int) -> str:
        return self.label[self.num_qubits - 1 - qubit]

    def to_matrix(self) -> np.ndarray:
        out = np.array([[1.0]], dtype=np.complex128)
        for ch in self.label:
            out = np.kron(out, _SINGLE[ch])
        return out

    def is_diagonal(self) -> bool:
        """True when the string contains only I and Z (Z-basis diagonal)."""
        return all(ch in "IZ" for ch in self.label)

    def diagonal_signs(self) -> np.ndarray:
        """Eigenvalue per basis state for a diagonal (I/Z) string."""
        if not self.is_diagonal():
            raise ValueError(f"{self.label} is not diagonal in the Z basis")
        n = self.num_qubits
        indices = np.arange(2**n)
        signs = np.ones(2**n)
        for qubit in range(n):
            if self.letter(qubit) == "Z":
                signs *= 1.0 - 2.0 * ((indices >> qubit) & 1)
        return signs

    def mul(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Product ``self @ other`` as ``(phase, string)``."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("width mismatch")
        phase: complex = 1.0
        letters = []
        for a, b in zip(self.label, other.label):
            ph, res = _MUL[(a, b)]
            phase *= ph
            letters.append(res)
        return phase, PauliString("".join(letters))

    def commutes_with(self, other: "PauliString") -> bool:
        """Pauli strings either commute or anticommute; True if commute."""
        anti = 0
        for a, b in zip(self.label, other.label):
            if a != "I" and b != "I" and a != b:
                anti += 1
        return anti % 2 == 0

    def expectation(self, statevector: np.ndarray) -> float:
        """``<psi| P |psi>`` for a pure state."""
        psi = np.asarray(statevector, dtype=np.complex128)
        if self.is_diagonal():
            return float(np.real(np.dot(np.abs(psi) ** 2, self.diagonal_signs())))
        return float(np.real(np.vdot(psi, self.to_matrix() @ psi)))

    def __eq__(self, other) -> bool:
        return isinstance(other, PauliString) and self.label == other.label

    def __hash__(self) -> int:
        return hash(self.label)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PauliString({self.label!r})"


class PauliSum:
    """A real/complex linear combination of Pauli strings (a Hamiltonian)."""

    def __init__(self, terms: Optional[Mapping[str, complex]] = None, num_qubits: Optional[int] = None) -> None:
        self._terms: Dict[str, complex] = {}
        self._num_qubits = num_qubits
        if terms:
            for label, coeff in terms.items():
                self.add(PauliString(label), coeff)

    @property
    def num_qubits(self) -> int:
        if self._num_qubits is None:
            raise ValueError("empty PauliSum has no width")
        return self._num_qubits

    @property
    def terms(self) -> Dict[str, complex]:
        return dict(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def add(self, string: PauliString, coeff: complex = 1.0) -> "PauliSum":
        if self._num_qubits is None:
            self._num_qubits = string.num_qubits
        elif string.num_qubits != self._num_qubits:
            raise ValueError("width mismatch")
        new = self._terms.get(string.label, 0.0) + coeff
        if abs(new) < 1e-15:
            self._terms.pop(string.label, None)
        else:
            self._terms[string.label] = new
        return self

    def __add__(self, other: "PauliSum") -> "PauliSum":
        out = PauliSum(num_qubits=self._num_qubits)
        for label, coeff in self._terms.items():
            out.add(PauliString(label), coeff)
        for label, coeff in other._terms.items():
            out.add(PauliString(label), coeff)
        return out

    def __mul__(self, scalar: complex) -> "PauliSum":
        out = PauliSum(num_qubits=self._num_qubits)
        for label, coeff in self._terms.items():
            out.add(PauliString(label), coeff * scalar)
        return out

    __rmul__ = __mul__

    def to_matrix(self) -> np.ndarray:
        dim = 2**self.num_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        for label, coeff in self._terms.items():
            out += coeff * PauliString(label).to_matrix()
        return out

    def is_hermitian(self, atol: float = 1e-10) -> bool:
        return all(abs(c.imag) < atol for c in self._terms.values())

    def expectation(self, statevector: np.ndarray) -> complex:
        return sum(
            coeff * PauliString(label).expectation(statevector)
            for label, coeff in self._terms.items()
        )

    def evolution_unitary(self, time: float) -> np.ndarray:
        """The exact propagator ``exp(-i H t)`` (dense, small systems)."""
        from scipy.linalg import expm

        return expm(-1j * time * self.to_matrix())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{c:.3g}*{l}" for l, c in sorted(self._terms.items())
        )
        return f"PauliSum({parts})"
