"""Dense operator utilities and vectorised gate application.

This module is the numerical heart of the package: every simulator and the
circuit-unitary computation funnel through :func:`apply_matrix_to_state`,
which contracts a ``k``-qubit gate into an ``n``-qubit state tensor with a
single :func:`numpy.tensordot` call (no per-amplitude Python loops, per the
HPC guidance).

Conventions
-----------
Little-endian: qubit 0 is the least-significant bit of a basis index, so a
state vector reshaped to ``(2,) * n`` has qubit ``q`` on axis ``n - 1 - q``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "apply_matrix_to_state",
    "apply_matrix_to_unitary",
    "embed_gate",
    "Operator",
    "global_phase_aligned",
    "allclose_up_to_global_phase",
    "is_unitary",
]


def _qubit_axes(num_qubits: int, qubits: Sequence[int]) -> Tuple[int, ...]:
    """Map qubit labels to tensor axes of a ``(2,)*n`` reshaped state."""
    return tuple(num_qubits - 1 - q for q in qubits)


def apply_matrix_to_state(
    matrix: np.ndarray,
    state: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``k``-qubit ``matrix`` to ``state`` on ``qubits``.

    Parameters
    ----------
    matrix:
        ``(2**k, 2**k)`` unitary in the local little-endian basis of
        ``qubits`` (first listed qubit = low bit).
    state:
        Array of shape ``(2**n,)`` or ``(2**n, batch)``; the batch form is
        used to evolve all columns of a unitary at once.
    qubits:
        Target qubit labels, first = local low bit.
    num_qubits:
        Total qubit count ``n``.

    Returns
    -------
    numpy.ndarray
        The evolved state with the same shape as the input.
    """
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {k} qubits"
        )
    in_shape = state.shape
    batch = state.shape[1:] if state.ndim > 1 else ()
    tensor = state.reshape((2,) * num_qubits + batch)

    # Local basis |q_{k-1} ... q_0>: axis j of the reshaped gate corresponds
    # to qubits[k - 1 - j]; build the contraction axis list accordingly.
    gate = matrix.reshape((2,) * (2 * k))
    axes = [_qubit_axes(num_qubits, (qubits[k - 1 - j],))[0] for j in range(k)]

    out = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), axes))
    # tensordot puts the k output axes first; move them back into place.
    out = np.moveaxis(out, list(range(k)), axes)
    return np.ascontiguousarray(out).reshape(in_shape)


def apply_matrix_to_unitary(
    matrix: np.ndarray,
    unitary: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Left-multiply the embedded gate into an ``(2**n, 2**n)`` unitary."""
    return apply_matrix_to_state(matrix, unitary, qubits, num_qubits)


def embed_gate(
    matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Return the full ``2**n`` dimensional embedding of a local gate."""
    ident = np.eye(2**num_qubits, dtype=np.complex128)
    return apply_matrix_to_unitary(matrix, ident, qubits, num_qubits)


def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Check ``U^dagger U = I`` within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    ident = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, ident, atol=atol))


def global_phase_aligned(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return ``b`` multiplied by the phase that best aligns it with ``a``."""
    overlap = np.trace(a.conj().T @ b)
    if abs(overlap) < 1e-300:
        return b
    phase = overlap / abs(overlap)
    return b / phase


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """True when ``a`` equals ``b`` up to a single global phase factor."""
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    if a.shape != b.shape:
        return False
    return bool(np.allclose(a, global_phase_aligned(a, b), atol=atol))


class Operator:
    """A dense ``n``-qubit operator, mirroring ``qiskit.quantum_info.Operator``.

    The paper obtains its synthesis targets with
    ``qiskit.quantum_info.Operator(circuit).data``; this class plays the same
    role: ``Operator(circuit).data`` returns the circuit unitary.
    """

    def __init__(self, data) -> None:
        if hasattr(data, "unitary"):
            matrix = data.unitary()
        else:
            matrix = np.array(data, dtype=np.complex128)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"operator must be square, got {matrix.shape}")
        dim = matrix.shape[0]
        n = int(round(np.log2(dim)))
        if 2**n != dim:
            raise ValueError(f"operator dimension {dim} is not a power of two")
        self._data = matrix
        self._num_qubits = n

    @property
    def data(self) -> np.ndarray:
        """The raw ``(2**n, 2**n)`` complex matrix."""
        return self._data

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def dim(self) -> int:
        return self._data.shape[0]

    def adjoint(self) -> "Operator":
        return Operator(self._data.conj().T)

    def compose(self, other: "Operator") -> "Operator":
        """Return ``other @ self`` (apply ``self`` first, then ``other``)."""
        return Operator(other.data @ self._data)

    def tensor(self, other: "Operator") -> "Operator":
        """Kronecker product with ``other`` as the *lower* qubits."""
        return Operator(np.kron(self._data, other.data))

    def is_unitary(self, atol: float = 1e-9) -> bool:
        return is_unitary(self._data, atol=atol)

    def equiv(self, other: "Operator", atol: float = 1e-8) -> bool:
        """Equality up to global phase."""
        return allclose_up_to_global_phase(self._data, other.data, atol=atol)

    def __matmul__(self, other: "Operator") -> "Operator":
        return Operator(self._data @ other.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Operator({self._num_qubits} qubits)"


def controlled_unitary(matrix: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Build a controlled version of ``matrix`` (controls = low qubits).

    The controls occupy the *low* qubit positions of the returned operator;
    the original operator acts on the high qubits when all controls are 1.
    """
    k = int(round(np.log2(matrix.shape[0])))
    n = k + num_controls
    dim = 2**n
    out = np.eye(dim, dtype=np.complex128)
    mask = (1 << num_controls) - 1
    # Basis indices with all control bits set: i = (j << num_controls) | mask.
    idx = (np.arange(2**k) << num_controls) | mask
    out[np.ix_(idx, idx)] = matrix
    return out
