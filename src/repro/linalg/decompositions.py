"""Analytic gate decompositions.

The centrepiece is the ZYZ Euler decomposition, which rewrites any 2x2
unitary as a single ``U3`` gate plus a global phase — the rewrite the
transpiler's single-qubit merge pass relies on to keep one-qubit gate count
at one per qubit per layer (as Qiskit's optimisation level 1+ does).
"""

from __future__ import annotations

import cmath
import math
from typing import Tuple

import numpy as np

from .unitary import allclose_up_to_global_phase

__all__ = [
    "zyz_decomposition",
    "u3_params_from_unitary",
    "su2_from_unitary",
    "rotation_axis_angle",
]

_ATOL = 1e-12


def su2_from_unitary(matrix: np.ndarray) -> Tuple[np.ndarray, float]:
    """Split a 2x2 unitary into ``(V, alpha)`` with ``V in SU(2)``.

    ``matrix = exp(i * alpha) * V`` and ``det(V) = 1``.
    """
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    alpha = cmath.phase(det) / 2.0
    return matrix * cmath.exp(-1j * alpha), alpha


def zyz_decomposition(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Euler angles ``(theta, phi, lam, phase)`` for a 2x2 unitary.

    ``matrix = exp(i*phase) * Rz(phi) @ Ry(theta) @ Rz(lam)``.
    """
    if matrix.shape != (2, 2):
        raise ValueError("zyz_decomposition expects a 2x2 matrix")
    v, alpha = su2_from_unitary(np.asarray(matrix, dtype=np.complex128))
    # v = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #      [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    theta = 2.0 * math.atan2(abs(v[1, 0]), abs(v[0, 0]))
    if abs(v[0, 0]) > _ATOL and abs(v[1, 0]) > _ATOL:
        plus = 2.0 * cmath.phase(v[1, 1])
        minus = 2.0 * cmath.phase(v[1, 0])
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    elif abs(v[1, 0]) <= _ATOL:  # theta ~ 0: only phi+lam is defined
        phi = 2.0 * cmath.phase(v[1, 1])
        lam = 0.0
        theta = 0.0
    else:  # theta ~ pi: only phi-lam is defined
        phi = 2.0 * cmath.phase(v[1, 0])
        lam = 0.0
        theta = math.pi
    return theta, phi, lam, alpha


def u3_params_from_unitary(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Parameters ``(theta, phi, lam)`` with ``U3(...) ~ matrix`` up to phase.

    ``U3(theta, phi, lam) = exp(i*(phi+lam)/2) * Rz(phi) Ry(theta) Rz(lam)``,
    so the ZYZ angles transfer directly.
    """
    theta, phi, lam, _phase = zyz_decomposition(matrix)
    return theta, phi, lam


def rotation_axis_angle(matrix: np.ndarray) -> Tuple[np.ndarray, float]:
    """Bloch rotation axis and angle of a 2x2 unitary.

    Any ``V in SU(2)`` equals ``cos(a/2) I - i sin(a/2) (n . sigma)``;
    returns ``(n, a)`` with ``|n| = 1`` (``n`` arbitrary when ``a = 0``).
    """
    v, _ = su2_from_unitary(np.asarray(matrix, dtype=np.complex128))
    cos_half = np.clip(np.real(v[0, 0] + v[1, 1]) / 2.0, -1.0, 1.0)
    angle = 2.0 * math.acos(cos_half)
    sin_half = math.sin(angle / 2.0)
    if sin_half < 1e-12:
        return np.array([0.0, 0.0, 1.0]), 0.0
    nx = -np.imag(v[0, 1] + v[1, 0]) / (2.0 * sin_half)
    ny = np.real(v[0, 1] - v[1, 0]) / (2.0 * sin_half)
    nz = -np.imag(v[0, 0] - v[1, 1]) / (2.0 * sin_half)
    n = np.array([nx, ny, nz])
    norm = np.linalg.norm(n)
    if norm < 1e-12:
        return np.array([0.0, 0.0, 1.0]), angle
    return n / norm, angle


def verify_zyz(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Self-check helper: reconstruct the unitary from its ZYZ angles."""
    from ..circuits.gates import u3_matrix

    theta, phi, lam, _ = zyz_decomposition(matrix)
    return allclose_up_to_global_phase(
        np.asarray(matrix, dtype=np.complex128),
        u3_matrix((theta, phi, lam)),
        atol=atol,
    )
