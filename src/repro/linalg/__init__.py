"""Dense linear algebra substrate: operators, decompositions, gradients."""

from .unitary import (
    Operator,
    apply_matrix_to_state,
    apply_matrix_to_unitary,
    embed_gate,
    controlled_unitary,
    is_unitary,
    allclose_up_to_global_phase,
    global_phase_aligned,
)
from .decompositions import (
    zyz_decomposition,
    u3_params_from_unitary,
    su2_from_unitary,
    rotation_axis_angle,
)
from .random import haar_unitary, haar_state, random_special_unitary
from .pauli import PauliString, PauliSum
from .gradients import (
    GateSpec,
    circuit_unitary_and_gradient,
    u3_matrix_and_derivatives,
)

__all__ = [
    "Operator",
    "apply_matrix_to_state",
    "apply_matrix_to_unitary",
    "embed_gate",
    "controlled_unitary",
    "is_unitary",
    "allclose_up_to_global_phase",
    "global_phase_aligned",
    "zyz_decomposition",
    "u3_params_from_unitary",
    "su2_from_unitary",
    "rotation_axis_angle",
    "haar_unitary",
    "haar_state",
    "random_special_unitary",
    "GateSpec",
    "circuit_unitary_and_gradient",
    "u3_matrix_and_derivatives",
    "PauliString",
    "PauliSum",
]
