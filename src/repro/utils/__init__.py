"""Shared utilities: synthesis disk cache."""

from .cache import (
    cache_dir,
    cache_key,
    clear_memory_cache,
    load_records,
    store_records,
)

__all__ = [
    "cache_dir",
    "cache_key",
    "clear_memory_cache",
    "load_records",
    "store_records",
]
