"""Disk cache for synthesis runs.

Synthesis is the expensive step (hundreds of numerical optimisations per
target), while everything downstream — noisy simulation, sweeps, hardware
emulation — is cheap. Caching synthesis results per (target, settings) key
lets every figure driver re-run instantly after the first pass.

The cache is plain JSON (structures + parameter vectors + distances), so it
is portable and inspectable. Set ``REPRO_CACHE_DIR`` to relocate it, or
``REPRO_NO_CACHE=1`` to disable.

Concurrency and degradation guarantees (the parallel execution layer fans
synthesis out over worker processes that all share this cache):

* **Concurrent writers are safe.** Each write goes to a per-process,
  per-call unique temp file followed by an atomic ``rename`` — two workers
  storing the same key race benignly (last replace wins, readers only ever
  see complete files).
* **Reads never create state.** The cache directory is only created on
  write; a missing or unreadable directory (read-only ``REPRO_CACHE_DIR``)
  degrades to a cache miss instead of crashing.
* **Repeated lookups are memory-served.** A small in-process LRU layer
  sits in front of the disk so pool re-reads inside one run skip JSON
  parsing entirely.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional

import numpy as np

__all__ = [
    "atomic_write_json",
    "cache_dir",
    "cache_key",
    "load_records",
    "read_json",
    "seed_cache",
    "store_records",
    "clear_memory_cache",
]


def read_json(path: Path) -> Optional[dict]:
    """Parse a JSON file, or ``None`` on any filesystem/decode problem.

    Shared best-effort read discipline: a missing, unreadable, truncated or
    otherwise corrupt file is a miss, never an exception.
    """
    try:
        with Path(path).open() as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None


def atomic_write_json(path: Path, obj, **dump_kwargs) -> bool:
    """Write ``obj`` as JSON via a unique temp file + atomic rename.

    The concurrency discipline every on-disk layer (synthesis cache, run
    store, manifests) shares: the temp name is unique per process *and*
    per call, so concurrent writers of one path race benignly — the last
    rename wins and readers only ever observe complete files. Returns
    ``False`` (after cleaning up the temp file) when the write fails.
    """
    path = Path(path)
    tmp = path.parent / f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    try:
        with tmp.open("w") as fh:
            json.dump(obj, fh, **dump_kwargs)
        tmp.replace(path)
        return True
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        return False


def seed_cache(source_dir: Path) -> int:
    """Copy missing ``*.json`` entries from ``source_dir`` into the cache.

    Lets a checked-in fixture set (e.g. ``tests/fixtures/repro_cache``)
    warm an untracked cache directory so fresh clones skip synthesis.
    Returns the number of entries copied; disabled caching or an
    unwritable cache dir seeds nothing.
    """
    source = Path(source_dir)
    directory = cache_dir(create=True)
    if directory is None or not source.is_dir():
        return 0
    copied = 0
    for entry in sorted(source.glob("*.json")):
        target = directory / entry.name
        if target.exists():
            continue
        try:
            tmp = directory / f"{entry.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
            tmp.write_bytes(entry.read_bytes())
            tmp.replace(target)
            copied += 1
        except OSError:
            continue
    return copied

#: In-process LRU of parsed records, keyed by (directory, key).
_MEMORY: "OrderedDict[tuple, List[dict]]" = OrderedDict()
_MEMORY_MAX = 128


def clear_memory_cache() -> None:
    """Drop the in-process LRU layer (the disk cache is untouched)."""
    _MEMORY.clear()


def cache_dir(*, create: bool = False) -> Optional[Path]:
    """The cache directory, or ``None`` when caching is disabled.

    With ``create=False`` (the read path) the directory is returned without
    touching the filesystem, so a read-only location degrades to a miss
    downstream instead of crashing on ``mkdir``. ``create=True`` (the write
    path) attempts creation and returns ``None`` when it fails.
    """
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".repro_cache"
    if create:
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
    return path


def cache_key(target: np.ndarray, settings: dict) -> str:
    """Stable key for a (target unitary, synthesis settings) pair."""
    digest = hashlib.sha256()
    rounded = np.round(np.asarray(target, dtype=np.complex128), 10)
    # Rounding can produce -0.0 (e.g. from -1e-15), whose byte pattern
    # differs from +0.0 even though the values compare equal; adding
    # complex zero normalises both signed-zero components.
    rounded = rounded + (0.0 + 0.0j)
    digest.update(rounded.tobytes())
    digest.update(json.dumps(settings, sort_keys=True, default=str).encode())
    return digest.hexdigest()[:32]


def _memory_get(memory_key: tuple) -> Optional[List[dict]]:
    if memory_key not in _MEMORY:
        return None
    _MEMORY.move_to_end(memory_key)
    return copy.deepcopy(_MEMORY[memory_key])


def _memory_put(memory_key: tuple, records: List[dict]) -> None:
    _MEMORY[memory_key] = copy.deepcopy(records)
    _MEMORY.move_to_end(memory_key)
    while len(_MEMORY) > _MEMORY_MAX:
        _MEMORY.popitem(last=False)


def load_records(key: str) -> Optional[List[dict]]:
    """Fetch cached synthesis records, or ``None`` on miss.

    Any filesystem problem (missing/unreadable directory or file, partial
    JSON) is a miss, never an exception — the cache is best-effort.
    """
    directory = cache_dir()
    if directory is None:
        return None
    memory_key = (str(directory), key)
    hit = _memory_get(memory_key)
    if hit is not None:
        return hit
    payload = read_json(directory / f"{key}.json")
    if payload is None or "records" not in payload:
        return None
    records = payload["records"]
    _memory_put(memory_key, records)
    return records


def store_records(key: str, records: List[dict]) -> None:
    """Persist records atomically; silently a no-op when the cache is
    disabled or the directory cannot be written."""
    directory = cache_dir(create=True)
    if directory is None:
        return
    _memory_put((str(directory), key), records)
    atomic_write_json(directory / f"{key}.json", {"records": records})
