"""Disk cache for synthesis runs.

Synthesis is the expensive step (hundreds of numerical optimisations per
target), while everything downstream — noisy simulation, sweeps, hardware
emulation — is cheap. Caching synthesis results per (target, settings) key
lets every figure driver re-run instantly after the first pass.

The cache is plain JSON (structures + parameter vectors + distances), so it
is portable and inspectable. Set ``REPRO_CACHE_DIR`` to relocate it, or
``REPRO_NO_CACHE=1`` to disable.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional

import numpy as np

__all__ = ["cache_dir", "cache_key", "load_records", "store_records"]


def cache_dir() -> Optional[Path]:
    """The cache directory, or ``None`` when caching is disabled."""
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".repro_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cache_key(target: np.ndarray, settings: dict) -> str:
    """Stable key for a (target unitary, synthesis settings) pair."""
    digest = hashlib.sha256()
    digest.update(np.round(np.asarray(target, dtype=np.complex128), 10).tobytes())
    digest.update(json.dumps(settings, sort_keys=True, default=str).encode())
    return digest.hexdigest()[:32]


def load_records(key: str) -> Optional[List[dict]]:
    """Fetch cached synthesis records, or ``None`` on miss."""
    directory = cache_dir()
    if directory is None:
        return None
    path = directory / f"{key}.json"
    if not path.exists():
        return None
    try:
        with path.open() as fh:
            return json.load(fh)["records"]
    except (json.JSONDecodeError, KeyError, OSError):
        return None


def store_records(key: str, records: List[dict]) -> None:
    directory = cache_dir()
    if directory is None:
        return
    path = directory / f"{key}.json"
    tmp = path.with_suffix(".tmp")
    with tmp.open("w") as fh:
        json.dump({"records": records}, fh)
    tmp.replace(path)
