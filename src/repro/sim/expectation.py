"""Observable estimation from basis-state distributions.

The TFIM experiments reduce every run to a single number — the average
magnetization ``(1/n) * sum_i <Z_i>`` — computed here directly from a
probability vector so it works identically for statevector, density-matrix
and sampled (hardware) results.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "z_expectation",
    "average_magnetization",
    "pauli_z_signs",
    "parity_expectation",
]


def pauli_z_signs(num_qubits: int, qubit: int) -> np.ndarray:
    """The ``(+1, -1)`` eigenvalue of ``Z_qubit`` for each basis index."""
    return 1.0 - 2.0 * ((np.arange(2**num_qubits) >> qubit) & 1)


def z_expectation(probabilities: np.ndarray, qubit: int) -> float:
    """``<Z_qubit>`` under a basis-state distribution."""
    probs = np.asarray(probabilities, dtype=np.float64)
    n = int(round(np.log2(probs.size)))
    if 2**n != probs.size:
        raise ValueError("distribution size is not a power of two")
    if not 0 <= qubit < n:
        raise ValueError(f"qubit {qubit} out of range")
    return float(np.dot(probs, pauli_z_signs(n, qubit)))


def average_magnetization(probabilities: np.ndarray) -> float:
    """The TFIM observable: mean single-site ``<Z>`` over all qubits.

    Vectorised as ``sum_s p[s] * (n - 2 * popcount(s)) / n``.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    n = int(round(np.log2(probs.size)))
    if 2**n != probs.size:
        raise ValueError("distribution size is not a power of two")
    indices = np.arange(probs.size)
    popcounts = np.zeros(probs.size, dtype=np.int64)
    for q in range(n):
        popcounts += (indices >> q) & 1
    signs = (n - 2 * popcounts) / n
    return float(np.dot(probs, signs))


def parity_expectation(probabilities: np.ndarray, qubits: Sequence[int]) -> float:
    """``<Z_{q1} Z_{q2} ...>`` — the multi-qubit parity observable."""
    probs = np.asarray(probabilities, dtype=np.float64)
    n = int(round(np.log2(probs.size)))
    indices = np.arange(probs.size)
    parity = np.zeros(probs.size, dtype=np.int64)
    for q in qubits:
        if not 0 <= q < n:
            raise ValueError(f"qubit {q} out of range")
        parity ^= (indices >> q) & 1
    return float(np.dot(probs, 1.0 - 2.0 * parity))
