"""Tableau-based stabilizer (Clifford) simulation.

An Aaronson-Gottesman CHP simulator: Clifford circuits (H, S, CX and
friends) over hundreds of qubits in polynomial time, versus the
exponential statevector. Used for

* fast validation of Clifford sub-circuits at widths the dense simulators
  cannot touch,
* cross-validation of the dense engines on Clifford circuits (the test
  suite compares all three),
* Clifford-sequence generation for randomized benchmarking.

The tableau holds ``2n`` generators (destabilizers then stabilizers) as
X/Z bit matrices plus a sign vector; measurement follows the standard CHP
update.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit

__all__ = ["StabilizerState", "StabilizerSimulator", "CLIFFORD_GATES"]

#: Gate names the stabilizer engine accepts.
CLIFFORD_GATES = frozenset(
    {"i", "id", "x", "y", "z", "h", "s", "sdg", "sx", "cx", "cz", "swap",
     "barrier", "delay"}
)


class StabilizerState:
    """A pure stabilizer state on ``n`` qubits (CHP tableau)."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        n = num_qubits
        self.num_qubits = n
        # Rows 0..n-1: destabilizers; rows n..2n-1: stabilizers.
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=bool)  # sign bits
        for i in range(n):
            self.x[i, i] = True       # destabilizer X_i
            self.z[n + i, i] = True   # stabilizer Z_i

    # ------------------------------------------------------------------
    # Gate updates (standard CHP rules)
    # ------------------------------------------------------------------
    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, q: int) -> None:
        self.s(q)
        self.z_gate(q)

    def x_gate(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def y_gate(self, q: int) -> None:
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def sx(self, q: int) -> None:
        # sx = h s h up to global phase
        self.h(q)
        self.s(q)
        self.h(q)

    def cx(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ True)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        self.cx(a, b)
        self.cx(b, a)
        self.cx(a, b)

    # ------------------------------------------------------------------
    # Pauli row algebra
    # ------------------------------------------------------------------
    def _row_product_phase(self, h: int, i: int) -> int:
        """Exponent of i (mod 4) when multiplying row h by row i."""
        phase = 0
        for q in range(self.num_qubits):
            x1, z1 = self.x[i, q], self.z[i, q]
            x2, z2 = self.x[h, q], self.z[h, q]
            if x1 and z1:  # Y
                phase += int(z2) - int(x2)
            elif x1:  # X
                phase += int(z2) * (2 * int(x2) - 1)
            elif z1:  # Z
                phase += int(x2) * (1 - 2 * int(z2))
        return phase % 4

    def _rowsum(self, h: int, i: int) -> None:
        """Row h <- row i * row h (Pauli product), tracking signs."""
        phase = 2 * (int(self.r[h]) + int(self.r[i])) + self._row_product_phase(h, i)
        self.r[h] = (phase % 4) == 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Measure qubit ``q`` in the Z basis (collapsing the state)."""
        n = self.num_qubits
        anticommuting = [
            p for p in range(n, 2 * n) if self.x[p, q]
        ]
        if anticommuting:
            # Random outcome.
            p = anticommuting[0]
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            outcome = int(rng.integers(2))
            self.r[p] = bool(outcome)
            return outcome
        # Deterministic outcome: accumulate into scratch row via rowsum.
        # Use an extra virtual row implemented with temporary arrays.
        scratch_x = np.zeros(n, dtype=bool)
        scratch_z = np.zeros(n, dtype=bool)
        scratch_r = 0  # phase exponent mod 4
        for i in range(n):
            if self.x[i, q]:
                stab = n + i
                # phase of product scratch * stabilizer
                phase = 0
                for k in range(n):
                    x1, z1 = self.x[stab, k], self.z[stab, k]
                    x2, z2 = scratch_x[k], scratch_z[k]
                    if x1 and z1:
                        phase += int(z2) - int(x2)
                    elif x1:
                        phase += int(z2) * (2 * int(x2) - 1)
                    elif z1:
                        phase += int(x2) * (1 - 2 * int(z2))
                scratch_r = (scratch_r + 2 * int(self.r[stab]) + phase) % 4
                scratch_x ^= self.x[stab]
                scratch_z ^= self.z[stab]
        return 1 if scratch_r == 2 else 0

    def expectation_z(self, q: int) -> float:
        """``<Z_q>`` without collapsing (+1, -1 or 0 for random)."""
        n = self.num_qubits
        if any(self.x[p, q] for p in range(n, 2 * n)):
            return 0.0
        clone = self.copy()
        outcome = clone.measure(q, np.random.default_rng(0))
        return 1.0 - 2.0 * outcome

    def copy(self) -> "StabilizerState":
        out = StabilizerState(self.num_qubits)
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out


class StabilizerSimulator:
    """Clifford-circuit execution on the tableau representation."""

    def __init__(self, seed: Union[int, np.random.Generator, None] = None) -> None:
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    def run(self, circuit: QuantumCircuit) -> StabilizerState:
        state = StabilizerState(circuit.num_qubits)
        for gate in circuit:
            name = gate.name
            if name in ("barrier", "delay", "id", "i"):
                continue
            if name == "measure":
                continue
            if name not in CLIFFORD_GATES:
                raise ValueError(
                    f"gate {name!r} is not Clifford; use a dense simulator"
                )
            if name == "h":
                state.h(gate.qubits[0])
            elif name == "s":
                state.s(gate.qubits[0])
            elif name == "sdg":
                state.sdg(gate.qubits[0])
            elif name == "x":
                state.x_gate(gate.qubits[0])
            elif name == "y":
                state.y_gate(gate.qubits[0])
            elif name == "z":
                state.z_gate(gate.qubits[0])
            elif name == "sx":
                state.sx(gate.qubits[0])
            elif name == "cx":
                state.cx(*gate.qubits)
            elif name == "cz":
                state.cz(*gate.qubits)
            elif name == "swap":
                state.swap(*gate.qubits)
        return state

    def sample(self, circuit: QuantumCircuit, shots: int = 1024) -> Dict[str, int]:
        """Measure all qubits ``shots`` times (re-running the tableau)."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        base = self.run(circuit)
        counts: Dict[str, int] = {}
        n = circuit.num_qubits
        for _ in range(shots):
            state = base.copy()
            bits = [str(state.measure(q, self._rng)) for q in range(n)]
            key = "".join(reversed(bits))  # MSB-first
            counts[key] = counts.get(key, 0) + 1
        return counts
