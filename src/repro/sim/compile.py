"""Circuit compilation for the dense simulators.

``DensityMatrixSimulator.run`` re-walks the Python gate list and re-resolves
every gate matrix and noise channel for each ``(circuit, noise model)``
pair.  Pool/sweep workloads (paper Figs. 2–11) execute the *same* circuits
under many noise models, so that per-pair work is almost entirely
redundant.  This module factors it out:

* :func:`compile_circuit` walks a :class:`~repro.circuits.circuit.QuantumCircuit`
  exactly once and records ``(gate, matrix)`` pairs — the matrices come from
  the memoized builders in :mod:`repro.circuits.gates`, so compiling a pool
  of structurally similar circuits shares the underlying arrays.
* :meth:`CompiledCircuit.bind` specialises the compiled gate list to one
  noise model, producing a flat op-list of ``("u", matrix, qubits)`` /
  ``("c", channel, qubits)`` records.  With ``fuse=True`` adjacent
  single-qubit gates on the same wire are folded into one 2x2 matrix; a
  wire's pending product is flushed the moment any multi-qubit gate or
  noise channel touches that wire, so the fused op stream is semantically
  identical to the serial gate-by-gate walk (same operator ordering, up to
  float reassociation — final distributions agree to <= 1e-12).

The bound op-list is what :mod:`repro.sim.batched` turns into a
superoperator program and what :func:`parallel_map` workers receive instead
of raw circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..linalg.unitary import apply_matrix_to_state
from ..noise.channels import KrausChannel
from ..noise.model import NoiseModel

__all__ = [
    "CompiledGate",
    "CompiledCircuit",
    "BoundCircuit",
    "compile_circuit",
    "channel_signature",
]

#: Gate names that contribute no operator to dense propagation.
_SKIPPED = ("barrier", "measure")


@dataclass(frozen=True)
class CompiledGate:
    """One unitary gate with its resolved (memoized, read-only) matrix."""

    gate: Gate
    matrix: np.ndarray


class CompiledCircuit:
    """A circuit walked once: gates with pre-resolved matrices.

    Reusable across every noise model and sweep level — binding to a model
    (:meth:`bind`) touches only the noise lookup, never the matrices.
    Instances are picklable, so pool workers can receive compiled ops
    instead of raw circuits.
    """

    def __init__(
        self, num_qubits: int, ops: Tuple[CompiledGate, ...], name: str = "circuit"
    ) -> None:
        self.num_qubits = int(num_qubits)
        self.ops = ops
        self.name = name
        self._distinct: Optional[Tuple[Gate, ...]] = None

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def distinct_gates(self) -> Tuple[Gate, ...]:
        """One representative gate per noise-lookup key.

        A noise model resolves channels per ``(name, qubits)`` — plus the
        duration for ``delay`` — so two models attach identical channel
        *structure* to a circuit iff they agree on these representatives.
        Far fewer than the gate count, which makes per-model structure
        grouping cheap.
        """
        if self._distinct is None:
            seen = {}
            for record in self.ops:
                gate = record.gate
                key = (
                    gate.name,
                    gate.qubits,
                    gate.params if gate.name == "delay" else (),
                )
                if key not in seen:
                    seen[key] = gate
            self._distinct = tuple(seen.values())
        return self._distinct

    def bind(
        self, noise_model: Optional[NoiseModel], *, fuse: bool = True
    ) -> "BoundCircuit":
        """Specialise to one noise model as a flat op-list.

        Returns a :class:`BoundCircuit` whose ``ops`` are
        ``("u", matrix, qubits)`` unitaries interleaved with
        ``("c", channel, qubits)`` Kraus channels, in exact serial order.
        With ``fuse=True`` runs of single-qubit gates on one wire collapse
        into a single 2x2 matrix (flushed before anything else touches the
        wire, so channel interleaving is preserved).
        """
        ops: List[Tuple[str, object, Tuple[int, ...]]] = []
        provenance: List[Optional[Tuple[int, int]]] = []
        signature: List[Tuple[Tuple[int, ...], ...]] = []
        pending: Dict[int, np.ndarray] = {}

        def flush(wires) -> None:
            for wire in sorted(wires):
                matrix = pending.pop(wire, None)
                if matrix is not None:
                    ops.append(("u", matrix, (wire,)))
                    provenance.append(None)

        for gate_index, record in enumerate(self.ops):
            gate = record.gate
            channels = (
                noise_model.operations_for(gate) if noise_model is not None else []
            )
            signature.append(tuple(q for _, q in channels))
            qubits = gate.qubits
            if fuse and len(qubits) == 1:
                wire = qubits[0]
                prev = pending.get(wire)
                pending[wire] = record.matrix if prev is None else record.matrix @ prev
                if not channels:
                    continue
                # The gate's own channels fire right after it: materialise
                # the accumulated product before emitting them.
                flush((wire,))
            else:
                flush(set(qubits))
                ops.append(("u", record.matrix, qubits))
                provenance.append(None)
            for offset, (channel, channel_qubits) in enumerate(channels):
                flush(set(channel_qubits) - set(qubits))
                ops.append(("c", channel, tuple(channel_qubits)))
                provenance.append((gate_index, offset))
        flush(sorted(pending))
        return BoundCircuit(
            self.num_qubits,
            tuple(ops),
            name=self.name,
            signature=tuple(signature),
            provenance=tuple(provenance),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompiledCircuit({self.name!r}, {self.num_qubits}q, {len(self.ops)} gates)"


class BoundCircuit:
    """A compiled circuit specialised to one noise model.

    ``signature`` is the per-gate tuple of channel qubit-tuples the model
    attached (see :func:`channel_signature`) — equal signatures mean
    structurally identical op-lists, the precondition for batching.
    ``provenance`` parallels ``ops``: ``None`` for unitaries,
    ``(gate_index, channel_offset)`` for channels, letting the batched
    engine look up the *same site* in another (structurally equal) model
    without re-binding.
    """

    def __init__(
        self,
        num_qubits: int,
        ops: Tuple[Tuple[str, object, Tuple[int, ...]], ...],
        name: str = "circuit",
        signature: Tuple[Tuple[Tuple[int, ...], ...], ...] = (),
        provenance: Tuple[Optional[Tuple[int, int]], ...] = (),
    ) -> None:
        self.num_qubits = int(num_qubits)
        self.ops = ops
        self.name = name
        self.signature = signature
        self.provenance = provenance

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Propagate one density matrix through the bound op-list.

        The single-state reference for the batched engine (and a compiled
        fast path in its own right: matrices and channels are resolved
        ahead of time).
        """
        n = self.num_qubits
        for kind, payload, qubits in self.ops:
            if kind == "u":
                rho = apply_matrix_to_state(payload, rho, qubits, n)
                rho = apply_matrix_to_state(
                    payload, rho.conj().T, qubits, n
                ).conj().T
            else:
                assert isinstance(payload, KrausChannel)
                rho = payload.apply(rho, qubits, n)
        return rho

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BoundCircuit({self.name!r}, {self.num_qubits}q, {len(self.ops)} ops)"


def compile_circuit(circuit: QuantumCircuit) -> CompiledCircuit:
    """Walk ``circuit`` once and resolve every gate matrix.

    ``barrier``/``measure`` markers are dropped (they contribute no
    operator); everything else must have a bound unitary, exactly like the
    serial :class:`~repro.sim.density_matrix.DensityMatrixSimulator`.
    """
    ops = tuple(
        CompiledGate(gate, gate.matrix())
        for gate in circuit
        if gate.name not in _SKIPPED
    )
    return CompiledCircuit(circuit.num_qubits, ops, name=circuit.name)


def channel_signature(
    compiled: CompiledCircuit, noise_model: Optional[NoiseModel]
) -> Tuple[Tuple[Tuple[int, ...], ...], ...]:
    """The noise *structure* a model induces on a compiled circuit.

    Per gate, the tuple of channel qubit-tuples the model attaches.  Two
    models with equal signatures bind to structurally identical op-lists
    (same kinds, same sites, same qubits — only channel *contents* may
    differ), which is the precondition for stacking them into one batched
    propagation.  Sweep level 0.0 genuinely differs here: ``GateError``
    emits no depolarizing channel at ``p = 0``.
    """
    if noise_model is None:
        return tuple(() for _ in compiled.ops)
    return tuple(
        tuple(qubits for _, qubits in noise_model.operations_for(record.gate))
        for record in compiled.ops
    )
