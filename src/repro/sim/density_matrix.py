"""Exact noisy simulation via density matrices.

For the paper's 3–5 qubit circuits an exact density-matrix simulation is
cheap (at most 32x32 matrices) and — unlike shot-based simulation — has no
sampling error, which makes figure shapes deterministic. This simulator is
the reproduction's stand-in for Qiskit Aer with a device noise model.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..linalg.unitary import apply_matrix_to_state
from ..noise.channels import apply_readout_errors
from ..noise.model import NoiseModel
from .statevector import Statevector

__all__ = [
    "DensityMatrix",
    "DensityMatrixSimulator",
    "TraceDriftWarning",
    "check_trace",
]


class TraceDriftWarning(RuntimeWarning):
    """The trace of a density matrix drifted away from 1 before readout.

    All channels in ``repro.noise`` are trace preserving, so a drift beyond
    float roundoff means a channel's Kraus operators are mis-normalized (or a
    caller handed in an unnormalized state).  ``probabilities`` used to mask
    this by silently renormalizing; it now renormalizes *and* reports.
    """


def check_trace(
    total: float,
    *,
    strict: bool = False,
    atol: float = 1e-8,
    context: str = "density matrix",
) -> None:
    """Warn (or raise when ``strict``) if ``total`` drifted from 1 by > ``atol``."""
    drift = abs(total - 1.0)
    if drift <= atol:
        return
    message = (
        f"{context} trace drifted to {total!r} (|drift| = {drift:.3e} > "
        f"atol = {atol:.1e}); distribution will be renormalized. This "
        "usually indicates a non-trace-preserving channel."
    )
    if strict:
        raise ValueError(message)
    warnings.warn(message, TraceDriftWarning, stacklevel=3)


class DensityMatrix:
    """An ``n``-qubit mixed state."""

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.complex128)
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise ValueError("density matrix must be square")
        n = int(round(np.log2(data.shape[0])))
        if 2**n != data.shape[0]:
            raise ValueError("dimension is not a power of two")
        self.data = data
        self.num_qubits = n

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        dim = 2**num_qubits
        rho = np.zeros((dim, dim), dtype=np.complex128)
        rho[0, 0] = 1.0
        return cls(rho)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        v = state.data
        return cls(np.outer(v, v.conj()))

    def probabilities(
        self,
        *,
        strict: bool = False,
        atol: float = 1e-8,
    ) -> np.ndarray:
        """Measurement distribution over computational basis states.

        Negative diagonal entries from float roundoff are clamped to zero and
        the result renormalized, but a trace drift beyond ``atol`` triggers a
        :class:`TraceDriftWarning` (or ``ValueError`` when ``strict``) instead
        of being masked.
        """
        probs = np.real(np.diagonal(self.data)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        check_trace(float(total), strict=strict, atol=atol)
        if total > 0:
            probs /= total
        return probs

    def expectation_z(self, qubit: int) -> float:
        probs = np.real(np.diagonal(self.data))
        signs = 1.0 - 2.0 * ((np.arange(probs.size) >> qubit) & 1)
        return float(np.dot(probs, signs))

    def purity(self) -> float:
        return float(np.real(np.trace(self.data @ self.data)))

    def trace(self) -> float:
        return float(np.real(np.trace(self.data)))

    def fidelity_with_pure(self, state: Statevector) -> float:
        """``<psi| rho |psi>`` against a pure reference state."""
        v = state.data
        return float(np.real(v.conj() @ self.data @ v))

    def is_positive_semidefinite(self, atol: float = 1e-9) -> bool:
        eigs = np.linalg.eigvalsh((self.data + self.data.conj().T) / 2.0)
        return bool(eigs.min() > -atol)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DensityMatrix({self.num_qubits} qubits, purity={self.purity():.4f})"


class DensityMatrixSimulator:
    """Noisy circuit execution: ideal gates interleaved with Kraus errors.

    Parameters
    ----------
    noise_model:
        Errors to apply after each gate; ``None`` gives ideal evolution
        (useful for cross-validating against the statevector simulator).
    """

    def __init__(self, noise_model: Optional[NoiseModel] = None) -> None:
        self.noise_model = noise_model

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[DensityMatrix] = None,
    ) -> DensityMatrix:
        n = circuit.num_qubits
        if initial_state is None:
            rho = DensityMatrix.zero_state(n).data
        else:
            if initial_state.num_qubits != n:
                raise ValueError("initial state width mismatch")
            rho = initial_state.data.copy()

        for gate in circuit:
            if gate.name == "barrier" or gate.name == "measure":
                continue
            matrix = gate.matrix()
            # rho -> U rho U^dagger, as two contractions.
            rho = apply_matrix_to_state(matrix, rho, gate.qubits, n)
            rho = apply_matrix_to_state(
                matrix, rho.conj().T, gate.qubits, n
            ).conj().T
            if self.noise_model is not None:
                for channel, qubits in self.noise_model.operations_for(gate):
                    rho = channel.apply(rho, qubits, n)
        return DensityMatrix(rho)

    def probabilities(
        self,
        circuit: QuantumCircuit,
        *,
        with_readout_error: bool = True,
    ) -> np.ndarray:
        """Final measurement distribution, including readout confusion."""
        rho = self.run(circuit)
        probs = rho.probabilities()
        if (
            with_readout_error
            and self.noise_model is not None
            and self.noise_model.has_readout_error
        ):
            probs = apply_readout_errors(
                probs, self.noise_model.readout_errors(circuit.num_qubits)
            )
        return probs
