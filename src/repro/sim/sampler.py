"""Shot sampling from measurement distributions.

Converts exact distributions into finite-shot counts the way hardware
returns them; the :class:`~repro.hardware.backend.FakeHardware` backend uses
this so hardware-style experiments include shot noise.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

__all__ = ["sample_counts", "counts_to_probabilities", "Counts"]

Counts = Dict[str, int]


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    *,
    num_qubits: Optional[int] = None,
    seed: Union[int, np.random.Generator, None] = None,
) -> Counts:
    """Draw ``shots`` samples, returning ``{bitstring: count}``.

    Bitstrings are MSB-first (qubit ``n-1`` leftmost), matching Qiskit's
    counts dictionaries. Uses a single multinomial draw — O(dim), not
    O(shots).
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if num_qubits is None:
        num_qubits = int(round(np.log2(probs.size)))
    if 2**num_qubits != probs.size:
        raise ValueError("distribution size is not a power of two")
    if shots <= 0:
        raise ValueError("shots must be positive")
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("distribution has no mass")
    probs = probs / total
    # Division can leave the renormalised vector a ULP over 1; NumPy's
    # multinomial rejects any vector whose head (``pvals[:-1]``) sums past
    # 1.0 exactly. Shave the residual off the largest head entry (a few
    # iterations at most — the re-sum can round up once more) and give the
    # last bin the exact remainder.
    for _ in range(4):
        head = probs[:-1].sum()
        if head <= 1.0:
            break
        probs[np.argmax(probs[:-1])] -= head - 1.0
        np.clip(probs, 0.0, None, out=probs)
    probs[-1] = max(0.0, 1.0 - probs[:-1].sum())
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    draws = rng.multinomial(shots, probs)
    out: Counts = {}
    for index in np.nonzero(draws)[0]:
        out[format(index, f"0{num_qubits}b")] = int(draws[index])
    return out


def counts_to_probabilities(counts: Counts, num_qubits: Optional[int] = None) -> np.ndarray:
    """Empirical distribution from a counts dictionary."""
    if not counts:
        raise ValueError("empty counts")
    if num_qubits is None:
        num_qubits = len(next(iter(counts)))
    probs = np.zeros(2**num_qubits, dtype=np.float64)
    total = 0
    for bitstring, count in counts.items():
        if len(bitstring) != num_qubits:
            raise ValueError(f"inconsistent bitstring width {bitstring!r}")
        probs[int(bitstring, 2)] += count
        total += count
    return probs / total
