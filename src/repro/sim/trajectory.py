"""Monte-Carlo quantum-trajectory simulation.

An independent noisy-execution engine: instead of evolving the full
density matrix, each shot evolves a pure state and samples one Kraus
operator per noise operation with probability ``||K_i |psi>||^2``.
Averaged over shots this unravels exactly the same channel the
density-matrix simulator applies — the test suite cross-validates the two —
while scaling to more qubits (memory ``2^n`` instead of ``4^n``).

This is how shot-based simulators (Qiskit Aer's statevector method with
noise) actually execute, so it doubles as a more faithful model of the
per-shot behaviour of hardware runs.

Execution model
---------------
Shots are evolved **batched**: the state is a ``(2**n, shots)`` array and
every gate / Kraus-branch selection is applied to all shots in one NumPy
call, so a 1024-shot run is NumPy-bound instead of Python-loop-bound. The
legacy per-shot path (``method="per_shot"``) runs the same kernel one shot
at a time and exists as the reference for both correctness tests and the
throughput benchmark.

Randomness is **per shot**: each shot gets its own child generator spawned
from a root :class:`numpy.random.SeedSequence`, and draws exactly one
uniform per noise operation plus one for its measurement outcome via
inverse-CDF sampling over cumulative Kraus weights. Consequences:

* batched and per-shot execution produce *identical* counts for the same
  seed (they consume the same per-shot streams through the same kernel),
* sharding is reproducible: ``run(c, 512)`` twice merges to exactly
  ``run(c, 1024)`` of a freshly-seeded simulator, because shot ``i`` of
  the second call continues the spawn numbering at 512.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..linalg.unitary import apply_matrix_to_state
from ..noise.channels import ReadoutError
from ..noise.model import NoiseModel
from .sampler import Counts

__all__ = ["TrajectorySimulator"]

_METHODS = ("batched", "per_shot")


class TrajectorySimulator:
    """Shot-by-shot noisy simulation via Kraus unravelling.

    Parameters
    ----------
    noise_model:
        Same noise models the density-matrix simulator consumes.
    seed:
        Root entropy. An ``int`` / ``None`` seeds a
        :class:`numpy.random.SeedSequence` from which per-shot child
        generators are spawned; an existing :class:`numpy.random.Generator`
        is also accepted (a root sequence is derived from its stream).
    method:
        ``"batched"`` (default, vectorised over shots) or ``"per_shot"``
        (reference Python loop). Both produce identical counts for the
        same seed.
    """

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        *,
        seed: Union[int, np.random.Generator, None] = None,
        method: str = "batched",
    ) -> None:
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        self.noise_model = noise_model
        self.method = method
        if isinstance(seed, np.random.Generator):
            self._rng = seed
            # Derive a root sequence from the generator's stream so shot
            # spawning stays deterministic for a given generator state.
            self._root = np.random.SeedSequence(
                int(seed.integers(0, np.iinfo(np.int64).max))
            )
        else:
            self._root = np.random.SeedSequence(seed)
            self._rng = np.random.default_rng(self._root.spawn(1)[0])

    # ------------------------------------------------------------------
    # Legacy single-trajectory API (uses the simulator-level stream)
    # ------------------------------------------------------------------
    def _apply_channel(
        self, state: np.ndarray, kraus: np.ndarray, qubits, num_qubits: int
    ) -> np.ndarray:
        """Sample one Kraus branch and renormalise."""
        weights = np.empty(len(kraus))
        branches = []
        for i, k in enumerate(kraus):
            branch = apply_matrix_to_state(k, state, qubits, num_qubits)
            weights[i] = float(np.real(np.vdot(branch, branch)))
            branches.append(branch)
        total = weights.sum()
        if total <= 0:
            raise RuntimeError("trajectory lost all norm (non-CPTP channel?)")
        choice = self._rng.choice(len(kraus), p=weights / total)
        branch = branches[choice]
        return branch / np.sqrt(weights[choice])

    def run_single_shot(self, circuit: QuantumCircuit) -> np.ndarray:
        """One trajectory: returns the final pure state of this shot."""
        n = circuit.num_qubits
        state = np.zeros(2**n, dtype=np.complex128)
        state[0] = 1.0
        for gate in circuit:
            if gate.name in ("barrier", "measure"):
                continue
            state = apply_matrix_to_state(gate.matrix(), state, gate.qubits, n)
            if self.noise_model is not None:
                for channel, qubits in self.noise_model.operations_for(gate):
                    state = self._apply_channel(state, channel.kraus, qubits, n)
        return state

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def _compile(
        self, circuit: QuantumCircuit
    ) -> Tuple[List[Tuple[np.ndarray, Tuple[int, ...], list]], int]:
        """Flatten the circuit into (gate matrix, qubits, noise ops) steps.

        Also returns the number of random events one shot consumes: one
        uniform per noise operation plus one for the measurement.
        """
        steps = []
        events = 0
        for gate in circuit:
            if gate.name in ("barrier", "measure"):
                continue
            ops = (
                self.noise_model.operations_for(gate)
                if self.noise_model is not None
                else []
            )
            steps.append((gate.matrix(), gate.qubits, ops))
            events += len(ops)
        return steps, events + 1

    def _evolve_batch(
        self,
        steps: Sequence[Tuple[np.ndarray, Tuple[int, ...], list]],
        num_qubits: int,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """Evolve a ``(2**n, shots)`` batch, consuming one uniform row per
        noise operation. ``uniforms`` has shape ``(events, shots)``."""
        shots = uniforms.shape[1]
        state = np.zeros((2**num_qubits, shots), dtype=np.complex128)
        state[0] = 1.0
        event = 0
        for matrix, qubits, ops in steps:
            state = apply_matrix_to_state(matrix, state, qubits, num_qubits)
            for channel, op_qubits in ops:
                state = self._apply_channel_batch(
                    state, channel.kraus, op_qubits, num_qubits, uniforms[event]
                )
                event += 1
        return state

    @staticmethod
    def _apply_channel_batch(
        state: np.ndarray,
        kraus: np.ndarray,
        qubits: Sequence[int],
        num_qubits: int,
        u: np.ndarray,
    ) -> np.ndarray:
        """Per-shot Kraus branch selection via cumulative weights.

        ``state`` is ``(2**n, shots)``; ``u`` is one uniform per shot. Each
        shot picks branch ``i`` with probability ``w_i / sum_j w_j`` where
        ``w_i = ||K_i |psi_shot>||^2``, by inverse-CDF over the cumulative
        weights (no per-shot normalisation needed: the target is
        ``u * total``).
        """
        branches = np.stack(
            [
                apply_matrix_to_state(k, state, qubits, num_qubits)
                for k in kraus
            ]
        )  # (k, 2**n, shots)
        weights = np.einsum(
            "kds,kds->ks", branches.real, branches.real
        ) + np.einsum("kds,kds->ks", branches.imag, branches.imag)
        cumulative = np.cumsum(weights, axis=0)  # (k, shots)
        total = cumulative[-1]
        if np.any(total <= 0):
            raise RuntimeError("trajectory lost all norm (non-CPTP channel?)")
        choice = (cumulative <= u * total).sum(axis=0)
        np.clip(choice, 0, len(kraus) - 1, out=choice)
        shot_index = np.arange(state.shape[1])
        selected = branches[choice, :, shot_index].T  # (2**n, shots)
        norms = weights[choice, shot_index]
        return selected / np.sqrt(norms)

    @staticmethod
    def _apply_readout_batch(
        probs: np.ndarray, errors: Sequence[Optional[ReadoutError]]
    ) -> np.ndarray:
        """Per-qubit confusion matrices over a ``(2**n, shots)`` batch."""
        num_qubits = len(errors)
        shots = probs.shape[1]
        tensor = probs.reshape((2,) * num_qubits + (shots,))
        for q, err in enumerate(errors):
            if err is None:
                continue
            axis = num_qubits - 1 - q
            tensor = np.tensordot(err.matrix, tensor, axes=([1], [axis]))
            tensor = np.moveaxis(tensor, 0, axis)
        return np.ascontiguousarray(tensor).reshape(probs.shape)

    def _sample_batch(
        self,
        circuit: QuantumCircuit,
        sequences: Sequence[np.random.SeedSequence],
        with_readout_error: bool,
    ) -> np.ndarray:
        """Outcome index per shot, one child generator per shot."""
        n = circuit.num_qubits
        steps, events = self._compile(circuit)
        shots = len(sequences)
        uniforms = np.empty((events, shots))
        for s, seq in enumerate(sequences):
            uniforms[:, s] = np.random.default_rng(seq).random(events)
        state = self._evolve_batch(steps, n, uniforms)
        probs = state.real**2 + state.imag**2  # (2**n, shots)
        if (
            with_readout_error
            and self.noise_model is not None
            and self.noise_model.has_readout_error
        ):
            probs = self._apply_readout_batch(
                probs, self.noise_model.readout_errors(n)
            )
        cumulative = np.cumsum(probs, axis=0)
        outcome = (cumulative <= uniforms[-1] * cumulative[-1]).sum(axis=0)
        return np.clip(outcome, 0, 2**n - 1)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        *,
        with_readout_error: bool = True,
        method: Optional[str] = None,
    ) -> Counts:
        """Execute ``shots`` trajectories and sample one outcome from each."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        method = method or self.method
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        n = circuit.num_qubits
        sequences = self._root.spawn(shots)
        if method == "batched":
            # Bound the (n_kraus, 2**n, shots) workspace to ~128 MB; the
            # chunking is invisible to results because every shot owns its
            # random stream.
            chunk = max(1, (1 << 23) // 2**n)
            outcomes = np.concatenate(
                [
                    self._sample_batch(
                        circuit, sequences[lo : lo + chunk], with_readout_error
                    )
                    for lo in range(0, shots, chunk)
                ]
            )
        else:
            outcomes = np.empty(shots, dtype=np.int64)
            for s, seq in enumerate(sequences):
                outcomes[s] = self._sample_batch(
                    circuit, [seq], with_readout_error
                )[0]
        outcome_counts = np.bincount(outcomes, minlength=2**n)
        counts: Counts = {}
        for index in np.nonzero(outcome_counts)[0]:
            counts[format(index, f"0{n}b")] = int(outcome_counts[index])
        return counts

    def probabilities(
        self, circuit: QuantumCircuit, shots: int = 1024, **kwargs
    ) -> np.ndarray:
        """Empirical distribution over ``shots`` trajectories."""
        counts = self.run(circuit, shots, **kwargs)
        probs = np.zeros(2**circuit.num_qubits)
        for bits, count in counts.items():
            probs[int(bits, 2)] = count
        return probs / shots
