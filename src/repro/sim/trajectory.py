"""Monte-Carlo quantum-trajectory simulation.

An independent noisy-execution engine: instead of evolving the full
density matrix, each shot evolves a pure state and samples one Kraus
operator per noise operation with probability ``||K_i |psi>||^2``.
Averaged over shots this unravels exactly the same channel the
density-matrix simulator applies — the test suite cross-validates the two —
while scaling to more qubits (memory ``2^n`` instead of ``4^n``).

This is how shot-based simulators (Qiskit Aer's statevector method with
noise) actually execute, so it doubles as a more faithful model of the
per-shot behaviour of hardware runs.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..linalg.unitary import apply_matrix_to_state
from ..noise.channels import apply_readout_errors
from ..noise.model import NoiseModel
from .sampler import Counts, sample_counts

__all__ = ["TrajectorySimulator"]


class TrajectorySimulator:
    """Shot-by-shot noisy simulation via Kraus unravelling.

    Parameters
    ----------
    noise_model:
        Same noise models the density-matrix simulator consumes.
    seed:
        Seeds both Kraus sampling and measurement sampling.
    """

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        *,
        seed: Union[int, np.random.Generator, None] = None,
    ) -> None:
        self.noise_model = noise_model
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    # ------------------------------------------------------------------
    def _apply_channel(
        self, state: np.ndarray, kraus: np.ndarray, qubits, num_qubits: int
    ) -> np.ndarray:
        """Sample one Kraus branch and renormalise."""
        weights = np.empty(len(kraus))
        branches = []
        for i, k in enumerate(kraus):
            branch = apply_matrix_to_state(k, state, qubits, num_qubits)
            weights[i] = float(np.real(np.vdot(branch, branch)))
            branches.append(branch)
        total = weights.sum()
        if total <= 0:
            raise RuntimeError("trajectory lost all norm (non-CPTP channel?)")
        choice = self._rng.choice(len(kraus), p=weights / total)
        branch = branches[choice]
        return branch / np.sqrt(weights[choice])

    def run_single_shot(self, circuit: QuantumCircuit) -> np.ndarray:
        """One trajectory: returns the final pure state of this shot."""
        n = circuit.num_qubits
        state = np.zeros(2**n, dtype=np.complex128)
        state[0] = 1.0
        for gate in circuit:
            if gate.name in ("barrier", "measure"):
                continue
            state = apply_matrix_to_state(gate.matrix(), state, gate.qubits, n)
            if self.noise_model is not None:
                for channel, qubits in self.noise_model.operations_for(gate):
                    state = self._apply_channel(state, channel.kraus, qubits, n)
        return state

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        *,
        with_readout_error: bool = True,
    ) -> Counts:
        """Execute ``shots`` trajectories and sample one outcome from each."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        n = circuit.num_qubits
        outcome_counts = np.zeros(2**n, dtype=np.int64)
        readout = (
            self.noise_model.readout_errors(n)
            if (
                with_readout_error
                and self.noise_model is not None
                and self.noise_model.has_readout_error
            )
            else None
        )
        for _ in range(shots):
            state = self.run_single_shot(circuit)
            probs = np.abs(state) ** 2
            if readout is not None:
                probs = apply_readout_errors(probs, readout)
            probs = probs / probs.sum()
            outcome_counts[self._rng.choice(probs.size, p=probs)] += 1
        counts: Counts = {}
        for index in np.nonzero(outcome_counts)[0]:
            counts[format(index, f"0{n}b")] = int(outcome_counts[index])
        return counts

    def probabilities(
        self, circuit: QuantumCircuit, shots: int = 1024, **kwargs
    ) -> np.ndarray:
        """Empirical distribution over ``shots`` trajectories."""
        counts = self.run(circuit, shots, **kwargs)
        probs = np.zeros(2**circuit.num_qubits)
        for bits, count in counts.items():
            probs[int(bits, 2)] = count
        return probs / shots
