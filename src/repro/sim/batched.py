"""Batched density-matrix propagation over stacks of noise models.

The paper's sweep experiments (Figs. 8–11) re-simulate the *same* circuit
pool under several noise models that differ only in their CNOT error rate.
Serially that costs one full density-matrix propagation per
``(circuit, model)`` pair.  This engine instead:

1. compiles each circuit once (:mod:`repro.sim.compile`),
2. groups the noise models by :func:`~repro.sim.compile.channel_signature`
   — models that attach channels to the same sites bind to structurally
   identical op-lists and can share one propagation,
3. lowers each group's op-list to a *superoperator program*: every op
   becomes one ``(4**k, 4**k)`` matrix acting on the vectorised local
   block.  Unitaries become ``kron(U, conj(U))``; channel superoperators
   that are equal across the group stay **shared** ``(4**k, 4**k)``,
   per-model ones (the swept CNOT depolarizing) are **stacked** into
   ``(B, 4**k, 4**k)``.  Consecutive program steps on identical qubit
   tuples are pre-composed (``S2 @ S1``) — a CNOT and its depolarizing
   channel collapse into a single matmul,
4. propagates all ``B`` density matrices at once as a
   ``(B,) + (2,) * 2n`` tensor: one broadcast :func:`numpy.matmul` per
   program step covers the whole batch (``numpy`` broadcasts shared
   ``(d², d²)`` and stacked ``(B, d², d²)`` operators through the same
   code path).

Results match the serial :class:`~repro.sim.density_matrix.DensityMatrixSimulator`
to <= 1e-12 in the final probability distributions (identical math,
reassociated floating point), which keeps store keys and checkpointed
campaign artifacts valid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.channels import apply_readout_errors
from ..noise.model import NoiseModel
from ..parallel import parallel_map
from .compile import CompiledCircuit, compile_circuit
from .density_matrix import check_trace

__all__ = [
    "BatchedDensityMatrixSimulator",
    "simulate_compiled",
    "simulate_pool",
]


#: Unitary superoperators keyed by matrix bytes.  Gate matrices are
#: memoized module-level arrays (:mod:`repro.circuits.gates`) and fused
#: products repeat across the binds of a model stack, so the same small
#: matrices recur constantly — hashing their bytes is far cheaper than
#: re-running ``kron``.
_SUPEROP_CACHE: Dict[Tuple[bytes, int], np.ndarray] = {}
_SUPEROP_CACHE_MAX = 16384


def _unitary_superoperator(matrix: np.ndarray) -> np.ndarray:
    """``S = U (x) conj(U)`` — same vec convention as ``KrausChannel``."""
    key = (matrix.tobytes(), matrix.shape[0])
    cached = _SUPEROP_CACHE.get(key)
    if cached is None:
        if len(_SUPEROP_CACHE) >= _SUPEROP_CACHE_MAX:
            _SUPEROP_CACHE.clear()
        cached = np.kron(matrix, matrix.conj())
        cached.setflags(write=False)
        _SUPEROP_CACHE[key] = cached
    return cached


#: Shared-or-stacked superoperators per tuple of channel objects.  Noise
#: models cache their compiled channels per gate site, so the exact same
#: object tuple recurs for every circuit in a pool; the values pin the
#: channels, keeping the ``id``-based keys valid.
_CHANNEL_STACK_CACHE: Dict[
    Tuple[int, ...], Tuple[Tuple[object, ...], np.ndarray]
] = {}
_CHANNEL_STACK_CACHE_MAX = 16384


def _channel_stack(channels: Tuple) -> np.ndarray:
    """One operator for a channel site: shared ``(d², d²)`` when every
    model's superoperator agrees, stacked ``(B, d², d²)`` otherwise."""
    key = tuple(id(channel) for channel in channels)
    hit = _CHANNEL_STACK_CACHE.get(key)
    if hit is not None:
        return hit[1]
    supers = [channel.superoperator() for channel in channels]
    first = supers[0]
    if all(s is first or np.array_equal(s, first) for s in supers[1:]):
        operator = first
    else:
        operator = np.stack(supers)
    if len(_CHANNEL_STACK_CACHE) >= _CHANNEL_STACK_CACHE_MAX:
        _CHANNEL_STACK_CACHE.clear()
    _CHANNEL_STACK_CACHE[key] = (channels, operator)
    return operator


def _build_program(
    compiled: CompiledCircuit,
    reference,
    others: Sequence[Optional[NoiseModel]],
) -> List[Tuple[np.ndarray, Tuple[int, ...]]]:
    """Lower one structure-group to a superoperator program.

    ``reference`` is the bound circuit of the group's first model;
    ``others`` are the remaining models, whose channels are looked up by
    the reference's provenance records instead of re-binding each one.
    Returns ``(operator, qubits)`` steps where ``operator`` is either a
    shared ``(4**k, 4**k)`` superoperator or a stacked
    ``(B, 4**k, 4**k)`` one.  Consecutive steps on identical qubit tuples
    are composed eagerly.
    """
    # Per-model channel lists per gate, resolved lazily per gate index —
    # ``operations_for`` returns its cached list, so this is a dict hit.
    channel_lists: Dict[int, List] = {}

    def site_channels(site: int, payload) -> Tuple:
        gate_index, offset = reference.provenance[site]
        per_gate = channel_lists.get(gate_index)
        if per_gate is None:
            gate = compiled.ops[gate_index].gate
            per_gate = channel_lists[gate_index] = [
                model.operations_for(gate) for model in others
            ]
        return (payload,) + tuple(
            channels[offset][0] for channels in per_gate
        )

    steps: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
    for site, (kind, payload, qubits) in enumerate(reference.ops):
        if kind == "u":
            operator = _unitary_superoperator(payload)
        else:
            operator = _channel_stack(site_channels(site, payload))
        if steps and steps[-1][1] == qubits:
            previous, _ = steps[-1]
            # np.matmul broadcasts every shared/stacked combination.
            steps[-1] = (np.matmul(operator, previous), qubits)
        else:
            steps.append((operator, qubits))
    return steps


#: Transpose plans per ``(num_qubits, qubit-tuple)``: one tuple-arg
#: transpose is much cheaper than np.moveaxis's per-call normalisation.
_PLAN_CACHE: Dict[
    Tuple[int, Tuple[int, ...]], Tuple[Tuple[int, ...], Tuple[int, ...]]
] = {}


def _propagate(
    steps: Sequence[Tuple[np.ndarray, Tuple[int, ...]]],
    num_qubits: int,
    batch: int,
) -> np.ndarray:
    """Run a superoperator program on ``batch`` copies of ``|0..0><0..0|``.

    The state is a ``(B,) + (2,) * 2n`` tensor (batch axis first, then row
    qubit axes, then column qubit axes, little-endian as everywhere else).
    Each step is one broadcast matmul over the whole batch.
    """
    n = num_qubits
    dim = 2**n
    tensor = np.zeros((batch,) + (2,) * (2 * n), dtype=np.complex128)
    tensor[(slice(None),) + (0,) * (2 * n)] = 1.0
    for operator, qubits in steps:
        k = len(qubits)
        plan = _PLAN_CACHE.get((n, qubits))
        if plan is None:
            # Batched twins of KrausChannel.apply's axis maps (shifted by
            # the leading batch axis); superoperator bit order high-first.
            row_axes = [1 + n - 1 - qubits[k - 1 - j] for j in range(k)]
            col_axes = [1 + 2 * n - 1 - qubits[k - 1 - j] for j in range(k)]
            front = [0] + row_axes + col_axes
            perm = tuple(
                front + [ax for ax in range(1 + 2 * n) if ax not in front]
            )
            inverse = tuple(int(i) for i in np.argsort(perm))
            plan = _PLAN_CACHE[(n, qubits)] = (perm, inverse)
        perm, inverse = plan
        flat = tensor.transpose(perm).reshape(batch, 4**k, -1)
        flat = np.matmul(operator, flat)
        tensor = flat.reshape((batch,) + (2,) * (2 * n)).transpose(inverse)
    return np.ascontiguousarray(tensor).reshape(batch, dim, dim)


def _distributions(
    rhos: np.ndarray,
    *,
    strict: bool = False,
    atol: float = 1e-8,
) -> np.ndarray:
    """Pre-readout measurement distributions from a stack of final states."""
    probs = np.real(np.diagonal(rhos, axis1=1, axis2=2)).copy()
    probs[probs < 0.0] = 0.0
    totals = probs.sum(axis=1)
    worst = totals[int(np.argmax(np.abs(totals - 1.0)))]
    check_trace(
        float(worst), strict=strict, atol=atol, context="batched density matrix"
    )
    positive = totals > 0.0
    probs[positive] /= totals[positive, None]
    return probs


def _apply_readout_batch(
    probs: np.ndarray,
    models: Sequence[Optional[NoiseModel]],
    num_qubits: int,
) -> np.ndarray:
    """Readout confusion over a batch of distributions.

    Sweep stacks share their readout errors (``with_cnot_depolarizing``
    copies never touch them), so the common case applies each per-qubit
    confusion matrix to the whole batch with one tensordot.
    """
    noisy = [
        model is not None and model.has_readout_error for model in models
    ]
    if not any(noisy):
        return probs
    error_lists = [
        model.readout_errors(num_qubits) if flagged else None
        for model, flagged in zip(models, noisy)
    ]
    first = next(errors for errors in error_lists if errors is not None)
    if all(noisy) and all(errors == first for errors in error_lists[1:]):
        tensor = probs.reshape((len(models),) + (2,) * num_qubits)
        for q, err in enumerate(first):
            if err is None:
                continue
            axis = 1 + num_qubits - 1 - q
            tensor = np.tensordot(err.matrix, tensor, axes=([1], [axis]))
            tensor = np.moveaxis(tensor, 0, axis)
        return np.ascontiguousarray(tensor).reshape(len(models), -1)
    for i, errors in enumerate(error_lists):
        if errors is not None:
            probs[i] = apply_readout_errors(probs[i], errors)
    return probs


def _group_key(
    compiled: CompiledCircuit, model: Optional[NoiseModel]
) -> tuple:
    """Grouping key equivalent to the full channel signature.

    A model resolves channel structure per distinct noise-lookup key, so
    probing only :attr:`CompiledCircuit.distinct_gates` yields the same
    partition as :func:`~repro.sim.compile.channel_signature` at a
    fraction of the walk.
    """
    if model is None:
        return (None,)
    return tuple(
        tuple(qubits for _, qubits in model.operations_for(gate))
        for gate in compiled.distinct_gates
    )


def simulate_compiled(
    compiled: CompiledCircuit,
    noise_models: Sequence[Optional[NoiseModel]],
    *,
    with_readout_error: bool = True,
    fuse: bool = True,
    strict: bool = False,
) -> np.ndarray:
    """Distributions of one compiled circuit under a stack of noise models.

    Models are partitioned by channel-structure signature (sweep level 0.0
    drops the CNOT depolarizing channel, so it propagates in its own
    group); each group runs as one batched pass and results are scattered
    back into input order.  Returns ``(len(noise_models), 2**n)``.
    """
    models = list(noise_models)
    if not models:
        raise ValueError("need at least one noise model (None = ideal)")
    n = compiled.num_qubits
    out = np.empty((len(models), 2**n), dtype=np.float64)
    groups: Dict[tuple, List[int]] = {}
    for index, model in enumerate(models):
        groups.setdefault(_group_key(compiled, model), []).append(index)
    for indices in groups.values():
        # One bind per group; sibling models share the structure and
        # contribute only their channel contents (via provenance lookup).
        reference = compiled.bind(models[indices[0]], fuse=fuse)
        others = [models[i] for i in indices[1:]]
        steps = _build_program(compiled, reference, others)
        rhos = _propagate(steps, n, len(indices))
        out[indices] = _distributions(rhos, strict=strict)
    if with_readout_error:
        # Applied once over the whole model stack (not per group) so the
        # common shared-readout case is a handful of batch tensordots.
        out = _apply_readout_batch(out, models, n)
    return out


def _pool_task(task) -> np.ndarray:
    """Worker payload: one compiled circuit against the full model stack."""
    compiled, models, with_readout_error, fuse, strict = task
    return simulate_compiled(
        compiled,
        models,
        with_readout_error=with_readout_error,
        fuse=fuse,
        strict=strict,
    )


def simulate_pool(
    circuits: Sequence[QuantumCircuit],
    noise_models: Sequence[Optional[NoiseModel]],
    *,
    with_readout_error: bool = True,
    fuse: bool = True,
    strict: bool = False,
    jobs: Optional[int] = None,
    chunksize: int = 4,
) -> List[np.ndarray]:
    """Simulate every circuit under every noise model, batched.

    The workhorse behind pool/sweep workloads: each circuit is compiled
    once, then propagated under the whole model stack in (at most a few)
    batched passes.  With ``jobs`` the circuits fan out over
    :func:`~repro.parallel.parallel_map` — workers receive *compiled*
    circuits, so the gate walk and matrix resolution never repeat per
    worker task.

    Returns one ``(len(noise_models), 2**n_c)`` array per circuit, in
    input order.  Distributions match the serial
    ``DensityMatrixSimulator(model).probabilities(circuit)`` path to
    <= 1e-12.
    """
    models = list(noise_models)
    tasks = [
        (compile_circuit(circuit), models, with_readout_error, fuse, strict)
        for circuit in circuits
    ]
    return parallel_map(_pool_task, tasks, jobs=jobs, chunksize=chunksize)


class BatchedDensityMatrixSimulator:
    """Drop-in companion to :class:`DensityMatrixSimulator` for model stacks.

    Holds a fixed stack of noise models; :meth:`probabilities` returns the
    distribution of a circuit under every model at once.
    """

    def __init__(
        self,
        noise_models: Sequence[Optional[NoiseModel]],
        *,
        fuse: bool = True,
    ) -> None:
        self.noise_models = list(noise_models)
        self.fuse = fuse

    def probabilities(
        self,
        circuit: QuantumCircuit,
        *,
        with_readout_error: bool = True,
        strict: bool = False,
    ) -> np.ndarray:
        """``(len(noise_models), 2**n)`` distributions for ``circuit``."""
        return simulate_compiled(
            compile_circuit(circuit),
            self.noise_models,
            with_readout_error=with_readout_error,
            fuse=self.fuse,
            strict=strict,
        )
