"""Simulators: ideal statevector, exact noisy density matrix, shot sampling."""

from .statevector import Statevector, StatevectorSimulator
from .density_matrix import (
    DensityMatrix,
    DensityMatrixSimulator,
    TraceDriftWarning,
    check_trace,
)
from .compile import CompiledCircuit, BoundCircuit, compile_circuit
from .batched import (
    BatchedDensityMatrixSimulator,
    simulate_compiled,
    simulate_pool,
)
from .trajectory import TrajectorySimulator
from .stabilizer import StabilizerSimulator, StabilizerState, CLIFFORD_GATES
from .sampler import sample_counts, counts_to_probabilities, Counts
from .expectation import (
    z_expectation,
    average_magnetization,
    pauli_z_signs,
    parity_expectation,
)

__all__ = [
    "Statevector",
    "StatevectorSimulator",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "TraceDriftWarning",
    "check_trace",
    "CompiledCircuit",
    "BoundCircuit",
    "compile_circuit",
    "BatchedDensityMatrixSimulator",
    "simulate_compiled",
    "simulate_pool",
    "TrajectorySimulator",
    "StabilizerSimulator",
    "StabilizerState",
    "CLIFFORD_GATES",
    "sample_counts",
    "counts_to_probabilities",
    "Counts",
    "z_expectation",
    "average_magnetization",
    "pauli_z_signs",
    "parity_expectation",
]
