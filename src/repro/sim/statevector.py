"""Ideal (noise-free) statevector simulation.

This provides the paper's "noise free reference" series: the circuit run on
perfect hardware. Gate application is a single tensor contraction per gate
(:func:`repro.linalg.unitary.apply_matrix_to_state`).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..linalg.unitary import apply_matrix_to_state

__all__ = ["StatevectorSimulator", "Statevector"]


class Statevector:
    """An ``n``-qubit pure state with measurement helpers."""

    def __init__(self, data: np.ndarray, num_qubits: Optional[int] = None) -> None:
        data = np.asarray(data, dtype=np.complex128).reshape(-1)
        n = int(round(np.log2(data.size)))
        if 2**n != data.size:
            raise ValueError(f"state size {data.size} is not a power of two")
        if num_qubits is not None and num_qubits != n:
            raise ValueError("num_qubits does not match state size")
        self.data = data
        self.num_qubits = n

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        data = np.zeros(2**num_qubits, dtype=np.complex128)
        data[0] = 1.0
        return cls(data)

    def probabilities(self) -> np.ndarray:
        """Born-rule probabilities over computational basis states."""
        return np.abs(self.data) ** 2

    def probability_of(self, bitstring: str) -> float:
        """Probability of one outcome; bitstring is MSB-first (qubit n-1 left)."""
        if len(bitstring) != self.num_qubits:
            raise ValueError("bitstring length mismatch")
        return float(self.probabilities()[int(bitstring, 2)])

    def expectation_z(self, qubit: int) -> float:
        """The expectation value ``<Z_qubit>``."""
        probs = self.probabilities()
        signs = 1.0 - 2.0 * ((np.arange(probs.size) >> qubit) & 1)
        return float(np.dot(probs, signs))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|^2``."""
        return float(np.abs(np.vdot(self.data, other.data)) ** 2)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Statevector({self.num_qubits} qubits)"


class StatevectorSimulator:
    """Exact pure-state circuit execution."""

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[Statevector] = None,
    ) -> Statevector:
        """Evolve ``initial_state`` (default ``|0...0>``) through the circuit.

        Measurements and barriers are skipped: the returned object is the
        pre-measurement state (measurement statistics come from
        :meth:`Statevector.probabilities`).
        """
        n = circuit.num_qubits
        if initial_state is None:
            state = Statevector.zero_state(n).data
        else:
            if initial_state.num_qubits != n:
                raise ValueError("initial state width mismatch")
            state = initial_state.data.copy()
        for gate in circuit:
            if not gate.is_unitary or gate.name == "barrier":
                continue
            state = apply_matrix_to_state(gate.matrix(), state, gate.qubits, n)
        return Statevector(state)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Shortcut: final measurement distribution of the circuit."""
        return self.run(circuit).probabilities()
