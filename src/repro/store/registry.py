"""The ``repro runs`` registry CLI: inspect and maintain a run store.

Subcommands (all operate on the store resolved from ``--store`` /
``REPRO_STORE``):

``list``
    One row per manifest: run id, experiment, scale, status, unit counts
    and wall time. Corrupt manifests are listed and flagged, not hidden.
``show <run_id>``
    The full manifest as JSON (provenance: config hash, seeds, devices,
    code version, artifact keys).
``diff <run_a> <run_b>``
    Field-by-field provenance diff plus a deep comparison of the two
    runs' artifact payloads. Exit 0 when the artifact data is identical.
``gc``
    Remove leftover ``*.tmp`` files and objects no manifest references.
    Refuses to collect while corrupt manifests exist (their references
    are unknown) unless ``--force`` is given, which also deletes the
    corrupt manifests themselves. ``--dry-run`` reports without deleting.
``retry <run_id>``
    Re-execute exactly a run's quarantined/degraded units (handled by
    :mod:`repro.cli`, which owns the experiment registry; listed here for
    discoverability).
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Tuple

from .core import ArtifactStore
from .manifest import RunManifest, list_runs, load_manifest, manifest_path

__all__ = ["runs_main", "diff_payloads"]


def _fmt_units(m: RunManifest) -> str:
    text = f"{m.units_computed}+{m.units_cached}c"
    if m.failed_units:
        text += f" !{len(m.failed_units)}"
    if m.degraded_units:
        text += f" ~{len(m.degraded_units)}"
    return text


def _cmd_list(store: ArtifactStore, out: Callable[[str], None]) -> int:
    manifests = list_runs(store)
    if not manifests:
        out(f"no runs in store {store.root}")
        return 0
    out(
        f"{'RUN_ID':<42} {'EXPERIMENT':<12} {'SCALE':<6} {'STATUS':<12} "
        f"{'UNITS':<8} {'WALL':>7}  CREATED"
    )
    for m in manifests:
        out(
            f"{m.run_id:<42} {m.experiment:<12} {m.scale:<6} {m.status:<12} "
            f"{_fmt_units(m):<8} {m.wall_time:>6.1f}s  {m.created_at}"
        )
    corrupt = [m for m in manifests if m.status == "corrupt"]
    if corrupt:
        out(
            f"warning: {len(corrupt)} corrupt manifest(s) "
            f"({', '.join(m.run_id for m in corrupt)}) — checkpointed units "
            "are still resumable; 'repro runs gc --force' removes the stubs"
        )
    partial = [m for m in manifests if m.failed_units or m.degraded_units]
    if partial:
        out(
            f"note: {len(partial)} run(s) with quarantined (!) or degraded "
            "(~) units; 'repro runs retry <run_id>' re-executes exactly "
            "those units"
        )
    return 0


def _cmd_show(
    store: ArtifactStore, run_id: str, out: Callable[[str], None]
) -> int:
    manifest = load_manifest(store, run_id)
    if manifest is None:
        out(f"error: no run {run_id!r} in store {store.root}")
        return 1
    out(json.dumps(manifest.to_json(), sort_keys=True, indent=2))
    return 1 if manifest.status == "corrupt" else 0


def diff_payloads(a, b, path: str = "") -> List[str]:
    """Paths at which two JSON payloads differ (leaf-level, sorted)."""
    if type(a) is not type(b):
        return [f"{path or '.'}: type {type(a).__name__} != {type(b).__name__}"]
    if isinstance(a, dict):
        diffs = []
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else key
            if key not in a:
                diffs.append(f"{sub}: only in second")
            elif key not in b:
                diffs.append(f"{sub}: only in first")
            else:
                diffs.extend(diff_payloads(a[key], b[key], sub))
        return diffs
    if isinstance(a, list):
        if len(a) != len(b):
            return [f"{path or '.'}: length {len(a)} != {len(b)}"]
        diffs = []
        for i, (va, vb) in enumerate(zip(a, b)):
            diffs.extend(diff_payloads(va, vb, f"{path}[{i}]"))
        return diffs
    if a != b:
        return [f"{path or '.'}: {a!r} != {b!r}"]
    return []


def _cmd_diff(
    store: ArtifactStore, id_a: str, id_b: str, out: Callable[[str], None]
) -> int:
    pair: List[Tuple[str, Optional[RunManifest]]] = [
        (rid, load_manifest(store, rid)) for rid in (id_a, id_b)
    ]
    missing = [rid for rid, m in pair if m is None]
    if missing:
        out(f"error: no such run(s): {', '.join(missing)}")
        return 1
    (_, a), (_, b) = pair
    assert a is not None and b is not None
    changed = False
    for field in ("experiment", "scale", "config_hash", "seeds", "devices",
                  "code_version", "status"):
        va, vb = getattr(a, field), getattr(b, field)
        if va != vb:
            changed = True
            out(f"{field}: {va!r} -> {vb!r}")
    ka, kb = set(a.unit_keys), set(b.unit_keys)
    if ka != kb:
        changed = True
        out(f"unit_keys: {len(ka - kb)} only in first, {len(kb - ka)} only in second")
    data_differs = False
    for name in sorted(set(a.artifacts) | set(b.artifacts)):
        key_a, key_b = a.artifacts.get(name), b.artifacts.get(name)
        if key_a is None or key_b is None:
            out(f"artifact {name}: present only in {'first' if key_a else 'second'}")
            data_differs = True
            continue
        pa = store.get_payload(key_a)
        pb = store.get_payload(key_b)
        if pa is None or pb is None:
            out(f"artifact {name}: object missing from store")
            data_differs = True
            continue
        diffs = diff_payloads(pa, pb)
        if diffs:
            data_differs = True
            out(f"artifact {name}: {len(diffs)} difference(s)")
            for line in diffs[:20]:
                out(f"  {line}")
            if len(diffs) > 20:
                out(f"  ... {len(diffs) - 20} more")
        else:
            out(f"artifact {name}: identical")
    if not changed and not data_differs:
        out("runs are identical (provenance and artifact data)")
    return 1 if data_differs else 0


def _cmd_gc(
    store: ArtifactStore,
    out: Callable[[str], None],
    *,
    dry_run: bool = False,
    force: bool = False,
) -> int:
    manifests = list_runs(store)
    corrupt = [m for m in manifests if m.status == "corrupt"]
    if corrupt and not force:
        out(
            f"error: {len(corrupt)} corrupt manifest(s) — their object "
            "references are unknown, refusing to collect (use --force to "
            "drop them and collect anyway)"
        )
        return 1
    referenced = set()
    for m in manifests:
        if m.status == "corrupt":
            continue
        referenced.update(m.unit_keys)
        referenced.update(m.artifacts.values())
    orphans = [k for k in store.object_keys() if k not in referenced]
    temps = store.temp_files()
    verb = "would remove" if dry_run else "removed"
    if not dry_run:
        for key in orphans:
            store.remove_object(key)
        for path in temps:
            try:
                path.unlink()
            except OSError:
                pass
        if force:
            for m in corrupt:
                try:
                    manifest_path(store, m.run_id).unlink()
                except OSError:
                    pass
    out(
        f"{verb} {len(orphans)} orphan object(s), {len(temps)} temp file(s)"
        + (f", {len(corrupt)} corrupt manifest(s)" if force and corrupt else "")
    )
    return 0


def runs_main(
    argv: List[str], store: ArtifactStore, out: Callable[[str], None] = print
) -> int:
    """Entry point for ``repro runs <action> [args]``; returns exit code."""
    if not argv:
        out("usage: repro runs {list|show <run_id>|diff <a> <b>|retry <run_id>|gc [--dry-run] [--force]}")
        return 2
    action, args = argv[0], argv[1:]
    if action == "list" and not args:
        return _cmd_list(store, out)
    if action == "show" and len(args) == 1:
        return _cmd_show(store, args[0], out)
    if action == "diff" and len(args) == 2:
        return _cmd_diff(store, args[0], args[1], out)
    if action == "gc" and all(a in ("--dry-run", "--force") for a in args):
        return _cmd_gc(
            store, out, dry_run="--dry-run" in args, force="--force" in args
        )
    out(f"error: unknown runs action {' '.join(argv)!r}")
    out("usage: repro runs {list|show <run_id>|diff <a> <b>|retry <run_id>|gc [--dry-run] [--force]}")
    return 2
