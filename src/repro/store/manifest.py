"""Run manifests: provenance records for every campaign run.

One JSON file per run under ``<store>/runs/``, recording what was run
(experiment, scale, config hash), with what inputs (seeds, devices), by
what code (package version + git commit), and how far it got (unit
counts, status, wall time, artifact references). Manifests are written
atomically and re-written as units complete, so a crash leaves at worst a
slightly stale — never torn — record.

Recovery contract: unit checkpoints are addressed by their *config*
digest in the object store, not by the manifest, so a corrupted or
deleted manifest loses provenance metadata only. Resuming with the same
store still skips every completed unit; :func:`load_manifest` surfaces
the corruption as a stub record with ``status="corrupt"`` instead of
raising, and the registry CLI flags it.
"""

from __future__ import annotations

import subprocess
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..utils.cache import atomic_write_json, read_json
from .core import ArtifactStore

__all__ = [
    "RunManifest",
    "code_version",
    "load_manifest",
    "save_manifest",
    "list_runs",
]

MANIFEST_SCHEMA = 2

#: Manifest lifecycle states ("corrupt" is synthesised at load time;
#: "partial" means completed with quarantined units — see ``failed_units``).
STATUSES = (
    "running",
    "complete",
    "partial",
    "interrupted",
    "failed",
    "corrupt",
)

#: Per-process cache for the git commit probe: manifests are re-written at
#: every unit checkpoint, and shelling out to ``git rev-parse`` (with its
#: 5 s timeout) per checkpoint stalls campaigns whenever subprocess spawns
#: are slow. ``False`` means "not probed yet" (``None`` is a valid result).
_GIT_COMMIT_CACHE: Union[Optional[str], bool] = False


def _reset_code_version_cache() -> None:
    """Forget the cached git probe (tests only)."""
    global _GIT_COMMIT_CACHE
    _GIT_COMMIT_CACHE = False


def _git_commit() -> Optional[str]:
    global _GIT_COMMIT_CACHE
    if _GIT_COMMIT_CACHE is not False:
        return _GIT_COMMIT_CACHE
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        _GIT_COMMIT_CACHE = None
        return None
    sha = out.stdout.strip()
    _GIT_COMMIT_CACHE = sha if out.returncode == 0 and sha else None
    return _GIT_COMMIT_CACHE


def code_version() -> Dict[str, Optional[str]]:
    """The code provenance stamped into every manifest.

    Returns a fresh dict per call (manifests mutate their copy), but the
    underlying git probe runs once per process.
    """
    from .. import __version__

    return {"package": __version__, "git": _git_commit()}


@dataclass
class RunManifest:
    """Everything needed to audit (and diff) one experiment run."""

    run_id: str
    experiment: str
    scale: str
    config_hash: str
    config: dict = field(default_factory=dict)
    seeds: Dict[str, List] = field(default_factory=dict)
    devices: List[str] = field(default_factory=list)
    code_version: Dict[str, Optional[str]] = field(default_factory=code_version)
    status: str = "running"
    created_at: str = ""
    wall_time: float = 0.0
    units_computed: int = 0
    units_cached: int = 0
    unit_keys: List[str] = field(default_factory=list)
    #: Quarantined units: unit key -> captured exception text. These units
    #: have no stored payload; ``repro runs retry`` re-executes only them.
    failed_units: Dict[str, str] = field(default_factory=dict)
    #: Units computed in a degraded execution mode (e.g. plain noise-model
    #: simulation instead of hardware emulation): key -> reason. Degraded
    #: payloads are never checkpointed, so a retry recomputes them.
    degraded_units: Dict[str, str] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    error: Optional[str] = None
    schema: int = MANIFEST_SCHEMA

    def __post_init__(self) -> None:
        if not self.created_at:
            self.created_at = datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            )

    @property
    def units_total(self) -> int:
        return self.units_computed + self.units_cached

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def corrupt_stub(cls, run_id: str, reason: str) -> "RunManifest":
        return cls(
            run_id=run_id,
            experiment="?",
            scale="?",
            config_hash="?",
            status="corrupt",
            error=reason,
        )


def manifest_path(store: ArtifactStore, run_id: str) -> Path:
    return store.runs_dir / f"{run_id}.json"


def save_manifest(store: ArtifactStore, manifest: RunManifest) -> bool:
    store.runs_dir.mkdir(parents=True, exist_ok=True)
    return atomic_write_json(
        manifest_path(store, manifest.run_id), manifest.to_json(), sort_keys=True
    )


def load_manifest(store: ArtifactStore, run_id: str) -> Optional[RunManifest]:
    """Load one manifest; a damaged file becomes a ``corrupt`` stub.

    Returns ``None`` only when no file exists at all.
    """
    path = manifest_path(store, run_id)
    if not path.exists():
        return None
    data = read_json(path)
    if data is None:
        return RunManifest.corrupt_stub(run_id, "unreadable or truncated JSON")
    try:
        return RunManifest.from_json(data)
    except (TypeError, ValueError) as exc:
        return RunManifest.corrupt_stub(run_id, f"bad manifest fields: {exc}")


def list_runs(store: ArtifactStore) -> List[RunManifest]:
    """All manifests in the store, oldest first, corrupt ones included."""
    manifests = []
    for path in store.manifest_paths():
        loaded = load_manifest(store, path.stem)
        if loaded is not None:
            manifests.append(loaded)
    return sorted(manifests, key=lambda m: (m.created_at, m.run_id))
