"""Content-addressed artifact store.

The persistence layer behind long experiment campaigns: every unit of work
(a circuit-set evaluation, a sweep point, a finished figure) is stored as
an *object* keyed by the SHA-256 digest of a canonical rendering of its
configuration. Re-running a campaign therefore finds completed units by
construction — no bookkeeping beyond the config itself is needed to skip
work, which is what makes interrupted runs resumable even when their
manifest was lost or corrupted.

Layout (everything under one root, ``--store`` / ``REPRO_STORE``)::

    <root>/
      objects/<kk>/<key>.json    # {"key", "config", "payload"} envelopes
      objects/<kk>/<key>.npz     # optional array payloads
      runs/<run_id>.json         # provenance manifests (see .manifest)

Writes follow the synthesis cache's discipline (unique temp file + atomic
rename, via :func:`repro.utils.cache.atomic_write_json`), so any number of
processes may share one store; readers only ever see complete objects and
the last writer of a key wins benignly (payloads are deterministic
functions of their config, so both writers carried identical bytes).
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..faults import active_plan, record_activation, retrying
from ..faults.errors import TornWriteError
from ..utils.cache import atomic_write_json, read_json

__all__ = [
    "ArtifactStore",
    "canonical_config",
    "config_digest",
    "dumps_canonical",
    "resolve_store_path",
    "open_store",
]

#: Environment variable naming the default store root.
STORE_ENV = "REPRO_STORE"

#: Retry policy for object writes: a torn or failed write is transient —
#: readers treat torn objects as misses, so rewriting is always safe.
_WRITE_RETRY = retrying(attempts=4, base_delay=0.02, max_delay=0.5)


def canonical_config(obj):
    """Normalise a config tree into a canonical JSON-ready form.

    Dict keys become strings (sorted at dump time), tuples become lists,
    numpy scalars/arrays collapse to their Python equivalents, and sets
    are sorted. Anything else non-JSON-serialisable is rejected loudly —
    silent ``str()`` fallbacks would make digests depend on ``repr``
    stability.
    """
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            key = str(key)
            if key in out:
                raise ValueError(f"duplicate canonical key {key!r}")
            out[key] = canonical_config(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical_config(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical_config(v) for v in obj)
    if isinstance(obj, np.ndarray):
        return canonical_config(obj.tolist())
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite float {obj!r} in config")
        return obj
    raise TypeError(f"config value {obj!r} ({type(obj).__name__}) is not canonicalisable")


def dumps_canonical(config) -> str:
    """The canonical JSON text a config digests over."""
    return json.dumps(
        canonical_config(config), sort_keys=True, separators=(",", ":")
    )


def config_digest(config) -> str:
    """SHA-256 hex digest of the canonical config rendering."""
    return hashlib.sha256(dumps_canonical(config).encode()).hexdigest()


def resolve_store_path(explicit: Union[str, Path, None] = None) -> Optional[Path]:
    """Resolve the store root: explicit argument > ``REPRO_STORE`` > none."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(STORE_ENV)
    return Path(env) if env else None


def open_store(explicit: Union[str, Path, None] = None) -> Optional["ArtifactStore"]:
    """An :class:`ArtifactStore` at the resolved root, or ``None``."""
    root = resolve_store_path(explicit)
    return ArtifactStore(root) if root is not None else None


class ArtifactStore:
    """Config-addressed JSON/npz object store + run-manifest directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- layout --------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def object_path(self, key: str, *, kind: str = "json") -> Path:
        return self.objects_dir / key[:2] / f"{key}.{kind}"

    # -- JSON objects --------------------------------------------------
    def put_payload(self, config, payload, *, key: Optional[str] = None) -> str:
        """Store ``payload`` under its config's digest; returns the key.

        Writes are retried under :data:`_WRITE_RETRY`: a failed or torn
        attempt (including injected ``store`` faults, which leave genuinely
        corrupt bytes behind) is rewritten atomically over the wreckage.
        Only an exhausted retry budget raises.
        """
        key = key or config_digest(config)
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "key": key,
            "config": canonical_config(config),
            "payload": payload,
        }

        def write(attempt: int) -> None:
            plan = active_plan()
            if plan is not None and plan.should_fire(
                "store", f"store:{key}", attempt
            ):
                record_activation("store", f"store:{key}")
                # A torn write: corrupt bytes land where the object
                # belongs (readers see a miss) and the writer errors out.
                try:
                    path.write_text('{"key": "' + key[:13])
                except OSError:
                    pass
                raise TornWriteError(
                    f"injected torn write for object {key[:12]} "
                    f"(attempt {attempt})"
                )
            if not atomic_write_json(path, envelope, sort_keys=True):
                raise OSError(f"cannot write store object {path}")

        _WRITE_RETRY.call(write)
        return key

    def get_object(self, config_or_key) -> Optional[dict]:
        """The full ``{"key", "config", "payload"}`` envelope, or ``None``.

        A missing, truncated or corrupt object file is a miss — exactly
        like a synthesis-cache miss, the caller recomputes and rewrites.
        """
        key = (
            config_or_key
            if isinstance(config_or_key, str)
            else config_digest(config_or_key)
        )
        envelope = read_json(self.object_path(key))
        if envelope is None or "payload" not in envelope:
            return None
        return envelope

    def get_payload(self, config_or_key):
        envelope = self.get_object(config_or_key)
        return None if envelope is None else envelope["payload"]

    def has(self, config_or_key) -> bool:
        return self.get_object(config_or_key) is not None

    # -- array objects -------------------------------------------------
    def put_arrays(
        self, config, arrays: Dict[str, np.ndarray], *, key: Optional[str] = None
    ) -> str:
        """Store a dict of arrays as an ``.npz`` beside the key's JSON slot."""
        key = key or config_digest(config)
        path = self.object_path(key, kind="npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            with tmp.open("wb") as fh:
                np.savez(fh, **arrays)
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        return key

    def get_arrays(self, config_or_key) -> Optional[Dict[str, np.ndarray]]:
        key = (
            config_or_key
            if isinstance(config_or_key, str)
            else config_digest(config_or_key)
        )
        path = self.object_path(key, kind="npz")
        try:
            with np.load(path) as data:
                return {name: data[name] for name in data.files}
        except (OSError, ValueError):
            return None

    # -- enumeration / maintenance -------------------------------------
    def object_keys(self) -> List[str]:
        """Every key with at least one object file, sorted."""
        keys = set()
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*"):
                if path.suffix in (".json", ".npz"):
                    keys.add(path.stem)
        return sorted(keys)

    def temp_files(self) -> List[Path]:
        """Leftover ``*.tmp`` files from crashed writers."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.rglob("*.tmp"))

    def remove_object(self, key: str) -> int:
        """Delete every file of ``key``; returns how many were removed."""
        removed = 0
        for kind in ("json", "npz"):
            try:
                self.object_path(key, kind=kind).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def manifest_paths(self) -> Iterator[Path]:
        if self.runs_dir.is_dir():
            yield from sorted(self.runs_dir.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactStore({str(self.root)!r})"
