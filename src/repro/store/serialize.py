"""Structured (JSON) serialisation of experiment results.

Every figure/ablation result object renders to a deterministic JSON
payload: primary data (series, points, references) plus a derived summary
block, all as plain Python scalars. The same payload is written as the
``<name>.json`` file next to the CLI's ``<name>.txt`` render and stored
as the run's artifact object, so downstream tooling (``repro runs
diff``, dashboards, notebooks) never has to parse text tables.

Determinism contract: payload construction never embeds timestamps or
environment state, numpy scalars are cast to Python floats/ints, and
:func:`dumps_payload` uses sorted keys — two runs that computed the same
numbers produce byte-identical artifact files, which is what the
campaign resume guarantee is asserted against.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

import numpy as np

__all__ = [
    "PAYLOAD_SCHEMA",
    "dumps_payload",
    "result_to_payload",
    "payload_to_result",
]

PAYLOAD_SCHEMA = 1


def _plain(value):
    """Recursively collapse numpy containers/scalars to JSON-ready values."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    return value


def _point(p) -> dict:
    return {
        "step": int(p.step),
        "cnot_count": int(p.cnot_count),
        "hs_distance": float(p.hs_distance),
        "value": float(p.value),
    }


def _tfim_body(result) -> dict:
    return {
        "kind": "tfim",
        "figure_id": result.figure_id,
        "description": result.description,
        "device": result.device,
        "num_qubits": int(result.num_qubits),
        "steps": [int(s) for s in result.steps],
        "noise_free": _plain(result.noise_free),
        "noisy_reference": _plain(result.noisy_reference),
        "reference_cnots": [int(c) for c in result.reference_cnots],
        "points": [_point(p) for p in result.points],
        "summary": {
            "reference_error": float(result.reference_error()),
            "minimal_hs_error": float(result.minimal_hs_error()),
            "best_error": float(result.best_error()),
            "improvement": float(result.improvement()),
            "fraction_beating_reference": float(
                result.fraction_beating_reference()
            ),
        },
    }


def _scatter_body(result) -> dict:
    return {
        "kind": "scatter",
        "figure_id": result.figure_id,
        "description": result.description,
        "device": result.device,
        "metric": result.metric,
        "points": [_point(p) for p in result.points],
        "reference": _point(result.reference),
        "extra_references": {
            name: _point(p) for name, p in result.extra_references.items()
        },
        "noise_floor": (
            None if result.noise_floor is None else float(result.noise_floor)
        ),
        "summary": {
            "best": _point(result.best()),
            "improvement": float(result.improvement()),
            "fraction_better_than_reference": float(
                result.fraction_better_than_reference()
            ),
        },
    }


def _best_depth_body(result) -> dict:
    return {
        "kind": "best_depth",
        "figure_id": result.figure_id,
        "description": result.description,
        "steps": [int(s) for s in result.steps],
        "series": [
            {"level": float(level), "depths": [int(d) for d in depths]}
            for level, depths in result.series.items()
        ],
        "summary": {
            "mean_depth": {
                repr(float(level)): float(result.mean_depth(level))
                for level in result.series
            }
        },
    }


def result_to_payload(
    result, *, name: Optional[str] = None, scale: Optional[str] = None
) -> dict:
    """The structured payload of any driver result.

    Dispatches on the result's shape (duck-typed so this module never
    imports the experiment layer at import time): TFIM figures, scatter
    figures, best-depth figures, plain-text results, and dataclass-based
    ablation results all serialise; anything else is rendered as text via
    its ``rows()``.
    """
    if isinstance(result, str):
        body = {"kind": "text", "text": result}
    elif hasattr(result, "noise_free") and hasattr(result, "points"):
        body = _tfim_body(result)
    elif hasattr(result, "metric") and hasattr(result, "reference"):
        body = _scatter_body(result)
    elif hasattr(result, "series") and hasattr(result, "steps"):
        body = _best_depth_body(result)
    elif dataclasses.is_dataclass(result):
        body = {
            "kind": f"ablation:{type(result).__name__}",
            "data": _plain(dataclasses.asdict(result)),
        }
    elif hasattr(result, "rows"):
        body = {"kind": "text", "text": result.rows()}
    else:
        raise TypeError(f"cannot serialise result of type {type(result).__name__}")
    payload = {"schema": PAYLOAD_SCHEMA, "experiment": name, "scale": scale}
    payload.update(body)
    return payload


def dumps_payload(payload: dict) -> str:
    """Canonical artifact text: sorted keys, 2-space indent, no NaNs."""
    return json.dumps(payload, sort_keys=True, indent=2, allow_nan=False)


def payload_to_result(payload: dict):
    """Rebuild a figure object from its payload (inverse of the above).

    Supports the three figure kinds; ``text`` payloads return their
    string. Used by tooling that wants to re-render or re-analyse stored
    artifacts without re-running the experiment.
    """
    from ..experiments.figures import (
        ApproxPoint,
        BestDepthFigure,
        ScatterFigure,
        TFIMFigure,
    )

    kind = payload.get("kind")
    if kind == "text":
        return payload["text"]

    def point(d) -> ApproxPoint:
        return ApproxPoint(
            d["step"], d["cnot_count"], d["hs_distance"], d["value"]
        )

    if kind == "tfim":
        return TFIMFigure(
            figure_id=payload["figure_id"],
            description=payload["description"],
            device=payload["device"],
            num_qubits=payload["num_qubits"],
            steps=list(payload["steps"]),
            noise_free=np.array(payload["noise_free"]),
            noisy_reference=np.array(payload["noisy_reference"]),
            reference_cnots=list(payload["reference_cnots"]),
            points=[point(p) for p in payload["points"]],
        )
    if kind == "scatter":
        return ScatterFigure(
            figure_id=payload["figure_id"],
            description=payload["description"],
            device=payload["device"],
            metric=payload["metric"],
            points=[point(p) for p in payload["points"]],
            reference=point(payload["reference"]),
            extra_references={
                name: point(p)
                for name, p in payload.get("extra_references", {}).items()
            },
            noise_floor=payload.get("noise_floor"),
        )
    if kind == "best_depth":
        return BestDepthFigure(
            figure_id=payload["figure_id"],
            description=payload["description"],
            steps=list(payload["steps"]),
            series={
                entry["level"]: list(entry["depths"])
                for entry in payload["series"]
            },
        )
    raise ValueError(f"cannot rebuild result from payload kind {kind!r}")
