"""Resumable campaign orchestration.

A *campaign* wraps existing experiment drivers so that each unit of work —
one circuit-set evaluation, one TFIM sweep point — checkpoints its result
into the artifact store as it completes. Re-invoking the same campaign
against the same store skips every completed unit (a store lookup by the
unit's config digest) and computes only the remainder, then reassembles
the identical final artifact: unit payloads are plain JSON values, and
JSON floats round-trip exactly, so a resumed run is byte-identical to an
uninterrupted one.

Integration is deliberately non-invasive: drivers call
:func:`checkpoint_unit` around each unit builder. Outside a campaign the
call is a transparent pass-through, so the experiment layer behaves
exactly as before unless a store is active.

Worker processes: :func:`campaign` exports the active store root through
``REPRO_STORE_ACTIVE`` so units computed inside ``parallel_map`` workers
(which do not share the parent's context variable) still checkpoint into
the store. Workers append the keys they touch to a per-run sidecar log
(line-append writes are atomic for these sizes), which the parent folds
into the manifest at finalisation so ``repro runs gc`` never collects
units a manifest should own.
"""

from __future__ import annotations

import os
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, Optional, Sequence

from .core import ArtifactStore, config_digest
from .manifest import RunManifest, load_manifest, save_manifest

__all__ = [
    "CampaignContext",
    "CampaignInterrupted",
    "CampaignResult",
    "CampaignRunner",
    "campaign",
    "checkpoint_unit",
    "current_campaign",
]

#: Exported for worker processes: the active store root / units sidecar.
ACTIVE_ENV = "REPRO_STORE_ACTIVE"
UNITS_LOG_ENV = "REPRO_STORE_UNITS_LOG"

_ACTIVE: "ContextVar[Optional[CampaignContext]]" = ContextVar(
    "repro_campaign", default=None
)


class CampaignInterrupted(RuntimeError):
    """Raised when a campaign hits its unit budget (``--max-units``).

    The store keeps every unit completed so far; re-running the same
    campaign against the same store resumes from the checkpoint.
    """

    def __init__(self, run_id: str, units_computed: int) -> None:
        super().__init__(
            f"campaign {run_id!r} interrupted after {units_computed} computed "
            "unit(s); re-run with the same store to resume"
        )
        self.run_id = run_id
        self.units_computed = units_computed


def _collect_provenance(manifest: RunManifest, config: dict) -> None:
    """Fold seed-ish and device fields of a unit config into the manifest."""

    def walk(node, label=""):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, str(key))
        elif isinstance(node, (list, tuple)):
            if "seed" in label:
                for v in node:
                    walk(v, label)
            return
        else:
            if "seed" in label and isinstance(node, (int, float)):
                values = manifest.seeds.setdefault(label, [])
                if node not in values:
                    values.append(node)
                    values.sort()
            if label == "device" and isinstance(node, str):
                if node not in manifest.devices:
                    manifest.devices.append(node)
                    manifest.devices.sort()

    walk(config)


class CampaignContext:
    """Parent-process checkpointer: store lookups + manifest accounting."""

    def __init__(
        self,
        store: ArtifactStore,
        manifest: RunManifest,
        *,
        max_units: Optional[int] = None,
    ) -> None:
        self.store = store
        self.manifest = manifest
        self.max_units = max_units
        self._started = time.monotonic()

    def unit(self, config: dict, builder: Callable[[], object]):
        key = config_digest(config)
        _collect_provenance(self.manifest, config)
        payload = self.store.get_payload(key)
        if payload is not None:
            self.manifest.units_cached += 1
            self._note(key)
            return payload
        if (
            self.max_units is not None
            and self.manifest.units_computed >= self.max_units
        ):
            self._flush()
            raise CampaignInterrupted(
                self.manifest.run_id, self.manifest.units_computed
            )
        payload = builder()
        self.store.put_payload(config, payload, key=key)
        self.manifest.units_computed += 1
        self._note(key)
        return payload

    def _note(self, key: str) -> None:
        if key not in self.manifest.unit_keys:
            self.manifest.unit_keys.append(key)
        self._flush()

    def _flush(self) -> None:
        self.manifest.wall_time = round(time.monotonic() - self._started, 3)
        save_manifest(self.store, self.manifest)


class _WorkerCheckpointer:
    """Store-only checkpointing inside ``parallel_map`` worker processes.

    Reconstructed from the environment; owns no manifest. Keys are logged
    to the parent's sidecar so the finalised manifest references them.
    """

    def __init__(self, store: ArtifactStore, units_log: Optional[str]) -> None:
        self.store = store
        self.units_log = units_log

    def unit(self, config: dict, builder: Callable[[], object]):
        key = config_digest(config)
        payload = self.store.get_payload(key)
        if payload is None:
            payload = builder()
            self.store.put_payload(config, payload, key=key)
        if self.units_log:
            try:
                with open(self.units_log, "a") as fh:
                    fh.write(key + "\n")
            except OSError:
                pass
        return payload


def current_campaign():
    """The active checkpointer, if any.

    Parent processes see their context variable; worker processes fall
    back to the ``REPRO_STORE_ACTIVE`` environment export.
    """
    ctx = _ACTIVE.get()
    if ctx is not None:
        return ctx
    root = os.environ.get(ACTIVE_ENV)
    if root:
        return _WorkerCheckpointer(
            ArtifactStore(root), os.environ.get(UNITS_LOG_ENV)
        )
    return None


def checkpoint_unit(config: dict, builder: Callable[[], object]):
    """Run ``builder`` through the active campaign checkpoint, if any.

    The single integration point for experiment drivers: with no campaign
    active this is exactly ``builder()``.
    """
    ctx = current_campaign()
    if ctx is None:
        return builder()
    return ctx.unit(config, builder)


def _units_log_path(store: ArtifactStore, run_id: str) -> str:
    return str(store.runs_dir / f"{run_id}.units.log")


def _merge_worker_units(store: ArtifactStore, manifest: RunManifest) -> None:
    path = _units_log_path(store, manifest.run_id)
    try:
        with open(path) as fh:
            keys = [line.strip() for line in fh if line.strip()]
    except OSError:
        return
    for key in keys:
        if key not in manifest.unit_keys:
            manifest.unit_keys.append(key)
    try:
        os.unlink(path)
    except OSError:
        pass


@contextmanager
def campaign(
    store: ArtifactStore,
    *,
    experiment: str,
    scale: str,
    config: Optional[dict] = None,
    run_id: Optional[str] = None,
    max_units: Optional[int] = None,
) -> Iterator[CampaignContext]:
    """Open a checkpointing scope around one experiment run.

    Creates and maintains the run manifest, exports the store to worker
    processes, and finalises status (``complete`` / ``interrupted`` /
    ``failed``) on exit.
    """
    config = dict(config or {})
    config.setdefault("experiment", experiment)
    config.setdefault("scale", scale)
    if run_id is None:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        run_id = f"{experiment}-{scale}-{stamp}-{uuid.uuid4().hex[:6]}"
    manifest = RunManifest(
        run_id=run_id,
        experiment=experiment,
        scale=scale,
        config=config,
        config_hash=config_digest(config),
    )
    ctx = CampaignContext(store, manifest, max_units=max_units)
    save_manifest(store, manifest)
    token = _ACTIVE.set(ctx)
    prev_env = {k: os.environ.get(k) for k in (ACTIVE_ENV, UNITS_LOG_ENV)}
    os.environ[ACTIVE_ENV] = str(store.root)
    os.environ[UNITS_LOG_ENV] = _units_log_path(store, run_id)
    try:
        yield ctx
    except CampaignInterrupted:
        manifest.status = "interrupted"
        raise
    except BaseException as exc:
        manifest.status = "failed"
        manifest.error = f"{type(exc).__name__}: {exc}"
        raise
    else:
        manifest.status = "complete"
    finally:
        _ACTIVE.reset(token)
        for key, value in prev_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        _merge_worker_units(store, manifest)
        ctx._flush()


# ---------------------------------------------------------------------------
# Campaign runner
# ---------------------------------------------------------------------------

class CampaignResult:
    """Outcome of one experiment inside a campaign."""

    def __init__(self, name: str, manifest: RunManifest, result, text: str) -> None:
        self.name = name
        self.manifest = manifest
        self.result = result
        self.text = text

    @property
    def interrupted(self) -> bool:
        return self.manifest.status == "interrupted"

    def summary(self) -> str:
        m = self.manifest
        return (
            f"[campaign] {self.name}: run {m.run_id} {m.status} — "
            f"{m.units_computed} unit(s) computed, "
            f"{m.units_cached} skipped (checkpointed), "
            f"wall {m.wall_time:.1f}s"
        )


class CampaignRunner:
    """Run registered experiment drivers with per-unit checkpointing.

    Wraps each driver in a :func:`campaign` scope, stores the finished
    figure as a JSON artifact, and stops (leaving a resumable store
    behind) when the unit budget interrupts a run.
    """

    def __init__(
        self,
        store: ArtifactStore,
        targets: Sequence[str],
        scale,
        *,
        registry: Dict[str, Callable],
        run_id: Optional[str] = None,
        max_units: Optional[int] = None,
        reset: Optional[Callable[[], None]] = None,
    ) -> None:
        unknown = [t for t in targets if t not in registry]
        if unknown:
            raise KeyError(f"unknown campaign target(s): {unknown}")
        self.store = store
        self.targets = list(targets)
        self.scale = scale
        self.registry = dict(registry)
        self.run_id = run_id
        self.max_units = max_units
        self.reset = reset

    def _run_id_for(self, name: str) -> Optional[str]:
        if self.run_id is None:
            return None
        if len(self.targets) == 1:
            return self.run_id
        return f"{self.run_id}-{name.replace(':', '_')}"

    def run(self):
        from .serialize import result_to_payload

        results = []
        for name in self.targets:
            if self.reset is not None:
                # Drop in-process memoisation so every unit actually goes
                # through the store (hits are cheap and counted as skips).
                self.reset()
            driver = self.registry[name]
            try:
                with campaign(
                    self.store,
                    experiment=name,
                    scale=self.scale.name,
                    run_id=self._run_id_for(name),
                    max_units=self.max_units,
                ) as ctx:
                    result = driver(self.scale)
                    payload = result_to_payload(
                        result, name=name, scale=self.scale.name
                    )
                    artifact_key = self.store.put_payload(
                        {
                            "kind": "artifact",
                            "experiment": name,
                            "scale": self.scale.name,
                            "run_id": ctx.manifest.run_id,
                        },
                        payload,
                    )
                    ctx.manifest.artifacts[name] = artifact_key
            except CampaignInterrupted:
                results.append(
                    CampaignResult(name, ctx.manifest, None, "")
                )
                break
            text = result if isinstance(result, str) else result.rows()
            results.append(CampaignResult(name, ctx.manifest, result, text))
        return results
