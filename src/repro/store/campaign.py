"""Resumable campaign orchestration.

A *campaign* wraps existing experiment drivers so that each unit of work —
one circuit-set evaluation, one TFIM sweep point — checkpoints its result
into the artifact store as it completes. Re-invoking the same campaign
against the same store skips every completed unit (a store lookup by the
unit's config digest) and computes only the remainder, then reassembles
the identical final artifact: unit payloads are plain JSON values, and
JSON floats round-trip exactly, so a resumed run is byte-identical to an
uninterrupted one.

Integration is deliberately non-invasive: drivers call
:func:`checkpoint_unit` around each unit builder. Outside a campaign the
call is a transparent pass-through, so the experiment layer behaves
exactly as before unless a store is active.

Worker processes: :func:`campaign` exports the active store root through
``REPRO_STORE_ACTIVE`` so units computed inside ``parallel_map`` workers
(which do not share the parent's context variable) still checkpoint into
the store. Workers append the keys they touch to a per-run sidecar log
(line-append writes are atomic for these sizes), which the parent folds
into the manifest at finalisation so ``repro runs gc`` never collects
units a manifest should own. Quarantines and degradations inside workers
travel through the same sidecar as tagged ``FAILED``/``DEGRADED`` lines.

Failure model: a unit whose builder raises a *transient* error (see
:func:`repro.faults.classify_exception`) after the lower layers' retry
budgets are exhausted is **quarantined** — recorded in the manifest's
``failed_units`` with the captured exception, surfaced to the driver as
:class:`UnitQuarantined` — and the campaign continues with the remaining
units/targets instead of aborting. Units computed in a degraded mode
(hardware emulation fell back to plain simulation) are recorded in
``degraded_units`` and their payloads are *not* checkpointed, so degraded
data can never silently satisfy a later resume. ``repro runs retry``
re-executes exactly the quarantined/degraded units; everything that had
succeeded resumes byte-identically from the store.
"""

from __future__ import annotations

import os
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, Optional, Sequence

from ..faults import classify_exception, degradation_events
from .core import ArtifactStore, config_digest
from .manifest import RunManifest, load_manifest, save_manifest

__all__ = [
    "CampaignContext",
    "CampaignInterrupted",
    "CampaignResult",
    "CampaignRunner",
    "UnitQuarantined",
    "campaign",
    "checkpoint_unit",
    "current_campaign",
    "prune_for_retry",
]

#: Exported for worker processes: the active store root / units sidecar.
ACTIVE_ENV = "REPRO_STORE_ACTIVE"
UNITS_LOG_ENV = "REPRO_STORE_UNITS_LOG"

_ACTIVE: "ContextVar[Optional[CampaignContext]]" = ContextVar(
    "repro_campaign", default=None
)


class CampaignInterrupted(RuntimeError):
    """Raised when a campaign hits its unit budget (``--max-units``).

    The store keeps every unit completed so far; re-running the same
    campaign against the same store resumes from the checkpoint.
    """

    def __init__(self, run_id: str, units_computed: int) -> None:
        super().__init__(
            f"campaign {run_id!r} interrupted after {units_computed} computed "
            "unit(s); re-run with the same store to resume"
        )
        self.run_id = run_id
        self.units_computed = units_computed


class UnitQuarantined(RuntimeError):
    """A unit's builder failed transiently even after retries.

    The unit is recorded in the manifest's ``failed_units`` (no payload is
    stored) and this exception surfaces to the driver, which may skip the
    unit and assemble a partial result, or let it propagate — in which
    case the :class:`CampaignRunner` records the target as partial and
    moves on to the next one.

    ``args`` is exactly ``(key, error)`` so instances survive the pickle
    round-trip out of pool worker processes.
    """

    def __init__(self, key: str, error: str) -> None:
        super().__init__(key, error)
        self.key = key
        self.error = error

    def __str__(self) -> str:
        return f"unit {self.key[:12]} quarantined: {self.error}"


def _collect_provenance(manifest: RunManifest, config: dict) -> None:
    """Fold seed-ish and device fields of a unit config into the manifest."""

    def walk(node, label=""):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, str(key))
        elif isinstance(node, (list, tuple)):
            if "seed" in label:
                for v in node:
                    walk(v, label)
            return
        else:
            if "seed" in label and isinstance(node, (int, float)):
                values = manifest.seeds.setdefault(label, [])
                if node not in values:
                    values.append(node)
                    values.sort()
            if label == "device" and isinstance(node, str):
                if node not in manifest.devices:
                    manifest.devices.append(node)
                    manifest.devices.sort()

    walk(config)


class CampaignContext:
    """Parent-process checkpointer: store lookups + manifest accounting."""

    def __init__(
        self,
        store: ArtifactStore,
        manifest: RunManifest,
        *,
        max_units: Optional[int] = None,
    ) -> None:
        self.store = store
        self.manifest = manifest
        self.max_units = max_units
        self._started = time.monotonic()

    def unit(self, config: dict, builder: Callable[[], object]):
        key = config_digest(config)
        _collect_provenance(self.manifest, config)
        payload = self.store.get_payload(key)
        if payload is not None:
            self.manifest.units_cached += 1
            self._note(key)
            return payload
        if (
            self.max_units is not None
            and self.manifest.units_computed >= self.max_units
        ):
            self._flush()
            raise CampaignInterrupted(
                self.manifest.run_id, self.manifest.units_computed
            )
        mark = len(degradation_events())
        try:
            payload = builder()
        except UnitQuarantined:
            raise
        except Exception as exc:
            raise self._quarantine(key, exc) from exc
        reasons = sorted({r for _, r in degradation_events()[mark:]})
        if reasons:
            # Degraded results are returned for this run but never
            # checkpointed — a resume must recompute them faithfully.
            self.manifest.units_computed += 1
            self.manifest.degraded_units[key] = "; ".join(reasons)
            self._note(key)
            return payload
        try:
            self.store.put_payload(config, payload, key=key)
        except Exception as exc:
            # The unit computed but could not be persisted: without a
            # checkpoint a resume cannot vouch for it, so it quarantines
            # exactly like a builder failure.
            raise self._quarantine(key, exc) from exc
        self.manifest.units_computed += 1
        self._note(key)
        return payload

    def _quarantine(self, key: str, exc: Exception) -> "UnitQuarantined":
        """Record a transiently-failed unit; fatal errors re-raise as-is."""
        if classify_exception(exc) == "fatal":
            raise exc
        error = f"{type(exc).__name__}: {exc}"
        self.manifest.failed_units[key] = error
        self._flush()
        return UnitQuarantined(key, error)

    def _note(self, key: str) -> None:
        if key not in self.manifest.unit_keys:
            self.manifest.unit_keys.append(key)
        self._flush()

    def _flush(self) -> None:
        self.manifest.wall_time = round(time.monotonic() - self._started, 3)
        save_manifest(self.store, self.manifest)


class _WorkerCheckpointer:
    """Store-only checkpointing inside ``parallel_map`` worker processes.

    Reconstructed from the environment; owns no manifest. Keys are logged
    to the parent's sidecar so the finalised manifest references them;
    quarantines and degradations travel as tagged ``FAILED``/``DEGRADED``
    lines the parent merges at finalisation.
    """

    def __init__(self, store: ArtifactStore, units_log: Optional[str]) -> None:
        self.store = store
        self.units_log = units_log

    def _log(self, line: str) -> None:
        if not self.units_log:
            return
        try:
            with open(self.units_log, "a") as fh:
                fh.write(line + "\n")
        except OSError:
            pass

    def unit(self, config: dict, builder: Callable[[], object]):
        key = config_digest(config)
        payload = self.store.get_payload(key)
        if payload is None:
            mark = len(degradation_events())
            try:
                payload = builder()
            except UnitQuarantined:
                raise
            except Exception as exc:
                raise self._quarantine(key, exc) from exc
            reasons = sorted({r for _, r in degradation_events()[mark:]})
            if reasons:
                self._log(f"DEGRADED\t{key}\t" + "; ".join(reasons))
                return payload
            try:
                self.store.put_payload(config, payload, key=key)
            except Exception as exc:
                raise self._quarantine(key, exc) from exc
        self._log(key)
        return payload

    def _quarantine(self, key: str, exc: Exception) -> UnitQuarantined:
        if classify_exception(exc) == "fatal":
            raise exc
        error = f"{type(exc).__name__}: {exc}"
        self._log(f"FAILED\t{key}\t{error}")
        return UnitQuarantined(key, error)


def current_campaign():
    """The active checkpointer, if any.

    Parent processes see their context variable; worker processes fall
    back to the ``REPRO_STORE_ACTIVE`` environment export.
    """
    ctx = _ACTIVE.get()
    if ctx is not None:
        return ctx
    root = os.environ.get(ACTIVE_ENV)
    if root:
        return _WorkerCheckpointer(
            ArtifactStore(root), os.environ.get(UNITS_LOG_ENV)
        )
    return None


def checkpoint_unit(config: dict, builder: Callable[[], object]):
    """Run ``builder`` through the active campaign checkpoint, if any.

    The single integration point for experiment drivers: with no campaign
    active this is exactly ``builder()``.
    """
    ctx = current_campaign()
    if ctx is None:
        return builder()
    return ctx.unit(config, builder)


def _units_log_path(store: ArtifactStore, run_id: str) -> str:
    return str(store.runs_dir / f"{run_id}.units.log")


def _merge_worker_units(store: ArtifactStore, manifest: RunManifest) -> None:
    """Fold the worker sidecar into the manifest (keys, failures, degradations)."""
    path = _units_log_path(store, manifest.run_id)
    try:
        with open(path) as fh:
            lines = [line.strip() for line in fh if line.strip()]
    except OSError:
        return
    for line in lines:
        if line.startswith("FAILED\t"):
            _tag, _, rest = line.partition("\t")
            key, _, error = rest.partition("\t")
            manifest.failed_units.setdefault(key, error or "worker failure")
        elif line.startswith("DEGRADED\t"):
            _tag, _, rest = line.partition("\t")
            key, _, reason = rest.partition("\t")
            manifest.degraded_units.setdefault(key, reason or "degraded")
        elif line not in manifest.unit_keys:
            manifest.unit_keys.append(line)
    try:
        os.unlink(path)
    except OSError:
        pass


@contextmanager
def campaign(
    store: ArtifactStore,
    *,
    experiment: str,
    scale: str,
    config: Optional[dict] = None,
    run_id: Optional[str] = None,
    max_units: Optional[int] = None,
) -> Iterator[CampaignContext]:
    """Open a checkpointing scope around one experiment run.

    Creates and maintains the run manifest, exports the store to worker
    processes, and finalises status (``complete`` / ``interrupted`` /
    ``failed``) on exit.
    """
    config = dict(config or {})
    config.setdefault("experiment", experiment)
    config.setdefault("scale", scale)
    if run_id is None:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        run_id = f"{experiment}-{scale}-{stamp}-{uuid.uuid4().hex[:6]}"
    manifest = RunManifest(
        run_id=run_id,
        experiment=experiment,
        scale=scale,
        config=config,
        config_hash=config_digest(config),
    )
    ctx = CampaignContext(store, manifest, max_units=max_units)
    save_manifest(store, manifest)
    token = _ACTIVE.set(ctx)
    prev_env = {k: os.environ.get(k) for k in (ACTIVE_ENV, UNITS_LOG_ENV)}
    os.environ[ACTIVE_ENV] = str(store.root)
    os.environ[UNITS_LOG_ENV] = _units_log_path(store, run_id)
    try:
        yield ctx
    except CampaignInterrupted:
        manifest.status = "interrupted"
        raise
    except UnitQuarantined as exc:
        # A quarantined unit escaped the driver: the run is partial, the
        # completed units stay checkpointed, and a retry finishes the job.
        manifest.status = "partial"
        manifest.error = str(exc)
        raise
    except BaseException as exc:
        if isinstance(exc, Exception) and classify_exception(exc) == "transient":
            manifest.status = "partial"
        else:
            manifest.status = "failed"
        manifest.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _ACTIVE.reset(token)
        for key, value in prev_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        _merge_worker_units(store, manifest)
        if manifest.status == "running":
            # Clean exit: complete, unless units were quarantined or
            # degraded along the way (worker sidecars included).
            manifest.status = (
                "partial"
                if manifest.failed_units or manifest.degraded_units
                else "complete"
            )
        ctx._flush()


# ---------------------------------------------------------------------------
# Campaign runner
# ---------------------------------------------------------------------------

class CampaignResult:
    """Outcome of one experiment inside a campaign."""

    def __init__(self, name: str, manifest: RunManifest, result, text: str) -> None:
        self.name = name
        self.manifest = manifest
        self.result = result
        self.text = text

    @property
    def interrupted(self) -> bool:
        return self.manifest.status == "interrupted"

    @property
    def partial(self) -> bool:
        return self.manifest.status == "partial"

    def summary(self) -> str:
        m = self.manifest
        text = (
            f"[campaign] {self.name}: run {m.run_id} {m.status} — "
            f"{m.units_computed} unit(s) computed, "
            f"{m.units_cached} skipped (checkpointed), "
            f"wall {m.wall_time:.1f}s"
        )
        if m.failed_units:
            text += f", {len(m.failed_units)} quarantined"
        if m.degraded_units:
            text += f", {len(m.degraded_units)} degraded"
        return text


class CampaignRunner:
    """Run registered experiment drivers with per-unit checkpointing.

    Wraps each driver in a :func:`campaign` scope, stores the finished
    figure as a JSON artifact, and stops (leaving a resumable store
    behind) when the unit budget interrupts a run.
    """

    def __init__(
        self,
        store: ArtifactStore,
        targets: Sequence[str],
        scale,
        *,
        registry: Dict[str, Callable],
        run_id: Optional[str] = None,
        max_units: Optional[int] = None,
        reset: Optional[Callable[[], None]] = None,
    ) -> None:
        unknown = [t for t in targets if t not in registry]
        if unknown:
            raise KeyError(f"unknown campaign target(s): {unknown}")
        self.store = store
        self.targets = list(targets)
        self.scale = scale
        self.registry = dict(registry)
        self.run_id = run_id
        self.max_units = max_units
        self.reset = reset

    def _run_id_for(self, name: str) -> Optional[str]:
        if self.run_id is None:
            return None
        if len(self.targets) == 1:
            return self.run_id
        return f"{self.run_id}-{name.replace(':', '_')}"

    def run(self):
        from .serialize import result_to_payload

        results = []
        for name in self.targets:
            if self.reset is not None:
                # Drop in-process memoisation so every unit actually goes
                # through the store (hits are cheap and counted as skips).
                self.reset()
            driver = self.registry[name]
            try:
                with campaign(
                    self.store,
                    experiment=name,
                    scale=self.scale.name,
                    run_id=self._run_id_for(name),
                    max_units=self.max_units,
                ) as ctx:
                    result = driver(self.scale)
                    payload = result_to_payload(
                        result, name=name, scale=self.scale.name
                    )
                    artifact_key = self.store.put_payload(
                        {
                            "kind": "artifact",
                            "experiment": name,
                            "scale": self.scale.name,
                            "run_id": ctx.manifest.run_id,
                        },
                        payload,
                    )
                    ctx.manifest.artifacts[name] = artifact_key
            except CampaignInterrupted:
                results.append(
                    CampaignResult(name, ctx.manifest, None, "")
                )
                break
            except UnitQuarantined:
                # The driver could not assemble a result without the
                # quarantined unit(s): record the target as partial and
                # move on — the remaining targets are independent.
                results.append(
                    CampaignResult(name, ctx.manifest, None, "")
                )
                continue
            except Exception as exc:
                if classify_exception(exc) == "fatal":
                    raise
                results.append(
                    CampaignResult(name, ctx.manifest, None, "")
                )
                continue
            text = result if isinstance(result, str) else result.rows()
            results.append(CampaignResult(name, ctx.manifest, result, text))
        return results


def prune_for_retry(store: ArtifactStore, manifest: RunManifest) -> int:
    """Drop quarantined/degraded units' store objects before a retry.

    Quarantined units never stored a payload and degraded units are never
    checkpointed, so normally there is nothing to remove — this is a
    defensive sweep against store objects written by other runs of the
    same config (which a retry must recompute, not silently reuse when
    the point of the retry is to replace suspect data). Returns how many
    objects were removed.
    """
    removed = 0
    for key in (*manifest.failed_units, *manifest.degraded_units):
        removed += store.remove_object(key)
    return removed
