"""``repro.store`` — durable, queryable experiment persistence.

Three layers:

* :mod:`repro.store.core` — a content-addressed artifact store (JSON and
  npz objects keyed by the SHA-256 digest of a canonical config), safe
  under concurrent writers.
* :mod:`repro.store.manifest` — per-run provenance manifests (experiment,
  scale, seeds, devices, code version, config hash, unit keys, artifact
  refs, completion status).
* :mod:`repro.store.campaign` — resumable campaign orchestration: unit
  checkpointing for the experiment drivers plus the
  :class:`~repro.store.campaign.CampaignRunner` the CLI drives.

:mod:`repro.store.serialize` (structured result payloads) and
:mod:`repro.store.registry` (the ``repro runs`` CLI) are imported lazily
by their callers to keep the experiment-driver import cycle trivial.
"""

from .core import (
    ArtifactStore,
    canonical_config,
    config_digest,
    open_store,
    resolve_store_path,
)
from .manifest import RunManifest, code_version, list_runs, load_manifest, save_manifest
from .campaign import (
    CampaignContext,
    CampaignInterrupted,
    CampaignResult,
    CampaignRunner,
    UnitQuarantined,
    campaign,
    checkpoint_unit,
    current_campaign,
    prune_for_retry,
)

__all__ = [
    "ArtifactStore",
    "canonical_config",
    "config_digest",
    "open_store",
    "resolve_store_path",
    "RunManifest",
    "code_version",
    "list_runs",
    "load_manifest",
    "save_manifest",
    "CampaignContext",
    "CampaignInterrupted",
    "CampaignResult",
    "CampaignRunner",
    "UnitQuarantined",
    "campaign",
    "checkpoint_unit",
    "current_campaign",
    "prune_for_retry",
]
