"""Approximation by circuit compression.

The growth-based searches (QSearch's A*, QFast's beam) excel on smooth
targets like TFIM steps, but the Hilbert-Schmidt landscape of
permutation-like targets (multi-control Toffolis) has a wide plateau that
random restarts essentially never escape — the same scaling wall the paper
hits ("wider circuits ... result in excessive search cost", §6.1).

For such targets this module generates the approximate pool from the other
direction, in the spirit of the QFactor optimizer the paper's roadmap
points to: start from a *known exact* reference circuit, losslessly encode
it into the synthesis ansatz, then repeatedly delete one CNOT block and
re-optimise all remaining parameters warm-started. Each deletion yields a
shorter, slightly-less-exact circuit; the full trajectory is a frontier of
approximations from "exact and deep" to "crude and shallow" — precisely
the population the paper's Toffoli figures plot.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..linalg.decompositions import u3_params_from_unitary
from .objective import CircuitStructure, optimize_structure
from .qsearch import SynthesisRecord, SynthesisResult

__all__ = ["structure_from_circuit", "CompressionSynthesizer"]


def structure_from_circuit(
    circuit: QuantumCircuit,
) -> Tuple[CircuitStructure, np.ndarray]:
    """Exactly encode a ``{1q, cx}`` circuit into the QSearch ansatz.

    Any circuit over one-qubit gates and CNOTs equals (up to global phase)
    the ansatz whose placements are its CNOT sequence: every run of
    one-qubit gates on a wire merges into the U3 slot that follows the
    previous CNOT touching that wire (or the initial layer). Returns the
    structure plus the exact parameter vector.
    """
    n = circuit.num_qubits
    placements: List[Tuple[int, int]] = []
    for gate in circuit:
        if gate.name == "cx":
            placements.append(gate.qubits)
        elif gate.name in ("barrier", "measure"):
            continue
        elif gate.num_qubits != 1:
            raise ValueError(
                f"structure_from_circuit needs a {{1q, cx}} circuit; "
                f"found {gate.name!r}"
            )
    structure = CircuitStructure(n, tuple(placements))

    # Slot bookkeeping: each qubit accumulates 1q matrices into its open
    # slot; a CNOT on (a, b) closes both and opens the block's two slots.
    num_params = structure.num_params
    params = np.zeros(num_params)
    slot_offset = {q: 3 * q for q in range(n)}
    slot_matrix = {q: np.eye(2, dtype=np.complex128) for q in range(n)}
    block = 0

    def flush(q: int) -> None:
        theta, phi, lam = u3_params_from_unitary(slot_matrix[q])
        off = slot_offset[q]
        params[off : off + 3] = (theta, phi, lam)
        slot_matrix[q] = np.eye(2, dtype=np.complex128)

    for gate in circuit:
        if gate.name in ("barrier", "measure"):
            continue
        if gate.name == "cx":
            a, b = gate.qubits
            flush(a)
            flush(b)
            base = 3 * n + 6 * block
            slot_offset[a] = base
            slot_offset[b] = base + 3
            block += 1
            continue
        q = gate.qubits[0]
        slot_matrix[q] = gate.matrix() @ slot_matrix[q]
    for q in range(n):
        flush(q)
    return structure, params


class CompressionSynthesizer:
    """Generate approximations by block deletion from an exact reference.

    Parameters
    ----------
    trial_drops:
        CNOT blocks tried per deletion round (the best is committed; all
        trials join the intermediate pool).
    min_cnots:
        Stop once the circuit is this shallow.
    stride:
        Delete this many blocks per committed step for very deep
        references (keeps pool generation linear in depth).
    """

    def __init__(
        self,
        *,
        trial_drops: int = 3,
        min_cnots: int = 0,
        stride: int = 1,
        maxiter: int = 150,
        restarts: int = 0,
        optimizer: str = "L-BFGS-B",
        seed: Optional[int] = None,
        success_threshold: float = 1e-8,
        max_cnots: Optional[int] = None,
    ) -> None:
        self.trial_drops = max(1, trial_drops)
        self.min_cnots = min_cnots
        self.stride = max(1, stride)
        self.maxiter = maxiter
        self.restarts = restarts
        self.optimizer = optimizer
        self.seed = seed
        self.success_threshold = success_threshold
        self.max_cnots = max_cnots  # optional pre-truncation of the pool

    def synthesize(
        self,
        target: np.ndarray,
        reference: QuantumCircuit,
    ) -> SynthesisResult:
        target = np.asarray(target, dtype=np.complex128)
        rng = np.random.default_rng(self.seed)
        structure, params = structure_from_circuit(reference)
        if target.shape != (2**structure.num_qubits,) * 2:
            raise ValueError("target width does not match the reference")

        intermediates: List[SynthesisRecord] = []
        explored = 0

        def evaluate(
            struct: CircuitStructure, warm: Optional[np.ndarray]
        ) -> SynthesisRecord:
            nonlocal explored
            result = optimize_structure(
                target,
                struct,
                restarts=self.restarts,
                initial_params=warm,
                method=self.optimizer,
                maxiter=self.maxiter,
                rng=rng,
                tol=self.success_threshold,
            )
            record = SynthesisRecord(
                structure=struct, params=result.params, hs_distance=result.cost
            )
            intermediates.append(record)
            explored += 1
            return record

        current = evaluate(structure, params)
        best = current

        while current.cnot_count > self.min_cnots:
            placements = current.structure.placements
            k = len(placements)
            drops = min(self.stride, k - self.min_cnots)
            candidates: List[SynthesisRecord] = []
            indices = rng.choice(
                k - drops + 1,
                size=min(self.trial_drops, k - drops + 1),
                replace=False,
            )
            for start in indices:
                new_placements = (
                    placements[: int(start)] + placements[int(start) + drops :]
                )
                new_struct = CircuitStructure(
                    current.structure.num_qubits, new_placements
                )
                warm = self._drop_params(
                    current.params, current.structure, int(start), drops
                )
                candidates.append(evaluate(new_struct, warm))
            current = min(candidates, key=lambda r: r.hs_distance)
            if current.hs_distance < best.hs_distance:
                best = current

        success = best.hs_distance < self.success_threshold
        if self.max_cnots is not None:
            intermediates = [
                r for r in intermediates if r.cnot_count <= self.max_cnots
            ]
        return SynthesisResult(best, intermediates, success, explored, target)

    @staticmethod
    def _drop_params(
        params: np.ndarray,
        structure: CircuitStructure,
        start: int,
        drops: int,
    ) -> np.ndarray:
        """Warm-start vector after deleting blocks ``start..start+drops-1``."""
        n = structure.num_qubits
        lo = 3 * n + 6 * start
        hi = lo + 6 * drops
        return np.concatenate([params[:lo], params[hi:]])
