"""The synthesis objective: Hilbert-Schmidt distance and its gradient.

QSearch/QFast judge circuit quality by a process distance between the
candidate unitary ``U`` and the target ``T``:

    cost(U) = sqrt(1 - |Tr(T^+ U)|^2 / d^2)

which is zero iff ``U = T`` up to global phase. The parameter gradient uses
:func:`repro.linalg.gradients.circuit_unitary_and_gradient`, so a full
gradient costs about two circuit evaluations regardless of parameter count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as sp_optimize

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate, gate_matrix
from ..linalg.gradients import (
    GateSpec,
    circuit_unitary_and_gradient,
    u3_matrix_and_derivatives,
)

__all__ = [
    "hs_distance",
    "hs_overlap",
    "CircuitStructure",
    "HilbertSchmidtObjective",
    "optimize_structure",
    "OptimizationResult",
]

_CX = gate_matrix("cx")


def hs_overlap(a: np.ndarray, b: np.ndarray) -> float:
    """Normalised trace overlap ``|Tr(a^+ b)| / d`` in ``[0, 1]``."""
    d = a.shape[0]
    return float(abs(np.einsum("ij,ij->", a.conj(), b)) / d)


def hs_distance(a: np.ndarray, b: np.ndarray) -> float:
    """The paper's Hilbert-Schmidt distance ``sqrt(1 - |Tr(a^+ b)|^2/d^2)``.

    Zero iff the two unitaries agree up to global phase; 1 for orthogonal
    processes.
    """
    overlap = hs_overlap(a, b)
    return math.sqrt(max(0.0, 1.0 - overlap * overlap))


@dataclass(frozen=True)
class CircuitStructure:
    """A QSearch ansatz skeleton: initial U3 layer plus CNOT blocks.

    The structure is the *discrete* part of the search space: a sequence of
    CNOT placements. Each placement contributes one CNOT followed by a U3
    on each involved qubit; an initial layer puts a U3 on every qubit.
    Parameters: ``3 * n + 6 * len(placements)`` angles.
    """

    num_qubits: int
    placements: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for a, b in self.placements:
            if a == b or not (
                0 <= a < self.num_qubits and 0 <= b < self.num_qubits
            ):
                raise ValueError(f"invalid placement ({a}, {b})")

    @property
    def num_params(self) -> int:
        return 3 * self.num_qubits + 6 * len(self.placements)

    @property
    def cnot_count(self) -> int:
        return len(self.placements)

    def extended(self, placement: Tuple[int, int]) -> "CircuitStructure":
        return CircuitStructure(
            self.num_qubits, self.placements + (tuple(placement),)
        )

    def specs(self, params: np.ndarray) -> List[GateSpec]:
        """Differentiable gate list for the given parameter vector."""
        if params.size != self.num_params:
            raise ValueError(
                f"expected {self.num_params} params, got {params.size}"
            )
        specs: List[GateSpec] = []
        offset = 0
        for q in range(self.num_qubits):
            m, dm = u3_matrix_and_derivatives(*params[offset : offset + 3])
            specs.append(GateSpec((q,), m, dm, offset))
            offset += 3
        for a, b in self.placements:
            specs.append(GateSpec((a, b), _CX))
            for q in (a, b):
                m, dm = u3_matrix_and_derivatives(*params[offset : offset + 3])
                specs.append(GateSpec((q,), m, dm, offset))
                offset += 3
        return specs

    def unitary(self, params: np.ndarray) -> np.ndarray:
        u, _ = circuit_unitary_and_gradient(
            self.specs(np.asarray(params, dtype=np.float64)),
            self.num_qubits,
            0,
        )
        return u

    def to_circuit(self, params: np.ndarray, name: str = "synth") -> QuantumCircuit:
        """Materialise as a :class:`QuantumCircuit` in the {u3, cx} basis."""
        params = np.asarray(params, dtype=np.float64)
        qc = QuantumCircuit(self.num_qubits, name=name)
        offset = 0
        for q in range(self.num_qubits):
            qc.u3(*params[offset : offset + 3], q)
            offset += 3
        for a, b in self.placements:
            qc.cx(a, b)
            for q in (a, b):
                qc.u3(*params[offset : offset + 3], q)
                offset += 3
        return qc


class HilbertSchmidtObjective:
    """Callable cost/gradient pair for one (target, structure) pair."""

    def __init__(self, target: np.ndarray, structure: CircuitStructure) -> None:
        target = np.asarray(target, dtype=np.complex128)
        if target.shape != (2**structure.num_qubits,) * 2:
            raise ValueError(
                f"target shape {target.shape} does not match "
                f"{structure.num_qubits} qubits"
            )
        self.target = target
        self.structure = structure
        self.dim = target.shape[0]
        from .fastgrad import StructureEvaluator  # local: avoids cycle

        self._evaluator = StructureEvaluator(target, structure)

    def cost(self, params: np.ndarray) -> float:
        """The HS distance (reporting metric)."""
        u = self.structure.unitary(params)
        return hs_distance(self.target, u)

    def smooth_cost(self, params: np.ndarray) -> float:
        """The squared form ``1 - |Tr(T^+ U)|^2 / d^2`` (optimisation metric).

        Smooth everywhere (the sqrt in :func:`hs_distance` has an infinite
        slope at zero, which makes quasi-Newton line searches fail), and
        monotone in the HS distance: ``hs = sqrt(smooth)``.
        """
        u = self.structure.unitary(params)
        overlap = hs_overlap(self.target, u)
        return max(0.0, 1.0 - overlap * overlap)

    def smooth_cost_and_grad(
        self, params: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Smooth cost plus analytic gradient (fast structured evaluator)."""
        return self._evaluator.smooth_cost_and_grad(params)

    def smooth_cost_and_grad_reference(
        self, params: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Generic-path implementation, kept to cross-validate the fast one."""
        params = np.asarray(params, dtype=np.float64)
        specs = self.structure.specs(params)
        u, du = circuit_unitary_and_gradient(
            specs, self.structure.num_qubits, self.structure.num_params
        )
        t_conj = self.target.conj()
        overlap = np.einsum("ij,ij->", t_conj, u)  # Tr(T^+ U)
        d = float(self.dim)
        val = max(0.0, 1.0 - (abs(overlap) / d) ** 2)
        # d|T|^2/dp = 2 Re(conj(overlap) * Tr(T^+ dU))
        inner = np.einsum("ij,kij->k", t_conj, du)
        d_abs2 = 2.0 * np.real(np.conj(overlap) * inner)
        grad = -d_abs2 / (d * d)
        return val, grad

    @staticmethod
    def hs_from_smooth(smooth: float) -> float:
        return math.sqrt(max(0.0, smooth))


@dataclass
class OptimizationResult:
    """Best parameters found for one structure."""

    structure: CircuitStructure
    params: np.ndarray
    cost: float
    num_evaluations: int = 0

    def circuit(self, name: str = "synth") -> QuantumCircuit:
        return self.structure.to_circuit(self.params, name=name)


def optimize_structure(
    target: np.ndarray,
    structure: CircuitStructure,
    *,
    restarts: int = 2,
    initial_params: Optional[np.ndarray] = None,
    method: str = "L-BFGS-B",
    maxiter: int = 400,
    rng: Optional[np.random.Generator] = None,
    tol: float = 1e-12,
) -> OptimizationResult:
    """Instantiate a structure against a target unitary.

    Runs ``restarts`` randomly-seeded local optimisations (plus one warm
    start when ``initial_params`` is given, as QSearch does when extending
    a parent structure) and keeps the best.

    ``method`` accepts any SciPy minimiser; the paper mentions COBYLA and
    BFGS — both work here, with L-BFGS-B (gradient-based) as the fast
    default.
    """
    rng = rng or np.random.default_rng()
    objective = HilbertSchmidtObjective(target, structure)
    use_grad = method.upper() in ("BFGS", "L-BFGS-B", "CG", "TNC", "SLSQP")

    evaluations = 0

    def fun_grad(p):
        nonlocal evaluations
        evaluations += 1
        return objective.smooth_cost_and_grad(p)

    def fun_only(p):
        nonlocal evaluations
        evaluations += 1
        return objective.smooth_cost(p)

    starts: List[np.ndarray] = []
    if initial_params is not None:
        if initial_params.size == structure.num_params:
            starts.append(np.asarray(initial_params, dtype=np.float64))
        else:
            warm = np.zeros(structure.num_params)
            warm[: initial_params.size] = initial_params
            # New block parameters start near identity with a small kick.
            warm[initial_params.size :] = rng.normal(
                0.0, 0.1, structure.num_params - initial_params.size
            )
            starts.append(warm)
    num_random = restarts if starts else max(1, restarts)
    for _ in range(num_random):
        starts.append(rng.uniform(-np.pi, np.pi, structure.num_params))

    best: Optional[OptimizationResult] = None
    for x0 in starts:
        if use_grad:
            res = sp_optimize.minimize(
                fun_grad,
                x0,
                jac=True,
                method=method,
                options={"maxiter": maxiter, "ftol": 1e-18, "gtol": 1e-12}
                if method.upper() == "L-BFGS-B"
                else {"maxiter": maxiter},
            )
        else:
            res = sp_optimize.minimize(
                fun_only, x0, method=method, options={"maxiter": maxiter}
            )
        cost = HilbertSchmidtObjective.hs_from_smooth(float(res.fun))
        if best is None or cost < best.cost:
            best = OptimizationResult(
                structure=structure,
                params=np.asarray(res.x, dtype=np.float64),
                cost=cost,
            )
        if best.cost < tol:
            break
    best.num_evaluations = evaluations
    return best
