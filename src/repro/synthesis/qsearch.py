"""QSearch-style A* circuit synthesis, instrumented to keep intermediates.

The original QSearch builds circuits of increasing CNOT count: an initial
layer of U3 gates, then blocks of one CNOT plus two U3 gates, exploring
placements with A* and re-optimising all parameters after each extension.
Search stops at the first structure whose Hilbert-Schmidt distance reaches
~zero, which is depth-optimal in CNOT count.

The paper's enhancement — "instead of saving only the final circuit, it
also saves every intermediate circuit during its search" — is native here:
every optimised node is recorded as a :class:`SynthesisRecord`, and the
full list becomes the approximate-circuit pool.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .objective import (
    CircuitStructure,
    OptimizationResult,
    optimize_structure,
)

__all__ = ["SynthesisRecord", "SynthesisResult", "QSearchSynthesizer"]

Edge = Tuple[int, int]


@dataclass
class SynthesisRecord:
    """One circuit evaluated during synthesis (an approximate candidate)."""

    structure: CircuitStructure
    params: np.ndarray
    hs_distance: float

    @property
    def cnot_count(self) -> int:
        return self.structure.cnot_count

    def circuit(self, name: Optional[str] = None) -> QuantumCircuit:
        label = name or f"approx_cx{self.cnot_count}_hs{self.hs_distance:.3f}"
        return self.structure.to_circuit(self.params, name=label)


@dataclass
class SynthesisResult:
    """Output of one synthesis run."""

    best: SynthesisRecord
    intermediates: List[SynthesisRecord]
    success: bool
    nodes_explored: int
    target: np.ndarray = field(repr=False, default=None)

    def circuit(self) -> QuantumCircuit:
        return self.best.circuit(name="synthesized")


def _default_edges(num_qubits: int) -> List[Edge]:
    return [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]


class QSearchSynthesizer:
    """Depth-optimal (in CNOTs) synthesis over a continuous gate set.

    Parameters
    ----------
    coupling:
        Allowed CNOT placements; ``None`` = all-to-all. Restricting to a
        device's coupling map makes every intermediate directly runnable
        on that device, as the paper does.
    success_threshold:
        HS distance treated as "zero" (QSearch defaults to ~1e-10; a
        slightly looser 1e-8 is numerically robust at float64).
    max_cnots:
        Hard depth limit; the search reports failure beyond it.
    restarts:
        Random restarts per node on top of the warm start from the parent
        node's optimum.
    beam_width:
        When set, the frontier is pruned to the best ``beam_width`` open
        nodes per CNOT depth — trades optimality for bounded runtime.
    cnot_weight:
        A* priority is ``hs_distance + cnot_weight * cnot_count``; small
        values favour quality, larger values favour shallow circuits.
    """

    def __init__(
        self,
        coupling: Optional[Sequence[Edge]] = None,
        *,
        success_threshold: float = 1e-8,
        max_cnots: int = 14,
        restarts: int = 1,
        beam_width: Optional[int] = 12,
        max_nodes: int = 600,
        cnot_weight: float = 0.01,
        optimizer: str = "L-BFGS-B",
        maxiter: int = 300,
        seed: Optional[int] = None,
    ) -> None:
        self.coupling = coupling
        self.success_threshold = success_threshold
        self.max_cnots = max_cnots
        self.restarts = restarts
        self.beam_width = beam_width
        self.max_nodes = max_nodes
        self.cnot_weight = cnot_weight
        self.optimizer = optimizer
        self.maxiter = maxiter
        self.seed = seed

    # ------------------------------------------------------------------
    def synthesize(
        self,
        target: np.ndarray,
        *,
        progress_callback: Optional[Callable[[SynthesisRecord], None]] = None,
    ) -> SynthesisResult:
        """Search for a circuit implementing ``target`` up to global phase.

        Every optimised node — successful or not — is recorded and
        returned in ``intermediates`` (ordered by exploration time).
        ``progress_callback`` fires per node, mirroring the enhanced
        QSearch's streaming output.
        """
        target = np.asarray(target, dtype=np.complex128)
        num_qubits = int(round(np.log2(target.shape[0])))
        if target.shape != (2**num_qubits, 2**num_qubits):
            raise ValueError(f"bad target shape {target.shape}")
        edges = list(self.coupling) if self.coupling else _default_edges(num_qubits)
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(f"edge ({a},{b}) outside target width")
        rng = np.random.default_rng(self.seed)

        intermediates: List[SynthesisRecord] = []
        counter = itertools.count()

        def evaluate(
            structure: CircuitStructure, warm: Optional[np.ndarray]
        ) -> SynthesisRecord:
            result = optimize_structure(
                target,
                structure,
                restarts=self.restarts,
                initial_params=warm,
                method=self.optimizer,
                maxiter=self.maxiter,
                rng=rng,
                tol=self.success_threshold,
            )
            record = SynthesisRecord(
                structure=structure,
                params=result.params,
                hs_distance=result.cost,
            )
            intermediates.append(record)
            if progress_callback is not None:
                progress_callback(record)
            return record

        root = evaluate(CircuitStructure(num_qubits), None)
        best = root
        explored = 1
        if root.hs_distance < self.success_threshold:
            return SynthesisResult(root, intermediates, True, explored, target)

        # Frontier entries: (priority, tiebreak, record).
        frontier: List[Tuple[float, int, SynthesisRecord]] = []
        heapq.heappush(
            frontier, (self._priority(root), next(counter), root)
        )

        while frontier and explored < self.max_nodes:
            _, _, node = heapq.heappop(frontier)
            if node.cnot_count >= self.max_cnots:
                continue
            children: List[SynthesisRecord] = []
            for edge in edges:
                child_structure = node.structure.extended(edge)
                child = evaluate(child_structure, node.params)
                explored += 1
                children.append(child)
                if child.hs_distance < best.hs_distance:
                    best = child
                if child.hs_distance < self.success_threshold:
                    return SynthesisResult(
                        best, intermediates, True, explored, target
                    )
                if explored >= self.max_nodes:
                    break
            for child in children:
                heapq.heappush(
                    frontier, (self._priority(child), next(counter), child)
                )
            if self.beam_width is not None and len(frontier) > 4 * self.beam_width:
                frontier = heapq.nsmallest(
                    self.beam_width, frontier
                )
                heapq.heapify(frontier)

        return SynthesisResult(best, intermediates, False, explored, target)

    def _priority(self, record: SynthesisRecord) -> float:
        return record.hs_distance + self.cnot_weight * record.cnot_count
