"""Approximate-circuit pools: generation, filtering and selection.

The paper's method (§3): run an instrumented synthesis tool, keep every
intermediate circuit, filter to a Hilbert-Schmidt threshold of *at least*
0.1 ("in order to have a wide range of circuits but none which differ
entirely from the target"), then study the whole pool under noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..utils.cache import cache_key, load_records, store_records
from .objective import CircuitStructure, hs_distance
from .qfast import QFastSynthesizer
from .qsearch import Edge, QSearchSynthesizer, SynthesisRecord, SynthesisResult

__all__ = [
    "ApproximateCircuit",
    "ApproximateCircuitSet",
    "generate_approximate_circuits",
    "MIN_HS_THRESHOLD",
]

#: The paper never filters tighter than this ("maximum HS distance
#: threshold of at least 0.1").
MIN_HS_THRESHOLD = 0.1


@dataclass(frozen=True)
class ApproximateCircuit:
    """One approximate candidate with its provenance."""

    circuit: QuantumCircuit
    hs_distance: float
    cnot_count: int
    source: str = "qsearch"

    def __post_init__(self) -> None:
        if self.hs_distance < 0:
            raise ValueError("negative HS distance")


class ApproximateCircuitSet:
    """A pool of approximate circuits for one target unitary."""

    def __init__(
        self,
        target: np.ndarray,
        circuits: Iterable[ApproximateCircuit],
        *,
        exact: Optional[ApproximateCircuit] = None,
    ) -> None:
        self.target = np.asarray(target, dtype=np.complex128)
        self.circuits: List[ApproximateCircuit] = sorted(
            circuits, key=lambda c: (c.cnot_count, c.hs_distance)
        )
        #: The converged (HS ~ 0) circuit when synthesis succeeded.
        self.exact = exact

    def __len__(self) -> int:
        return len(self.circuits)

    def __iter__(self):
        return iter(self.circuits)

    def __getitem__(self, idx) -> ApproximateCircuit:
        return self.circuits[idx]

    @property
    def num_qubits(self) -> int:
        return int(round(np.log2(self.target.shape[0])))

    def filtered(self, max_hs: float) -> "ApproximateCircuitSet":
        """Keep candidates within an HS threshold (paper: >= 0.1)."""
        return ApproximateCircuitSet(
            self.target,
            [c for c in self.circuits if c.hs_distance <= max_hs],
            exact=self.exact,
        )

    def minimal_hs(self) -> ApproximateCircuit:
        """The paper's "Minimal HS" selection: best process distance."""
        if not self.circuits:
            raise ValueError("empty circuit set")
        return min(self.circuits, key=lambda c: c.hs_distance)

    def shortest(self) -> ApproximateCircuit:
        if not self.circuits:
            raise ValueError("empty circuit set")
        return min(self.circuits, key=lambda c: (c.cnot_count, c.hs_distance))

    def cnot_counts(self) -> List[int]:
        return sorted({c.cnot_count for c in self.circuits})

    def by_cnot_count(self, count: int) -> List[ApproximateCircuit]:
        return [c for c in self.circuits if c.cnot_count == count]

    def best_per_cnot_count(self) -> Dict[int, ApproximateCircuit]:
        """Lowest-HS candidate at each CNOT depth."""
        out: Dict[int, ApproximateCircuit] = {}
        for c in self.circuits:
            current = out.get(c.cnot_count)
            if current is None or c.hs_distance < current.hs_distance:
                out[c.cnot_count] = c
        return out

    def summary(self) -> str:
        counts = self.cnot_counts()
        return (
            f"{len(self.circuits)} approximate circuits over "
            f"{self.num_qubits} qubits; CNOTs {counts[0]}..{counts[-1]}; "
            f"HS {min(c.hs_distance for c in self.circuits):.4f}.."
            f"{max(c.hs_distance for c in self.circuits):.4f}"
            if counts
            else "empty set"
        )


def _records_to_dicts(records: Sequence[SynthesisRecord]) -> List[dict]:
    return [
        {
            "placements": [list(p) for p in r.structure.placements],
            "params": list(map(float, r.params)),
            "hs": float(r.hs_distance),
        }
        for r in records
    ]


def _dicts_to_records(
    num_qubits: int, dicts: Sequence[dict]
) -> List[SynthesisRecord]:
    out = []
    for d in dicts:
        structure = CircuitStructure(
            num_qubits, tuple(tuple(p) for p in d["placements"])
        )
        out.append(
            SynthesisRecord(
                structure=structure,
                params=np.asarray(d["params"], dtype=np.float64),
                hs_distance=float(d["hs"]),
            )
        )
    return out


def _dedupe(records: List[SynthesisRecord]) -> List[SynthesisRecord]:
    """Drop near-duplicate candidates (same structure, ~same distance)."""
    seen = set()
    out = []
    for r in records:
        key = (r.structure.placements, round(r.hs_distance, 4))
        if key in seen:
            continue
        seen.add(key)
        out.append(r)
    return out


def generate_approximate_circuits(
    target: Union[np.ndarray, QuantumCircuit],
    *,
    tool: str = "qsearch",
    coupling: Optional[Sequence[Edge]] = None,
    max_hs: float = MIN_HS_THRESHOLD,
    max_cnots: Optional[int] = None,
    seed: int = 7,
    use_cache: bool = True,
    synthesizer_options: Optional[dict] = None,
    reference: Optional[QuantumCircuit] = None,
) -> ApproximateCircuitSet:
    """Run an instrumented synthesis tool and pool its intermediates.

    Parameters
    ----------
    target:
        Target unitary or a circuit (whose unitary becomes the target,
        mirroring ``qiskit.quantum_info.Operator(circuit).data``).
    tool:
        ``"qsearch"`` (A*, many intermediates), ``"qfast"`` (greedy beam,
        fewer intermediates, scales wider), or ``"compress"`` (block
        deletion from a known exact ``reference`` — the right tool for
        permutation-like targets whose HS landscape defeats growth-based
        search).
    coupling:
        CNOT placement restriction (device layout awareness); ignored by
        ``"compress"``, which inherits the reference's placements.
    max_hs:
        Keep intermediates at HS distance <= this; the paper never goes
        below 0.1. Pass ``float("inf")`` to keep everything.
    max_cnots:
        Override the tool's depth limit.
    seed:
        Seed for the synthesis optimiser restarts (full determinism).
    use_cache:
        Reuse cached synthesis runs for identical (target, settings).
    reference:
        Exact ``{1q, cx}`` circuit for ``tool="compress"``; when ``target``
        is itself a circuit it doubles as the default reference.
    """
    if isinstance(target, QuantumCircuit):
        if reference is None:
            reference = target
        target = target.unitary()
    target = np.asarray(target, dtype=np.complex128)
    num_qubits = int(round(np.log2(target.shape[0])))

    if max_hs < MIN_HS_THRESHOLD:
        raise ValueError(
            f"max_hs must be >= {MIN_HS_THRESHOLD} (paper's widest filter); "
            f"got {max_hs}"
        )

    options = dict(synthesizer_options or {})
    if max_cnots is not None:
        options["max_cnots"] = max_cnots
    settings = {
        "tool": tool,
        "coupling": sorted(map(tuple, coupling)) if coupling else None,
        "seed": seed,
        "options": {k: repr(v) for k, v in sorted(options.items())},
        "version": 4,
    }
    if tool == "compress":
        if reference is None:
            raise ValueError('tool="compress" needs a reference circuit')
        from ..circuits.qasm import to_qasm

        settings["reference"] = to_qasm(reference)
    key = cache_key(target, settings)

    records: Optional[List[SynthesisRecord]] = None
    if use_cache:
        cached = load_records(key)
        if cached is not None:
            records = _dicts_to_records(num_qubits, cached)

    if records is None:
        if tool == "qsearch":
            synth = QSearchSynthesizer(coupling, seed=seed, **options)
            result = synth.synthesize(target)
        elif tool == "qfast":
            synth = QFastSynthesizer(coupling, seed=seed, **options)
            result = synth.synthesize(target)
        elif tool == "compress":
            from .compression import CompressionSynthesizer

            options.pop("beam_width", None)
            options.pop("patience", None)
            synth = CompressionSynthesizer(seed=seed, **options)
            result = synth.synthesize(target, reference)
        else:
            raise ValueError(f"unknown synthesis tool {tool!r}")
        records = result.intermediates
        if use_cache:
            store_records(key, _records_to_dicts(records))

    records = _dedupe(records)
    pool = [
        ApproximateCircuit(
            circuit=r.circuit(),
            hs_distance=r.hs_distance,
            cnot_count=r.cnot_count,
            source=tool,
        )
        for r in records
        if r.hs_distance <= max_hs
    ]
    exact_records = [r for r in records if r.hs_distance < 1e-6]
    exact = None
    if exact_records:
        r = min(exact_records, key=lambda r: (r.cnot_count, r.hs_distance))
        exact = ApproximateCircuit(
            circuit=r.circuit(name="exact_synth"),
            hs_distance=r.hs_distance,
            cnot_count=r.cnot_count,
            source=tool,
        )
    return ApproximateCircuitSet(target, pool, exact=exact)
