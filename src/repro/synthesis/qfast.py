"""QFast-style greedy hierarchical synthesis.

QFast trades the optimality of QSearch's A* for speed: it grows the circuit
greedily, at each step committing to the block placement that most improves
the objective, and never backtracks. It therefore "is not guaranteed to be
optimal and gives less of a choice of approximate circuits, but handles
circuits with more qubits ... within acceptable search times" (paper §4).

The paper drives the real QFast through
``model_options={"partial_solution_callback": fn}`` to harvest partial
solutions; the same interface is reproduced here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .objective import CircuitStructure, optimize_structure
from .qsearch import Edge, SynthesisRecord, SynthesisResult, _default_edges

__all__ = ["QFastSynthesizer"]


class QFastSynthesizer:
    """Greedy block-growth synthesis (a QFast analogue).

    Parameters
    ----------
    coupling:
        Allowed CNOT placements (``None`` = all-to-all).
    success_threshold:
        HS distance treated as converged.
    max_cnots:
        Growth limit.
    patience:
        Consecutive non-improving depth extensions tolerated before the
        greedy search gives up; raise it to force deep pools for targets
        (like wide Toffolis) whose cost plateaus before it drops.
    model_options:
        Recognises ``"partial_solution_callback"``: a callable invoked with
        each committed partial circuit (a :class:`QuantumCircuit`) exactly
        like the paper's harvesting hook.
    """

    def __init__(
        self,
        coupling: Optional[Sequence[Edge]] = None,
        *,
        success_threshold: float = 1e-8,
        max_cnots: int = 24,
        restarts: int = 1,
        beam_width: int = 3,
        patience: int = 2,
        optimizer: str = "L-BFGS-B",
        maxiter: int = 250,
        seed: Optional[int] = None,
        model_options: Optional[Dict] = None,
    ) -> None:
        self.coupling = coupling
        self.success_threshold = success_threshold
        self.max_cnots = max_cnots
        self.restarts = restarts
        self.beam_width = max(1, beam_width)
        self.patience = max(1, patience)
        self.optimizer = optimizer
        self.maxiter = maxiter
        self.seed = seed
        options = dict(model_options or {})
        self.partial_solution_callback: Optional[
            Callable[[QuantumCircuit], None]
        ] = options.pop("partial_solution_callback", None)
        if options:
            raise ValueError(f"unknown model_options keys: {sorted(options)}")

    def synthesize(self, target: np.ndarray) -> SynthesisResult:
        """Greedy growth: commit the best single-block extension each step."""
        target = np.asarray(target, dtype=np.complex128)
        num_qubits = int(round(np.log2(target.shape[0])))
        if target.shape != (2**num_qubits, 2**num_qubits):
            raise ValueError(f"bad target shape {target.shape}")
        edges = list(self.coupling) if self.coupling else _default_edges(num_qubits)
        rng = np.random.default_rng(self.seed)

        intermediates: List[SynthesisRecord] = []

        def evaluate(structure: CircuitStructure, warm) -> SynthesisRecord:
            result = optimize_structure(
                target,
                structure,
                restarts=self.restarts,
                initial_params=warm,
                method=self.optimizer,
                maxiter=self.maxiter,
                rng=rng,
                tol=self.success_threshold,
            )
            record = SynthesisRecord(
                structure=structure,
                params=result.params,
                hs_distance=result.cost,
            )
            intermediates.append(record)
            return record

        root = evaluate(CircuitStructure(num_qubits), None)
        best = root
        explored = 1
        self._emit_partial(root)

        # Small-beam greedy growth: expand the few best structures of the
        # current depth, commit the best few children, never backtrack to a
        # shallower depth. beam_width=1 is pure greedy; the small default
        # beam resolves ties between equally-scored first placements.
        beam: List[SynthesisRecord] = [root]
        stalls = 0
        while (
            best.hs_distance >= self.success_threshold
            and beam
            and beam[0].cnot_count < self.max_cnots
            and stalls < self.patience
        ):
            depth_best = min(r.hs_distance for r in beam)
            children: List[SynthesisRecord] = []
            for node in beam:
                for edge in edges:
                    child = evaluate(node.structure.extended(edge), node.params)
                    explored += 1
                    children.append(child)
                    if child.hs_distance < best.hs_distance:
                        best = child
                    if best.hs_distance < self.success_threshold:
                        self._emit_partial(best)
                        return SynthesisResult(
                            best, intermediates, True, explored, target
                        )
            if not children:
                break
            children.sort(key=lambda r: r.hs_distance)
            beam = children[: self.beam_width]
            self._emit_partial(beam[0])
            if beam[0].hs_distance >= depth_best - 1e-12:
                stalls += 1
            else:
                stalls = 0

        success = best.hs_distance < self.success_threshold
        return SynthesisResult(best, intermediates, success, explored, target)

    def _emit_partial(self, record: SynthesisRecord) -> None:
        if self.partial_solution_callback is not None:
            self.partial_solution_callback(record.circuit(name="qfast_partial"))
