"""Fast objective evaluation for the QSearch ansatz.

Synthesis spends its whole budget evaluating ``cost(params)`` and its
gradient for structures of the fixed shape "U3 layer + (CX + U3 pair)*".
The generic path (:mod:`repro.linalg.gradients`) costs ~90 tensordot calls
per evaluation, which is pure Python/NumPy dispatch overhead at these
dimensions (8-32). This evaluator exploits the ansatz's structure:

* CX is a basis permutation — applying it is one fancy-index, no matmul;
* a one-qubit gate application is one broadcast ``matmul`` on a
  ``(X, 2, Y*N)`` view — no tensordot, no moveaxis;
* the objective only needs ``Tr(T^+ dU/dp)``, never ``dU/dp`` itself; by
  trace cyclicity ``Tr(T^+ S dE P) = Tr((P T^+ S) dE)``, so each gate's
  three parameter derivatives reduce to one matmul plus a 2x2 partial
  trace.

Net effect: ~10x fewer NumPy calls per evaluation, which translates
directly into synthesis throughput. Results are bit-compatible with the
generic path (cross-validated in the test suite).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..linalg.gradients import u3_matrix_and_derivatives
from .objective import CircuitStructure

__all__ = ["StructureEvaluator"]


class StructureEvaluator:
    """Pre-compiled cost/gradient evaluator for one (target, structure)."""

    def __init__(self, target: np.ndarray, structure: CircuitStructure) -> None:
        self.structure = structure
        n = structure.num_qubits
        self.num_qubits = n
        self.dim = 2**n
        target = np.asarray(target, dtype=np.complex128)
        if target.shape != (self.dim, self.dim):
            raise ValueError("target/structure dimension mismatch")
        self.target = target
        self.target_adj = np.ascontiguousarray(target.conj().T)
        self.num_params = structure.num_params

        # Op tape: ("u3", qubit, param_offset) | ("cx", permutation).
        idx = np.arange(self.dim)
        ops: List[Tuple] = []
        offset = 0
        for q in range(n):
            ops.append(("u3", q, offset))
            offset += 3
        for a, b in structure.placements:
            perm = np.where((idx >> a) & 1 == 1, idx ^ (1 << b), idx)
            ops.append(("cx", perm))
            for q in (a, b):
                ops.append(("u3", q, offset))
                offset += 3
        self.ops = ops
        # Per-qubit (X, Y) split: axis sizes around the qubit's bit.
        self._xy = [(2 ** (n - 1 - q), 2**q) for q in range(n)]

    # ------------------------------------------------------------------
    def _apply_1q(self, gate: np.ndarray, mat: np.ndarray, qubit: int) -> np.ndarray:
        """``embed(gate) @ mat`` for a one-qubit gate (mat is (dim, dim))."""
        x, y = self._xy[qubit]
        view = mat.reshape(x, 2, y * self.dim)
        return np.matmul(gate, view).reshape(self.dim, self.dim)

    def _apply_1q_batch(
        self, gates: np.ndarray, mat: np.ndarray, qubit: int
    ) -> np.ndarray:
        """Apply a batch of 2x2 matrices: returns (batch, dim, dim)."""
        x, y = self._xy[qubit]
        view = mat.reshape(x, 2, y * self.dim)
        out = np.matmul(gates[:, None, :, :], view[None, :, :, :])
        return out.reshape(gates.shape[0], self.dim, self.dim)

    def _u3_matrices(self, params: np.ndarray):
        mats = []
        for kind, arg, *rest in self.ops:
            if kind == "u3":
                off = rest[0]
                mats.append(u3_matrix_and_derivatives(*params[off : off + 3]))
            else:
                mats.append(None)
        return mats

    # ------------------------------------------------------------------
    def unitary(self, params: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=np.float64)
        u = np.eye(self.dim, dtype=np.complex128)
        mats = self._u3_matrices(params)
        for op, m in zip(self.ops, mats):
            if op[0] == "u3":
                u = self._apply_1q(m[0], u, op[1])
            else:
                u = u[op[1]]
        return u

    def smooth_cost(self, params: np.ndarray) -> float:
        u = self.unitary(params)
        overlap = abs(np.einsum("ij,ij->", self.target.conj(), u)) / self.dim
        return max(0.0, 1.0 - overlap * overlap)

    def hs_distance(self, params: np.ndarray) -> float:
        return math.sqrt(max(0.0, self.smooth_cost(params)))

    def smooth_cost_and_grad(
        self, params: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        params = np.asarray(params, dtype=np.float64)
        n_ops = len(self.ops)
        mats = self._u3_matrices(params)

        # Forward sweep: prefixes[j] = product of ops[0..j-1] applied to I.
        prefixes: List[np.ndarray] = [np.eye(self.dim, dtype=np.complex128)]
        acc = prefixes[0]
        for op, m in zip(self.ops, mats):
            if op[0] == "u3":
                acc = self._apply_1q(m[0], acc, op[1])
            else:
                acc = acc[op[1]]
            prefixes.append(acc)
        u = prefixes[-1]

        t_conj = self.target.conj()
        overlap = np.einsum("ij,ij->", t_conj, u)
        d = float(self.dim)
        val = max(0.0, 1.0 - (abs(overlap) / d) ** 2)

        grad = np.zeros(self.num_params, dtype=np.float64)
        # Backward sweep. Maintain M_T = (T^+ S_j)^T where S_j is the
        # product of ops[j..L-1]; fold each op into M_T from the right.
        # Right-multiplying M by embed(g) equals applying embed(g^T) to
        # M^T, which reuses the same fast kernels.
        m_t = np.ascontiguousarray(self.target_adj.T)  # (T^+)^T, S_L = I
        coeff = -2.0 * np.conj(overlap) / (d * d)
        for j in range(n_ops - 1, -1, -1):
            op = self.ops[j]
            if op[0] == "u3":
                qubit, off = op[1], op[2]
                gate, dgate = mats[j]
                # A = P_{j-1} @ (T^+ S_j) = prefixes[j] @ m_t.T
                a = prefixes[j] @ m_t.T
                # Partial trace over all qubits except `qubit`:
                # B[b, a] = sum_{x,y} A[(x,b,y), (x,a,y)].
                x, y = self._xy[qubit]
                a6 = a.reshape(x, 2, y, x, 2, y)
                b = np.einsum("xbyxay->ba", a6)
                # inner_p = Tr(A dE_p) = sum(dG_p * B^T)
                inner = np.einsum("pab,ab->p", dgate, b.T)
                grad[off : off + 3] = np.real(coeff * inner)
                # Fold gate into the suffix: m_t = embed(g^T) @ m_t.
                m_t = self._apply_1q(gate.T, m_t, qubit)
            else:
                m_t = m_t[op[1]]
        return val, grad
