"""Numerical two-qubit decomposition into at most three CNOTs.

Any two-qubit unitary is expressible with <= 3 CNOTs plus one-qubit gates
(Vatan-Williams); this routine finds the CNOT-minimal realisation by
instantiating the QSearch ansatz at increasing depth — the same primitive
QFast uses to lower its generic blocks to a native gate set.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .objective import CircuitStructure, optimize_structure

__all__ = ["decompose_two_qubit_unitary"]


def decompose_two_qubit_unitary(
    target: np.ndarray,
    *,
    tol: float = 1e-8,
    restarts: int = 4,
    seed: Optional[int] = None,
) -> Tuple[QuantumCircuit, int]:
    """Decompose a 4x4 unitary into ``{u3, cx}`` with minimal CNOT count.

    Returns ``(circuit, cnot_count)``; raises if even three CNOTs cannot
    reach ``tol`` (which indicates a non-unitary input).
    """
    target = np.asarray(target, dtype=np.complex128)
    if target.shape != (4, 4):
        raise ValueError("expected a 4x4 matrix")
    rng = np.random.default_rng(seed)
    for k in range(4):
        structure = CircuitStructure(2, tuple([(0, 1)] * k))
        result = optimize_structure(
            target,
            structure,
            restarts=restarts + k,
            method="L-BFGS-B",
            maxiter=600,
            rng=rng,
            tol=tol,
        )
        if result.cost < tol:
            return result.circuit(name=f"twoq_{k}cx"), k
    raise ValueError(
        "could not decompose with 3 CNOTs; is the input actually unitary?"
    )
