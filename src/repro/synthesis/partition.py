"""Partitioned approximation of wide circuits (paper §6.5).

QSearch is limited to ~4 qubits and QFast to ~6, so the paper proposes
"breaking a large program into pieces; it may be possible to create a
large circuit out of many small circuits". This module implements that
idea:

1. **Partition** a circuit into contiguous blocks, each touching at most
   ``max_block_qubits`` qubits (greedy sweep: a block closes when adding
   the next gate would widen it past the limit).
2. **Approximate** each block independently with the instrumented
   synthesiser, producing a per-block frontier of (CNOT count, HS
   distance) candidates.
3. **Splice** one candidate per block back into a full-width circuit. A
   per-block HS budget ``epsilon`` selects the cheapest candidate within
   budget; sweeping ``epsilon`` yields a frontier of full circuits from
   "exact and deep" to "crude and shallow".

The total HS error is approximately sub-additive over blocks (for small
errors, ``d(AB, A'B') <= d(A, A') + d(B, B')`` up to second order), which
the property tests check empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from .approximations import (
    ApproximateCircuit,
    ApproximateCircuitSet,
    generate_approximate_circuits,
)
from .objective import hs_distance

__all__ = ["CircuitBlock", "partition_circuit", "PartitionedSynthesizer"]


@dataclass
class CircuitBlock:
    """A contiguous slice of a circuit over a small qubit subset.

    ``qubits[i]`` is the parent-circuit qubit playing local role ``i``.
    """

    qubits: Tuple[int, ...]
    circuit: QuantumCircuit  # over local indices 0..len(qubits)-1

    @property
    def width(self) -> int:
        return len(self.qubits)


def partition_circuit(
    circuit: QuantumCircuit, max_block_qubits: int = 3
) -> List[CircuitBlock]:
    """Split into contiguous blocks over at most ``max_block_qubits`` qubits.

    Greedy: gates join the current block while the union of touched qubits
    stays within the limit; otherwise the block is closed and a new one
    starts. Barriers and measurements close the current block.
    """
    if max_block_qubits < 2:
        raise ValueError("blocks need at least 2 qubits")
    blocks: List[CircuitBlock] = []
    current_gates: List[Gate] = []
    current_qubits: set = set()

    def close() -> None:
        nonlocal current_gates, current_qubits
        if not current_gates:
            return
        ordered = tuple(sorted(current_qubits))
        local = {q: i for i, q in enumerate(ordered)}
        sub = QuantumCircuit(len(ordered), name="block")
        for g in current_gates:
            sub.append(Gate(g.name, tuple(local[q] for q in g.qubits), g.params))
        blocks.append(CircuitBlock(ordered, sub))
        current_gates = []
        current_qubits = set()

    for gate in circuit:
        if gate.name in ("barrier", "measure"):
            close()
            continue
        if gate.num_qubits > max_block_qubits:
            raise ValueError(
                f"gate {gate.name!r} is wider than the block limit"
            )
        union = current_qubits | set(gate.qubits)
        if len(union) > max_block_qubits:
            close()
            union = set(gate.qubits)
        current_gates.append(gate)
        current_qubits = union
    close()
    return blocks


class PartitionedSynthesizer:
    """Approximate a wide circuit block-by-block.

    Parameters
    ----------
    max_block_qubits:
        Partition width limit (QSearch-friendly: 2-3).
    tool:
        Synthesis tool used per block.
    budgets:
        Per-block HS budgets to sweep when splicing; each budget yields
        one full-width candidate.
    """

    def __init__(
        self,
        *,
        max_block_qubits: int = 3,
        tool: str = "qsearch",
        budgets: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5),
        seed: int = 17,
        synthesizer_options: Optional[dict] = None,
        use_cache: bool = True,
    ) -> None:
        self.max_block_qubits = max_block_qubits
        self.tool = tool
        self.budgets = tuple(budgets)
        self.seed = seed
        self.synthesizer_options = dict(synthesizer_options or {})
        self.use_cache = use_cache

    # ------------------------------------------------------------------
    def block_pools(
        self, blocks: Sequence[CircuitBlock]
    ) -> List[ApproximateCircuitSet]:
        pools = []
        for i, block in enumerate(blocks):
            pools.append(
                generate_approximate_circuits(
                    block.circuit.unitary(),
                    tool=self.tool,
                    max_hs=float("inf"),
                    seed=self.seed + i,
                    use_cache=self.use_cache,
                    synthesizer_options=dict(self.synthesizer_options),
                )
            )
        return pools

    @staticmethod
    def _pick(pool: ApproximateCircuitSet, budget: float) -> ApproximateCircuit:
        """Cheapest candidate within the HS budget (else the most exact)."""
        within = [c for c in pool if c.hs_distance <= budget]
        if within:
            return min(within, key=lambda c: (c.cnot_count, c.hs_distance))
        return pool.minimal_hs()

    def synthesize(self, circuit: QuantumCircuit) -> ApproximateCircuitSet:
        """Produce a frontier of full-width approximations of ``circuit``."""
        target = circuit.unitary()
        blocks = partition_circuit(circuit, self.max_block_qubits)
        if not blocks:
            raise ValueError("circuit has no unitary gates to partition")
        pools = self.block_pools(blocks)

        candidates: Dict[Tuple[int, ...], ApproximateCircuit] = {}
        for budget in self.budgets:
            picks = [self._pick(pool, budget) for pool in pools]
            signature = tuple(id(p) for p in picks)
            if signature in candidates:
                continue
            full = QuantumCircuit(
                circuit.num_qubits, name=f"partitioned_eps{budget:g}"
            )
            for block, pick in zip(blocks, picks):
                full.compose(pick.circuit, qubits=block.qubits)
            candidates[signature] = ApproximateCircuit(
                circuit=full,
                hs_distance=hs_distance(target, full.unitary()),
                cnot_count=full.cnot_count,
                source=f"partition[{self.tool}]",
            )
        return ApproximateCircuitSet(target, candidates.values())
