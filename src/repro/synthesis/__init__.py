"""Instrumented circuit synthesis: QSearch/QFast analogues + approximations."""

from .objective import (
    hs_distance,
    hs_overlap,
    CircuitStructure,
    HilbertSchmidtObjective,
    optimize_structure,
    OptimizationResult,
)
from .qsearch import QSearchSynthesizer, SynthesisRecord, SynthesisResult
from .qfast import QFastSynthesizer
from .twoq import decompose_two_qubit_unitary
from .compression import CompressionSynthesizer, structure_from_circuit
from .fastgrad import StructureEvaluator
from .partition import CircuitBlock, PartitionedSynthesizer, partition_circuit
from .approximations import (
    ApproximateCircuit,
    ApproximateCircuitSet,
    generate_approximate_circuits,
    MIN_HS_THRESHOLD,
)

__all__ = [
    "hs_distance",
    "hs_overlap",
    "CircuitStructure",
    "HilbertSchmidtObjective",
    "optimize_structure",
    "OptimizationResult",
    "QSearchSynthesizer",
    "SynthesisRecord",
    "SynthesisResult",
    "QFastSynthesizer",
    "decompose_two_qubit_unitary",
    "CompressionSynthesizer",
    "structure_from_circuit",
    "StructureEvaluator",
    "CircuitBlock",
    "PartitionedSynthesizer",
    "partition_circuit",
    "ApproximateCircuit",
    "ApproximateCircuitSet",
    "generate_approximate_circuits",
    "MIN_HS_THRESHOLD",
]
