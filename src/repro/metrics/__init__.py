"""Process and distribution metrics used to score circuits."""

from .process import (
    hs_distance,
    hs_overlap,
    average_gate_fidelity,
    process_fidelity,
    frobenius_distance,
)
from .selection import (
    SelectionStrategy,
    minimal_hs_strategy,
    shortest_strategy,
    hs_threshold_strategy,
    noise_aware_strategy,
    oracle_strategy,
    standard_strategies,
    evaluate_strategies,
    predicted_total_error,
)
from .distributions import (
    jensen_shannon_distance,
    kl_divergence,
    total_variation_distance,
    hellinger_distance,
    UNIFORM_NOISE_JS,
)

__all__ = [
    "hs_distance",
    "hs_overlap",
    "average_gate_fidelity",
    "process_fidelity",
    "frobenius_distance",
    "jensen_shannon_distance",
    "kl_divergence",
    "total_variation_distance",
    "hellinger_distance",
    "UNIFORM_NOISE_JS",
    "SelectionStrategy",
    "minimal_hs_strategy",
    "shortest_strategy",
    "hs_threshold_strategy",
    "noise_aware_strategy",
    "oracle_strategy",
    "standard_strategies",
    "evaluate_strategies",
    "predicted_total_error",
]
