"""Distances between measurement distributions.

The paper scores Toffoli outputs with the Jensen-Shannon distance and
discusses Kullback-Leibler and Total Variation as alternatives. The JS
convention here matches ``scipy.spatial.distance.jensenshannon``: natural
log, and the *square root* of the divergence (a true metric).

Noise floor: with all controls in uniform superposition, an n-qubit
Toffoli's ideal output is uniform over half the basis states; the JS
distance from that to the fully uniform distribution ("random noise") is
``sqrt(ln(4/3)/2 + ln(2/3)/4 + ln(2)/4) = 0.46453...`` for every n — the
0.465 line the paper draws in Figures 7 and 15.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "jensen_shannon_distance",
    "kl_divergence",
    "total_variation_distance",
    "hellinger_distance",
    "UNIFORM_NOISE_JS",
]

_EPS = 1e-300


def _validate(p: np.ndarray, q: np.ndarray) -> tuple:
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch {p.shape} vs {q.shape}")
    if (p < -1e-12).any() or (q < -1e-12).any():
        raise ValueError("negative probabilities")
    p = np.clip(p, 0.0, None)
    q = np.clip(q, 0.0, None)
    ps, qs = p.sum(), q.sum()
    if ps <= 0 or qs <= 0:
        raise ValueError("distribution has no mass")
    return p / ps, q / qs


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``KL(p || q)`` in nats; infinite when ``q`` lacks support of ``p``."""
    p, q = _validate(p, q)
    mask = p > 0
    if (q[mask] <= 0).any():
        return math.inf
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def jensen_shannon_distance(p: np.ndarray, q: np.ndarray) -> float:
    """JS distance: ``sqrt(JSD(p, q))`` with natural-log divergence.

    Symmetric, bounded by ``sqrt(ln 2) ~ 0.8326``, and a metric.
    """
    p, q = _validate(p, q)
    m = 0.5 * (p + q)
    jsd = 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)
    return math.sqrt(max(0.0, jsd))


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``0.5 * sum |p - q|`` in ``[0, 1]``."""
    p, q = _validate(p, q)
    return float(0.5 * np.abs(p - q).sum())


def hellinger_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``sqrt(1 - sum(sqrt(p q)))`` in ``[0, 1]``."""
    p, q = _validate(p, q)
    bc = float(np.sum(np.sqrt(p * q)))
    return math.sqrt(max(0.0, 1.0 - bc))


#: JS distance between "uniform over half the outcomes" (the ideal
#: superposition-input Toffoli output) and the fully uniform distribution —
#: the paper's random-noise reference line (~0.465, any qubit count).
UNIFORM_NOISE_JS = math.sqrt(
    0.5 * math.log(4.0 / 3.0) + 0.25 * math.log(2.0 / 3.0) + 0.25 * math.log(2.0)
)
