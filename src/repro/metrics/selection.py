"""Approximate-circuit selection strategies.

The paper's Observation 2: "To capitalize on the potential of approximate
circuits, a selection method and an associated metric are required to
ensure superior performance under noise" — and its conclusion that process
distance alone is not enough ("At the very least, target machine noise
levels need to be taken into account").

This module implements the candidate strategies that discussion implies
and a harness to race them:

* ``minimal_hs`` — pure process metric (the paper's "Minimal HS" series);
* ``shortest`` — pure depth (ignore approximation quality entirely);
* ``hs_threshold`` — shortest circuit within an HS budget;
* ``noise_aware`` — minimise a predicted total-error score combining the
  approximation error with the device's expected circuit infidelity,
  which is the paper's suggested direction;
* ``oracle`` — pick by actually executing on the backend (an upper bound:
  the paper notes "best circuit selection is performed using
  simulation/execution").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..synthesis.approximations import ApproximateCircuit, ApproximateCircuitSet

__all__ = [
    "SelectionStrategy",
    "minimal_hs_strategy",
    "shortest_strategy",
    "hs_threshold_strategy",
    "noise_aware_strategy",
    "oracle_strategy",
    "standard_strategies",
    "evaluate_strategies",
    "predicted_total_error",
]


@dataclass(frozen=True)
class SelectionStrategy:
    """A named rule mapping a circuit pool to one chosen circuit."""

    name: str
    select: Callable[[ApproximateCircuitSet], ApproximateCircuit]


def minimal_hs_strategy() -> SelectionStrategy:
    return SelectionStrategy("minimal_hs", lambda pool: pool.minimal_hs())


def shortest_strategy() -> SelectionStrategy:
    return SelectionStrategy("shortest", lambda pool: pool.shortest())


def hs_threshold_strategy(threshold: float = 0.1) -> SelectionStrategy:
    """Shortest circuit whose HS distance is within ``threshold``."""

    def select(pool: ApproximateCircuitSet) -> ApproximateCircuit:
        within = [c for c in pool if c.hs_distance <= threshold]
        if not within:
            return pool.minimal_hs()
        return min(within, key=lambda c: (c.cnot_count, c.hs_distance))

    return SelectionStrategy(f"hs<={threshold:g}", select)


def predicted_total_error(
    candidate: ApproximateCircuit,
    cnot_error: float,
    *,
    sq_error: float = 3e-4,
) -> float:
    """A first-principles error prediction for one candidate.

    Combines (a) the approximation's intrinsic process error — its HS
    distance — with (b) the expected incoherent error accumulated by its
    gates on the target device: ``1 - (1-p_cx)^n_cx (1-p_1q)^n_1q``.
    Both terms live on a [0, 1] "how wrong is the output" scale, so the
    sum is a usable (if crude) total-error score.
    """
    gate_count = candidate.circuit.gate_count
    n_cx = candidate.cnot_count
    n_1q = max(0, gate_count - n_cx)
    infidelity = 1.0 - (1.0 - cnot_error) ** n_cx * (1.0 - sq_error) ** n_1q
    return candidate.hs_distance + infidelity


def noise_aware_strategy(
    cnot_error: float, *, sq_error: float = 3e-4
) -> SelectionStrategy:
    """Minimise the predicted total error for a given device noise level.

    As the device's CNOT error grows, this strategy automatically shifts
    from the minimal-HS circuit toward shorter, cruder ones — exactly the
    behaviour the paper's §6.2 sweeps show the *actual* best circuit has.
    """

    def select(pool: ApproximateCircuitSet) -> ApproximateCircuit:
        return min(
            pool,
            key=lambda c: predicted_total_error(
                c, cnot_error, sq_error=sq_error
            ),
        )

    return SelectionStrategy(f"noise_aware(p={cnot_error:g})", select)


def oracle_strategy(
    backend,
    error_of: Callable[[np.ndarray], float],
) -> SelectionStrategy:
    """Select by executing every candidate (the paper's simulate-and-pick).

    ``error_of`` maps a measured distribution to a scalar error (lower is
    better) — e.g. ``lambda probs: abs(magnetization(probs) - ideal)``.
    """

    def select(pool: ApproximateCircuitSet) -> ApproximateCircuit:
        return min(pool, key=lambda c: error_of(backend.run(c.circuit)))

    return SelectionStrategy("oracle", select)


def standard_strategies(cnot_error: float) -> List[SelectionStrategy]:
    """The comparison set used by the selection ablation."""
    return [
        minimal_hs_strategy(),
        shortest_strategy(),
        hs_threshold_strategy(0.1),
        hs_threshold_strategy(0.3),
        noise_aware_strategy(cnot_error),
    ]


def evaluate_strategies(
    pool: ApproximateCircuitSet,
    strategies: Sequence[SelectionStrategy],
    backend,
    error_of: Callable[[np.ndarray], float],
) -> Dict[str, Dict[str, float]]:
    """Race strategies on one pool: measured error of each one's pick.

    Returns ``{strategy: {"cnots": ..., "hs": ..., "error": ...}}`` plus an
    ``"oracle"`` row giving the pool's true best for reference.
    """
    # The oracle row scans the whole pool and every strategy's pick is in
    # it, so measure the pool once up front — batched when the backend
    # supports it (``run_many``), else a plain run loop.  Circuits are
    # hashable, so duplicated picks never re-execute.
    candidates = list(pool)
    run_many = getattr(backend, "run_many", None)
    if run_many is not None:
        distributions = list(run_many([c.circuit for c in candidates]))
    else:
        distributions = [backend.run(c.circuit) for c in candidates]
    errors: Dict[object, float] = {}
    for candidate, probs in zip(candidates, distributions):
        errors.setdefault(candidate.circuit, float(error_of(probs)))

    def measured_error(circuit) -> float:
        if circuit not in errors:
            errors[circuit] = float(error_of(backend.run(circuit)))
        return errors[circuit]

    out: Dict[str, Dict[str, float]] = {}
    for strategy in strategies:
        pick = strategy.select(pool)
        out[strategy.name] = {
            "cnots": float(pick.cnot_count),
            "hs": float(pick.hs_distance),
            "error": measured_error(pick.circuit),
        }
    best = min(candidates, key=lambda c: measured_error(c.circuit))
    out["oracle"] = {
        "cnots": float(best.cnot_count),
        "hs": float(best.hs_distance),
        "error": measured_error(best.circuit),
    }
    return out
