"""Process metrics: distances between unitaries/channels.

The Hilbert-Schmidt distance is re-exported from the synthesis objective
(one definition, one implementation); this module adds the fidelity-style
metrics the paper's §6.5 roadmap lists for future selection studies.
"""

from __future__ import annotations

import math

import numpy as np

from ..synthesis.objective import hs_distance, hs_overlap

__all__ = [
    "hs_distance",
    "hs_overlap",
    "average_gate_fidelity",
    "process_fidelity",
    "frobenius_distance",
]


def process_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """``|Tr(a^+ b)|^2 / d^2`` — entanglement fidelity of the pair."""
    overlap = hs_overlap(a, b)
    return overlap * overlap


def average_gate_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Average over Haar input states of the output-state fidelity.

    ``F_avg = (d * F_pro + 1) / (d + 1)``.
    """
    d = a.shape[0]
    return (d * process_fidelity(a, b) + 1.0) / (d + 1.0)


def frobenius_distance(a: np.ndarray, b: np.ndarray, *, align_phase: bool = True) -> float:
    """Frobenius norm ``||a - b||_F``, optionally after phase alignment."""
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    if align_phase:
        overlap = np.trace(a.conj().T @ b)
        if abs(overlap) > 1e-300:
            b = b * (abs(overlap) / overlap)
    return float(np.linalg.norm(a - b))
