"""Semantic verification of transpiled circuits.

Transpilation must preserve circuit semantics up to (a) global phase,
(b) the virtual->physical relabelling, and (c) routing SWAPs that leave
virtual qubits on different wires. These helpers check exactly that and are
used by the property-based test suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..sim.statevector import StatevectorSimulator
from .transpiler import TranspileResult

__all__ = ["permute_statevector", "equivalent_under_layout"]


def permute_statevector(state: np.ndarray, perm: Sequence[int]) -> np.ndarray:
    """Relabel qubits of a statevector: new qubit ``i`` = old ``perm[i]``."""
    n = len(perm)
    if state.size != 2**n:
        raise ValueError("permutation length does not match state size")
    if sorted(perm) != list(range(n)):
        raise ValueError(f"{perm} is not a permutation")
    tensor = state.reshape((2,) * n)
    # Qubit q sits on axis n-1-q; destination axis for old qubit perm[i]
    # is n-1-i.
    src_axes = [n - 1 - perm[i] for i in range(n)]
    dst_axes = [n - 1 - i for i in range(n)]
    return np.moveaxis(tensor, src_axes, dst_axes).reshape(-1).copy()


def equivalent_under_layout(
    original: QuantumCircuit,
    result: TranspileResult,
    atol: float = 1e-8,
) -> bool:
    """Check a transpilation preserved the action on ``|0...0>``.

    Simulates both circuits from the all-zero state, moves each virtual
    qubit back from the wire the final layout reports, requires every
    ancilla wire to be exactly ``|0>``, and compares up to global phase.

    Starting from ``|0...0>`` (plus ancilla-zero checking) is the right
    notion of equivalence for routed circuits: routing SWAPs permute wires,
    so full unitary equality does not hold by design.
    """
    sim = StatevectorSimulator()
    psi_orig = sim.run(original.without_measurements()).data

    local, local_final = result.local_circuit()
    psi_phys = sim.run(local.without_measurements()).data

    n = original.num_qubits
    m = local.num_qubits
    # Permutation: new qubit v should be old wire local_final.physical(v);
    # ancilla wires fill the remaining new positions.
    used = list(local_final.physical_qubits[:n])
    ancilla = [w for w in range(m) if w not in used]
    perm = used + ancilla
    psi = permute_statevector(psi_phys, perm)

    tensor = psi.reshape((2,) * m)
    # All ancilla axes (qubits n..m-1 == leading axes) must be |0>.
    for _ in range(m - n):
        if np.linalg.norm(tensor[1]) > atol:
            return False
        tensor = tensor[0]
    reduced = tensor.reshape(-1)

    overlap = np.vdot(psi_orig, reduced)
    return bool(abs(abs(overlap) - 1.0) < atol)
