"""Layout selection: mapping virtual qubits onto physical qubits.

Two policies, matching the two transpilation modes the paper uses:

* :func:`trivial_layout` — virtual ``i`` on physical ``i`` ("optimization
  level 1 with mappings to qubits 0, 1, 2, 3, and 4").
* :func:`noise_aware_layout` — search connected subsets of the device for
  the lowest combined CNOT + readout error ("optimization level 3, which
  ... allows IBM to map virtual qubits to the best available physical
  qubits").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.devices import DeviceSnapshot

__all__ = ["Layout", "trivial_layout", "noise_aware_layout", "connected_subsets"]


@dataclass(frozen=True)
class Layout:
    """An injective map virtual qubit -> physical qubit."""

    virtual_to_physical: Tuple[int, ...]

    def physical(self, virtual: int) -> int:
        return self.virtual_to_physical[virtual]

    @property
    def num_virtual(self) -> int:
        return len(self.virtual_to_physical)

    @property
    def physical_qubits(self) -> Tuple[int, ...]:
        return tuple(self.virtual_to_physical)

    def inverse_map(self) -> Dict[int, int]:
        return {p: v for v, p in enumerate(self.virtual_to_physical)}

    def __post_init__(self) -> None:
        if len(set(self.virtual_to_physical)) != len(self.virtual_to_physical):
            raise ValueError("layout must be injective")


def trivial_layout(num_virtual: int) -> Layout:
    """Virtual ``i`` -> physical ``i``."""
    return Layout(tuple(range(num_virtual)))


def connected_subsets(graph: nx.Graph, size: int) -> List[FrozenSet[int]]:
    """All connected induced subgraphs of ``size`` nodes.

    Uses the standard grow-from-anchor enumeration with an exclusion set so
    each subset is produced exactly once. Heavy-hex devices have max degree
    3, so counts stay small (a few thousand for 65 qubits at size 5).
    """
    results: Set[FrozenSet[int]] = set()

    def grow(current: Set[int], frontier: Set[int], banned: Set[int]) -> None:
        if len(current) == size:
            results.add(frozenset(current))
            return
        frontier = set(frontier)
        local_banned = set(banned)
        while frontier:
            node = frontier.pop()
            new_frontier = frontier | (
                set(graph.neighbors(node)) - current - local_banned - {node}
            )
            grow(current | {node}, new_frontier, local_banned)
            local_banned.add(node)

    nodes = sorted(graph.nodes)
    banned: Set[int] = set()
    for anchor in nodes:
        grow({anchor}, set(graph.neighbors(anchor)) - banned, set(banned))
        banned.add(anchor)
    return sorted(results, key=sorted)


def _subset_score(
    device: DeviceSnapshot,
    subset: Sequence[int],
    *,
    cnot_weight: float = 1.0,
    readout_weight: float = 1.0,
) -> float:
    """Expected-error score of a physical qubit subset (lower is better)."""
    sub = list(subset)
    graph = device.coupling_graph().subgraph(sub)
    edge_errors = [device.edge_error(a, b) for a, b in graph.edges]
    readout = [
        (device.readout_errors[q][0] + device.readout_errors[q][1]) / 2.0
        for q in sub
    ]
    # Fewer couplers means more routing SWAPs, so reward connectivity.
    connectivity_bonus = len(edge_errors) / max(1, len(sub))
    return (
        cnot_weight * float(np.mean(edge_errors))
        + readout_weight * float(np.mean(readout))
        - 0.002 * connectivity_bonus
    )


def noise_aware_layout(
    circuit: QuantumCircuit,
    device: DeviceSnapshot,
    *,
    cnot_weight: float = 1.0,
    readout_weight: float = 1.0,
) -> Layout:
    """Choose the lowest-error connected subset and order it for the circuit.

    Within the winning subset, virtual qubits are assigned greedily so the
    most CNOT-active virtual pairs land on the lowest-error couplers.
    """
    k = circuit.num_qubits
    if k > device.num_qubits:
        raise ValueError(
            f"circuit needs {k} qubits, device {device.name} has {device.num_qubits}"
        )
    graph = device.coupling_graph()
    candidates = connected_subsets(graph, k)
    if not candidates:
        raise ValueError(f"{device.name} has no connected subset of size {k}")
    best = min(
        candidates,
        key=lambda s: _subset_score(
            device, s, cnot_weight=cnot_weight, readout_weight=readout_weight
        ),
    )
    subset = sorted(best)

    # Count virtual-pair CNOT activity.
    activity: Dict[Tuple[int, int], int] = {}
    for gate in circuit:
        if gate.is_unitary and gate.num_qubits == 2:
            pair = tuple(sorted(gate.qubits))
            activity[pair] = activity.get(pair, 0) + 1

    # Greedy assignment: hottest virtual pair -> best available coupler.
    sub_graph = graph.subgraph(subset)
    edges_by_quality = sorted(
        sub_graph.edges, key=lambda e: device.edge_error(*e)
    )
    assignment: Dict[int, int] = {}
    used: Set[int] = set()
    for (va, vb), _count in sorted(activity.items(), key=lambda kv: -kv[1]):
        if va in assignment and vb in assignment:
            continue
        for pa, pb in edges_by_quality:
            if pa in used or pb in used:
                continue
            if va not in assignment and vb not in assignment:
                assignment[va], assignment[vb] = pa, pb
                used.update((pa, pb))
                break
            anchored, free = (va, vb) if va in assignment else (vb, va)
            for cand in (pa, pb):
                if cand not in used and graph.has_edge(assignment[anchored], cand):
                    assignment[free] = cand
                    used.add(cand)
                    break
            if free in assignment:
                break
    # Fill any unassigned virtual qubits with remaining subset members.
    remaining = [p for p in subset if p not in used]
    for v in range(k):
        if v not in assignment:
            assignment[v] = remaining.pop()
    return Layout(tuple(assignment[v] for v in range(k)))
