"""Circuit scheduling and idle-period materialisation.

The paper's first-listed noise source is decoherence — "noise related to
limits on qubit excitation time and program runtime". Gate-attached
thermal relaxation only charges qubits *while they are being driven*; on
real devices qubits also decohere while *waiting* for other qubits'
gates. This pass makes that waiting explicit: an ASAP schedule is
computed and every idle window becomes a ``delay`` gate, which the device
noise models translate into thermal relaxation over the window.

This closes the loop on the paper's depth argument: a deep circuit hurts
twice, through more noisy gates *and* through longer idle exposure for
the qubits not involved in each layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate

__all__ = ["ScheduledGate", "asap_schedule", "insert_idle_delays"]

#: Default durations (ns) matching :meth:`QuantumCircuit.duration`.
_DEFAULT_TIMES = {"measure": 1000.0, "barrier": 0.0}


def _gate_duration(gate: Gate, gate_times: Optional[Dict[str, float]]) -> float:
    if gate.name == "delay":
        return float(gate.params[0])
    if gate_times and gate.name in gate_times:
        return float(gate_times[gate.name])
    if gate.name in _DEFAULT_TIMES:
        return _DEFAULT_TIMES[gate.name]
    return 35.0 if gate.num_qubits == 1 else 300.0


@dataclass(frozen=True)
class ScheduledGate:
    """A gate with its ASAP start time and duration (ns)."""

    gate: Gate
    start: float
    duration: float

    @property
    def finish(self) -> float:
        return self.start + self.duration


def asap_schedule(
    circuit: QuantumCircuit,
    gate_times: Optional[Dict[str, float]] = None,
) -> List[ScheduledGate]:
    """As-soon-as-possible schedule preserving gate order per qubit."""
    finish = [0.0] * circuit.num_qubits
    out: List[ScheduledGate] = []
    for gate in circuit:
        duration = _gate_duration(gate, gate_times)
        start = max((finish[q] for q in gate.qubits), default=0.0)
        out.append(ScheduledGate(gate, start, duration))
        for q in gate.qubits:
            finish[q] = start + duration
    return out


def insert_idle_delays(
    circuit: QuantumCircuit,
    gate_times: Optional[Dict[str, float]] = None,
    *,
    min_idle: float = 1.0,
    pad_end: bool = True,
) -> QuantumCircuit:
    """Return a copy with every idle window materialised as a ``delay``.

    A qubit idles whenever a gate it participates in starts later than the
    qubit's previous activity ended. Windows shorter than ``min_idle`` ns
    are ignored. With ``pad_end`` every qubit is also padded to the
    circuit's total duration (idling until the final measurement).
    """
    schedule = asap_schedule(circuit, gate_times)
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    busy_until = [0.0] * circuit.num_qubits
    for item in schedule:
        for q in item.gate.qubits:
            idle = item.start - busy_until[q]
            if idle >= min_idle:
                out.delay(idle, q)
            busy_until[q] = item.finish
        out.append(item.gate)
    if pad_end and schedule:
        total = max(s.finish for s in schedule)
        for q in range(circuit.num_qubits):
            idle = total - busy_until[q]
            if idle >= min_idle:
                out.delay(idle, q)
    return out
