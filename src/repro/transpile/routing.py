"""SWAP routing onto a device coupling map.

A greedy shortest-path router: whenever a two-qubit gate addresses
non-adjacent physical qubits, SWAPs are inserted along a cheapest path
(weighted by CNOT error so routing prefers good couplers) until the pair is
adjacent. This mirrors the role of Qiskit's stochastic/SABRE routers; the
paper only relies on routing existing, not on a specific algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..noise.devices import DeviceSnapshot
from .layout import Layout

__all__ = ["route_circuit", "RoutedCircuit"]


@dataclass
class RoutedCircuit:
    """Routing output.

    Attributes
    ----------
    circuit:
        Circuit over *physical* qubit indices; every two-qubit gate acts on
        a device coupler.
    initial_layout:
        The layout the router started from.
    final_layout:
        Where each virtual qubit ended up after routing SWAPs.
    swap_count:
        Number of SWAPs inserted.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    swap_count: int

    @property
    def active_qubits(self) -> Tuple[int, ...]:
        """Sorted physical qubits actually touched by the routed circuit."""
        touched = set()
        for gate in self.circuit:
            touched.update(gate.qubits)
        touched.update(self.initial_layout.physical_qubits)
        return tuple(sorted(touched))

    def local_circuit(self) -> Tuple[QuantumCircuit, Layout]:
        """Relabel to contiguous local indices for small-width simulation.

        Returns the relabelled circuit plus the *final* layout expressed in
        local indices (virtual -> local position).
        """
        active = self.active_qubits
        local_of = {p: i for i, p in enumerate(active)}
        out = QuantumCircuit(len(active), name=self.circuit.name)
        for gate in self.circuit:
            out.append(
                Gate(gate.name, tuple(local_of[q] for q in gate.qubits), gate.params)
            )
        local_final = Layout(
            tuple(local_of[p] for p in self.final_layout.physical_qubits)
        )
        return out, local_final


def _edge_weight(device: DeviceSnapshot):
    def weight(a: int, b: int, _attrs) -> float:
        # Three CNOTs per SWAP; prefer low-error couplers.
        return 1e-6 + 3.0 * device.edge_error(a, b)

    return weight


def route_circuit(
    circuit: QuantumCircuit,
    device: DeviceSnapshot,
    layout: Layout,
) -> RoutedCircuit:
    """Map a virtual circuit onto the device respecting its coupling map."""
    if layout.num_virtual < circuit.num_qubits:
        raise ValueError("layout narrower than circuit")
    graph = device.coupling_graph()
    for p in layout.physical_qubits:
        if p not in graph:
            raise ValueError(f"layout uses qubit {p} absent from {device.name}")

    v2p: Dict[int, int] = {v: layout.physical(v) for v in range(circuit.num_qubits)}
    out = QuantumCircuit(device.num_qubits, name=circuit.name)
    weight = _edge_weight(device)
    swaps = 0

    for gate in circuit:
        if gate.name in ("barrier", "measure"):
            out.append(Gate(gate.name, tuple(v2p[q] for q in gate.qubits)))
            continue
        if gate.num_qubits == 1:
            out.append(Gate(gate.name, (v2p[gate.qubits[0]],), gate.params))
            continue
        if gate.num_qubits > 2:
            raise ValueError(
                f"route_circuit expects a <=2-qubit basis circuit, got {gate.name!r}"
            )
        va, vb = gate.qubits
        pa, pb = v2p[va], v2p[vb]
        if not graph.has_edge(pa, pb):
            path = nx.shortest_path(graph, pa, pb, weight=weight)
            # Walk the first endpoint down the path until adjacent.
            p2v = {p: v for v, p in v2p.items()}
            for hop in path[1:-1]:
                out.append(Gate("swap", (pa, hop)))
                swaps += 1
                # Update the tracking maps: whoever sits on `hop` moves back.
                v_here = p2v.get(pa)
                v_there = p2v.get(hop)
                if v_here is not None:
                    v2p[v_here] = hop
                    p2v[hop] = v_here
                else:
                    p2v.pop(hop, None)
                if v_there is not None:
                    v2p[v_there] = pa
                    p2v[pa] = v_there
                else:
                    p2v.pop(pa, None)
                pa = hop
            pb = v2p[vb]
        out.append(Gate(gate.name, (pa, pb), gate.params))

    final = Layout(tuple(v2p[v] for v in range(circuit.num_qubits)))
    return RoutedCircuit(
        circuit=out,
        initial_layout=Layout(tuple(layout.physical_qubits[: circuit.num_qubits])),
        final_layout=final,
        swap_count=swaps,
    )
