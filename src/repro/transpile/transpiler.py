"""The transpilation pipeline: Qiskit-style optimisation levels 0-3.

The paper transpiles simulator experiments at optimisation level 1 ("with
mappings to qubits 0, 1, 2, 3, and 4") and hardware experiments at level 3
(noise-aware layout). The levels here reproduce those behaviours:

====  ==========================================================
0     basis translation only (no layout, no optimisation)
1     trivial layout, routing, basis translation, light peephole
2     level 1 plus fixpoint peephole optimisation
3     noise-aware layout, routing, fixpoint peephole optimisation
====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.devices import DeviceSnapshot
from .basis import to_basis_gates
from .layout import Layout, noise_aware_layout, trivial_layout
from .passes import merge_single_qubit_gates, optimize_1q_2q, drop_trivial_gates
from .routing import RoutedCircuit, route_circuit

__all__ = ["transpile", "TranspileResult"]


@dataclass
class TranspileResult:
    """Everything the experiment harness needs from a transpilation.

    Attributes
    ----------
    circuit:
        The transpiled circuit over physical qubit indices (width = device
        size when a device is given, else the input width).
    initial_layout / final_layout:
        Virtual -> physical maps before and after routing.
    active_qubits:
        Sorted physical qubits the circuit actually uses.
    swap_count:
        SWAPs inserted by routing.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    active_qubits: Tuple[int, ...]
    swap_count: int = 0

    def local_circuit(self) -> Tuple[QuantumCircuit, Layout]:
        """Relabel onto contiguous local indices (for small-width noisy sim).

        Returns the relabelled circuit and the final layout in local
        indices: ``local_final.physical(v)`` is the local wire holding
        virtual qubit ``v`` at the end of the circuit.
        """
        local_of = {p: i for i, p in enumerate(self.active_qubits)}
        out = QuantumCircuit(len(self.active_qubits), name=self.circuit.name)
        for gate in self.circuit:
            out.append(
                type(gate)(
                    gate.name,
                    tuple(local_of[q] for q in gate.qubits),
                    gate.params,
                )
            )
        local_final = Layout(
            tuple(local_of[p] for p in self.final_layout.physical_qubits)
        )
        return out, local_final


def transpile(
    circuit: QuantumCircuit,
    device: Optional[DeviceSnapshot] = None,
    *,
    optimization_level: int = 1,
    initial_layout: Optional[Sequence[int]] = None,
) -> TranspileResult:
    """Translate, map and optimise a circuit.

    Parameters
    ----------
    circuit:
        The virtual circuit.
    device:
        Target device; ``None`` performs basis translation and optimisation
        without any layout/routing.
    optimization_level:
        0-3, see module docstring.
    initial_layout:
        Explicit physical qubits (overrides the level's layout policy) —
        this is how the paper's manual-mapping experiments (Figs 17/18)
        pin circuits to chosen qubit rings.
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("optimization_level must be 0..3")

    basis_circ = to_basis_gates(circuit.copy())
    if optimization_level >= 1:
        basis_circ = drop_trivial_gates(merge_single_qubit_gates(basis_circ))

    if device is None:
        layout = trivial_layout(basis_circ.num_qubits)
        final = layout
        out = basis_circ
        if optimization_level >= 2:
            out = optimize_1q_2q(out)
        return TranspileResult(
            circuit=out,
            initial_layout=layout,
            final_layout=final,
            active_qubits=tuple(range(out.num_qubits)),
        )

    # Layout selection.
    if initial_layout is not None:
        layout = Layout(tuple(int(q) for q in initial_layout))
    elif optimization_level == 3:
        layout = noise_aware_layout(basis_circ, device)
    else:
        layout = trivial_layout(basis_circ.num_qubits)

    routed: RoutedCircuit = route_circuit(basis_circ, device, layout)
    physical = to_basis_gates(routed.circuit)  # decompose routing SWAPs
    if optimization_level >= 2:
        physical = optimize_1q_2q(physical)
    elif optimization_level == 1:
        physical = drop_trivial_gates(merge_single_qubit_gates(physical))

    active = set()
    for gate in physical:
        active.update(gate.qubits)
    active.update(routed.initial_layout.physical_qubits)

    return TranspileResult(
        circuit=physical,
        initial_layout=routed.initial_layout,
        final_layout=routed.final_layout,
        active_qubits=tuple(sorted(active)),
        swap_count=routed.swap_count,
    )
