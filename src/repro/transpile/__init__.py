"""Transpiler: basis translation, layout, routing, optimisation levels."""

from .basis import to_basis_gates, controlled_1q_gates, BASIS_GATES
from .layout import Layout, trivial_layout, noise_aware_layout, connected_subsets
from .routing import route_circuit, RoutedCircuit
from .passes import (
    merge_single_qubit_gates,
    cancel_adjacent_cx,
    drop_trivial_gates,
    optimize_1q_2q,
)
from .scheduling import ScheduledGate, asap_schedule, insert_idle_delays
from .transpiler import transpile, TranspileResult
from .verify import equivalent_under_layout, permute_statevector

__all__ = [
    "to_basis_gates",
    "controlled_1q_gates",
    "BASIS_GATES",
    "Layout",
    "trivial_layout",
    "noise_aware_layout",
    "connected_subsets",
    "route_circuit",
    "RoutedCircuit",
    "merge_single_qubit_gates",
    "cancel_adjacent_cx",
    "drop_trivial_gates",
    "optimize_1q_2q",
    "transpile",
    "TranspileResult",
    "ScheduledGate",
    "asap_schedule",
    "insert_idle_delays",
    "equivalent_under_layout",
    "permute_statevector",
]
