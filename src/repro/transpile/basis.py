"""Translation into the IBM physical basis ``{u1, u3, cx}``.

Every registered gate has either an analytic rewrite rule here or (for
one-qubit gates) an exact ZYZ rewrite into a single ``u3``. Controlled
one-qubit gates use the Barenco ABC decomposition, which is also exposed as
:func:`controlled_1q_gates` for library use.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate, gate_matrix
from ..linalg.decompositions import u3_params_from_unitary, zyz_decomposition

__all__ = ["to_basis_gates", "controlled_1q_gates", "BASIS_GATES"]

BASIS_GATES = ("u1", "u3", "cx")


def _u3(qubit: int, theta: float, phi: float, lam: float) -> Gate:
    return Gate("u3", (qubit,), (theta, phi, lam))


def _u3_from_matrix(qubit: int, matrix: np.ndarray) -> Gate:
    theta, phi, lam = u3_params_from_unitary(matrix)
    return Gate("u3", (qubit,), (theta, phi, lam))


def controlled_1q_gates(matrix: np.ndarray, control: int, target: int) -> List[Gate]:
    """Barenco ABC decomposition of a controlled one-qubit unitary.

    Writes ``V = e^{i a} Rz(phi) Ry(theta) Rz(lam)`` and emits
    ``C-V = u1(a)_c . A_t . CX . B_t . CX . C_t`` with ``A B C = I``.
    Costs exactly two CNOTs for any controlled 1q gate.
    """
    theta, phi, lam, alpha = zyz_decomposition(np.asarray(matrix, dtype=np.complex128))
    gates: List[Gate] = []
    # C = Rz((lam - phi) / 2)  -> u3(0, 0, (lam - phi)/2)
    gates.append(_u3(target, 0.0, 0.0, (lam - phi) / 2.0))
    gates.append(Gate("cx", (control, target)))
    # B = Ry(-theta/2) Rz(-(phi + lam)/2) -> u3(-theta/2, 0, -(phi+lam)/2)
    gates.append(_u3(target, -theta / 2.0, 0.0, -(phi + lam) / 2.0))
    gates.append(Gate("cx", (control, target)))
    # A = Rz(phi) Ry(theta/2) -> u3(theta/2, phi, 0)
    gates.append(_u3(target, theta / 2.0, phi, 0.0))
    if abs(alpha) > 1e-12:
        gates.append(Gate("u1", (control,), (alpha,)))
    return gates


def _ccx_gates(a: int, b: int, t: int) -> List[Gate]:
    """The standard six-CNOT Toffoli decomposition."""
    g = []
    g.append(Gate("h", (t,)))
    g.append(Gate("cx", (b, t)))
    g.append(Gate("tdg", (t,)))
    g.append(Gate("cx", (a, t)))
    g.append(Gate("t", (t,)))
    g.append(Gate("cx", (b, t)))
    g.append(Gate("tdg", (t,)))
    g.append(Gate("cx", (a, t)))
    g.append(Gate("t", (b,)))
    g.append(Gate("t", (t,)))
    g.append(Gate("h", (t,)))
    g.append(Gate("cx", (a, b)))
    g.append(Gate("t", (a,)))
    g.append(Gate("tdg", (b,)))
    g.append(Gate("cx", (a, b)))
    return g


def _expand(gate: Gate) -> List[Gate]:
    """One rewrite step for a single gate; may emit non-basis gates."""
    name = gate.name
    q = gate.qubits
    if name in ("barrier", "measure", "delay"):
        return [gate]
    if name in BASIS_GATES:
        return [gate]
    if name == "id":
        return []
    if gate.num_qubits == 1:
        return [_u3_from_matrix(q[0], gate.matrix())]
    if name == "cz":
        h = Gate("h", (q[1],))
        return [h, Gate("cx", q), h]
    if name == "swap":
        a, b = q
        return [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]
    if name == "rzz":
        (theta,) = gate.params
        return [
            Gate("cx", q),
            Gate("rz", (q[1],), (theta,)),
            Gate("cx", q),
        ]
    if name == "rxx":
        (theta,) = gate.params
        ha, hb = Gate("h", (q[0],)), Gate("h", (q[1],))
        return [ha, hb, *_expand(Gate("rzz", q, (theta,))), ha, hb]
    if name == "crx":
        (theta,) = gate.params
        return controlled_1q_gates(gate_matrix("rx", (theta,)), q[0], q[1])
    if name == "cu1":
        (lam,) = gate.params
        half = lam / 2.0
        return [
            Gate("u1", (q[0],), (half,)),
            Gate("cx", q),
            Gate("u1", (q[1],), (-half,)),
            Gate("cx", q),
            Gate("u1", (q[1],), (half,)),
        ]
    if name == "ccx":
        return _ccx_gates(*q)
    if name == "cswap":
        c, a, b = q
        return [
            Gate("cx", (b, a)),
            *_ccx_gates(c, a, b),
            Gate("cx", (b, a)),
        ]
    if name == "iswap":
        a, b = q
        # iswap = (S ⊗ S) . H_a . CX(a,b) . CX(b,a) . H_b
        return [
            Gate("s", (a,)),
            Gate("s", (b,)),
            Gate("h", (a,)),
            Gate("cx", (a, b)),
            Gate("cx", (b, a)),
            Gate("h", (b,)),
        ]
    raise NotImplementedError(f"no basis rewrite rule for gate {name!r}")


def to_basis_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite a circuit into ``{u1, u3, cx}`` (+ measure/barrier).

    The rewrite is exact: the output unitary equals the input's up to a
    global phase. Rules may cascade (e.g. ``cswap -> ccx -> h/t/cx ->
    u3/cx``), so expansion iterates until fixpoint.
    """
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    stack = list(reversed(list(circuit)))
    while stack:
        gate = stack.pop()
        expanded = _expand(gate)
        if len(expanded) == 1 and expanded[0].name == gate.name:
            final = expanded[0]
            if final.name in BASIS_GATES or final.name in (
                "barrier",
                "measure",
                "delay",
            ):
                out.append(final)
                continue
            raise NotImplementedError(
                f"rewrite of {gate.name!r} did not reach the basis"
            )
        stack.extend(reversed(expanded))
    return out
