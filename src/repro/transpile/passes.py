"""Peephole optimisation passes.

These reproduce the gate-count reductions Qiskit's optimisation levels
apply: merging runs of one-qubit gates into a single ``u3`` and cancelling
adjacent self-inverse two-qubit gates. Passes preserve the circuit unitary
up to global phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..linalg.decompositions import u3_params_from_unitary

__all__ = [
    "merge_single_qubit_gates",
    "cancel_adjacent_cx",
    "drop_trivial_gates",
    "optimize_1q_2q",
]

_ID_ATOL = 1e-10


def merge_single_qubit_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse every maximal run of one-qubit gates into a single ``u3``.

    Runs are per-qubit and are broken by any multi-qubit gate, barrier or
    measurement touching the qubit. Identity products are dropped.
    """
    n = circuit.num_qubits
    out = QuantumCircuit(n, name=circuit.name)
    pending: Dict[int, Optional[np.ndarray]] = {q: None for q in range(n)}

    def flush(qubit: int) -> None:
        acc = pending[qubit]
        pending[qubit] = None
        if acc is None:
            return
        # Drop if identity up to phase.
        trace = abs(np.trace(acc))
        if abs(trace - 2.0) < _ID_ATOL:
            return
        theta, phi, lam = u3_params_from_unitary(acc)
        out.append(Gate("u3", (qubit,), (theta, phi, lam)))

    for gate in circuit:
        if (
            gate.is_unitary
            and gate.num_qubits == 1
            and gate.name not in ("barrier", "delay")
        ):
            q = gate.qubits[0]
            m = gate.matrix()
            pending[q] = m if pending[q] is None else m @ pending[q]
            continue
        for q in gate.qubits:
            flush(q)
        out.append(gate)
    for q in range(n):
        flush(q)
    return out


def cancel_adjacent_cx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove pairs of identical adjacent self-inverse gates.

    "Adjacent" means no intervening gate touches any of the pair's qubits.
    Implemented as a per-qubit last-gate scan, iterated by the caller via
    :func:`optimize_1q_2q` until fixpoint.
    """
    gates: List[Optional[Gate]] = list(circuit)
    last_on_qubit: Dict[int, int] = {}
    for idx, gate in enumerate(gates):
        if gate is None or not gate.is_unitary or gate.name == "barrier":
            for q in (gate.qubits if gate else ()):
                last_on_qubit[q] = idx
            continue
        prev_idx = None
        blocked = False
        for q in gate.qubits:
            if q in last_on_qubit:
                candidate = last_on_qubit[q]
                if prev_idx is None:
                    prev_idx = candidate
                elif candidate != prev_idx:
                    blocked = True
        if (
            not blocked
            and prev_idx is not None
            and gates[prev_idx] is not None
            and gates[prev_idx] == gate
            and gate.definition.self_inverse
            and gates[prev_idx].qubits == gate.qubits
        ):
            # The previous gate must touch exactly the same qubit set.
            prev = gates[prev_idx]
            if set(prev.qubits) == set(gate.qubits):
                gates[prev_idx] = None
                gates[idx] = None
                for q in gate.qubits:
                    # Rewind to the most recent *surviving* gate touching
                    # this qubit; merely dropping the entry would let a
                    # later gate cancel across intervening gates.
                    last_on_qubit.pop(q, None)
                    for j in range(prev_idx - 1, -1, -1):
                        g = gates[j]
                        if g is not None and q in g.qubits:
                            last_on_qubit[q] = j
                            break
                continue
        for q in gate.qubits:
            last_on_qubit[q] = idx

    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in gates:
        if gate is not None:
            out.append(gate)
    return out


def drop_trivial_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove identity gates and zero-angle rotations."""
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name == "id":
            continue
        if gate.name == "delay" and abs(gate.params[0]) < _ID_ATOL:
            continue
        if gate.name in ("rx", "ry", "rz", "u1", "rzz", "rxx", "crx", "cu1"):
            if all(abs(p) < _ID_ATOL for p in gate.params):
                continue
        if gate.name == "u3" and all(abs(p) < _ID_ATOL for p in gate.params):
            continue
        out.append(gate)
    return out


def optimize_1q_2q(circuit: QuantumCircuit, *, max_rounds: int = 20) -> QuantumCircuit:
    """Run drop / cancel / merge passes to fixpoint.

    CX cancellation can expose new one-qubit merges and vice versa, so the
    passes loop until the gate list stops changing (or ``max_rounds``).
    """
    current = circuit
    for _ in range(max_rounds):
        before = current.gates
        current = drop_trivial_gates(current)
        current = cancel_adjacent_cx(current)
        current = merge_single_qubit_gates(current)
        if current.gates == before:
            break
    return current
