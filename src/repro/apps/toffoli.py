"""Multi-control Toffoli (MCX) gates — the paper's third workload.

Provides the ancilla-free reference construction (the paper's "Qiskit's
multiple-control Toffoli gate without any ancilla bits"): the 6-CNOT
Toffoli for two controls and the Barenco controlled-square-root recursion
for more, emitted directly over ``{u3, u1, h, t, cx}``.

Also provides the evaluation harness the paper uses for Figures 6/7/15:
each circuit runs against a suite of input preparations with known ideal
outputs and is scored by the mean Jensen-Shannon distance. With the
default superposition preparation, "random noise" scores
:data:`~repro.metrics.distributions.UNIFORM_NOISE_JS` (~0.465).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate, gate_matrix
from ..linalg.unitary import apply_matrix_to_state
from ..metrics.distributions import jensen_shannon_distance
from ..sim.statevector import StatevectorSimulator
from ..transpile.basis import controlled_1q_gates, _ccx_gates

__all__ = [
    "mcx_circuit",
    "mcx_unitary",
    "append_mcx",
    "append_mcz",
    "append_mcu",
    "ToffoliTest",
    "toffoli_test_suite",
    "toffoli_js_score",
]


def _principal_sqrt(u: np.ndarray) -> np.ndarray:
    """Principal square root of a 2x2 unitary (eigenphases halved)."""
    w, v = np.linalg.eig(u)
    sqrt_w = np.exp(0.5j * np.angle(w)) * np.sqrt(np.abs(w))
    return (v * sqrt_w) @ np.linalg.inv(v)


def append_mcu(
    qc: QuantumCircuit,
    matrix: np.ndarray,
    controls: Sequence[int],
    target: int,
) -> None:
    """Append a multi-controlled 1q unitary via the Barenco recursion.

    ``C^n(U) = C-V(c_n, t) . C^{n-1}X(c_1..c_{n-1}; c_n) . C-V^+(c_n, t)
    . C^{n-1}X(c_1..c_{n-1}; c_n) . C^{n-1}(V)(c_1..c_{n-1}; t)`` with
    ``V^2 = U`` — no ancilla qubits, quadratic CNOT growth.
    """
    controls = list(controls)
    if not controls:
        for gate in _u3_like(matrix, target):
            qc.append(gate)
        return
    if len(controls) == 1:
        for gate in controlled_1q_gates(matrix, controls[0], target):
            qc.append(gate)
        return
    v = _principal_sqrt(matrix)
    v_dg = v.conj().T
    last = controls[-1]
    rest = controls[:-1]
    for gate in controlled_1q_gates(v, last, target):
        qc.append(gate)
    append_mcx(qc, rest, last)
    for gate in controlled_1q_gates(v_dg, last, target):
        qc.append(gate)
    append_mcx(qc, rest, last)
    append_mcu(qc, v, rest, target)


def _u3_like(matrix: np.ndarray, qubit: int) -> List[Gate]:
    from ..linalg.decompositions import u3_params_from_unitary

    theta, phi, lam = u3_params_from_unitary(matrix)
    return [Gate("u3", (qubit,), (theta, phi, lam))]


_X = gate_matrix("x")
_Z = gate_matrix("z")


def append_mcx(qc: QuantumCircuit, controls: Sequence[int], target: int) -> None:
    """Append an ancilla-free multi-controlled X."""
    controls = list(controls)
    if not controls:
        qc.x(target)
    elif len(controls) == 1:
        qc.cx(controls[0], target)
    elif len(controls) == 2:
        for gate in _ccx_gates(controls[0], controls[1], target):
            qc.append(gate)
    else:
        append_mcu(qc, _X, controls, target)


def append_mcz(qc: QuantumCircuit, qubits: Sequence[int]) -> None:
    """Append a multi-controlled Z (symmetric; last qubit plays target)."""
    qubits = list(qubits)
    if len(qubits) == 1:
        qc.z(qubits[0])
        return
    append_mcu(qc, _Z, qubits[:-1], qubits[-1])


def mcx_circuit(num_controls: int) -> QuantumCircuit:
    """The reference MCX circuit: controls ``0..k-1``, target ``k``.

    This mirrors Qiskit's no-ancilla ``mcx`` role in the paper: the
    hand-derived discrete reference the approximate circuits compete with.
    """
    if num_controls < 1:
        raise ValueError("need at least one control")
    n = num_controls + 1
    qc = QuantumCircuit(n, name=f"mcx{num_controls}")
    append_mcx(qc, list(range(num_controls)), num_controls)
    return qc


def mcx_unitary(num_controls: int) -> np.ndarray:
    """The exact MCX permutation matrix (synthesis target)."""
    n = num_controls + 1
    dim = 2**n
    u = np.eye(dim, dtype=np.complex128)
    mask = (1 << num_controls) - 1
    a = mask                      # controls set, target 0
    b = mask | (1 << num_controls)  # controls set, target 1
    u[a, a] = u[b, b] = 0.0
    u[a, b] = u[b, a] = 1.0
    return u


# ---------------------------------------------------------------------------
# Evaluation harness (paper §6.1: "We test each approximate circuit for a
# subset of such functions and parameters ... The JS distance provides a
# composite metric")
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ToffoliTest:
    """One test case: an input preparation plus its ideal output."""

    name: str
    prep: QuantumCircuit
    ideal: np.ndarray


def _ideal_output(prep: QuantumCircuit, num_controls: int) -> np.ndarray:
    """Ideal distribution: prep then the exact MCX unitary."""
    sim = StatevectorSimulator()
    state = sim.run(prep).data
    n = prep.num_qubits
    out = mcx_unitary(num_controls) @ state
    return np.abs(out) ** 2


def toffoli_test_suite(
    num_controls: int,
    *,
    include_basis_inputs: bool = False,
) -> List[ToffoliTest]:
    """The input-function suite used to score Toffoli circuits.

    The default (and the suite behind the figures' 0.465 noise floor) puts
    every control in uniform superposition with the target at ``|0>``.
    ``include_basis_inputs`` adds the all-ones and all-zeros computational
    inputs for a stricter composite score.
    """
    n = num_controls + 1
    tests: List[ToffoliTest] = []

    sup = QuantumCircuit(n, name="prep_superposition")
    for q in range(num_controls):
        sup.h(q)
    tests.append(ToffoliTest("superposition", sup, _ideal_output(sup, num_controls)))

    if include_basis_inputs:
        ones = QuantumCircuit(n, name="prep_all_ones")
        for q in range(num_controls):
            ones.x(q)
        tests.append(ToffoliTest("all_ones", ones, _ideal_output(ones, num_controls)))

        zeros = QuantumCircuit(n, name="prep_all_zeros")
        tests.append(
            ToffoliTest("all_zeros", zeros, _ideal_output(zeros, num_controls))
        )

        half = QuantumCircuit(n, name="prep_half")
        for q in range(0, num_controls, 2):
            half.x(q)
        for q in range(1, num_controls, 2):
            half.h(q)
        tests.append(ToffoliTest("half", half, _ideal_output(half, num_controls)))

    return tests


def toffoli_js_score(
    run_distribution: Callable[[QuantumCircuit], np.ndarray],
    candidate: QuantumCircuit,
    tests: Sequence[ToffoliTest],
) -> float:
    """Mean JS distance of a candidate MCX circuit over a test suite.

    ``run_distribution`` executes a full circuit (prep + candidate) on the
    backend under study and returns the measured distribution.
    """
    if not tests:
        raise ValueError("empty test suite")
    scores = []
    for test in tests:
        full = test.prep.copy(name=f"{candidate.name}+{test.name}")
        full.compose(candidate)
        measured = run_distribution(full)
        scores.append(jensen_shannon_distance(test.ideal, measured))
    return float(np.mean(scores))
