"""The paper's three workloads: TFIM, Grover, multi-control Toffoli."""

from .tfim import (
    tfim_hamiltonian,
    exact_step_unitary,
    exact_magnetization,
    trotter_error,
    TFIMSpec,
    tfim_step_circuit,
    tfim_circuits,
    ideal_magnetization,
    PAPER_NUM_STEPS,
    PAPER_DT_NS,
)
from .grover import (
    grover_circuit,
    optimal_iterations,
    success_probability,
    marked_state_index,
)
from .toffoli import (
    mcx_circuit,
    mcx_unitary,
    append_mcx,
    append_mcz,
    append_mcu,
    ToffoliTest,
    toffoli_test_suite,
    toffoli_js_score,
)

__all__ = [
    "TFIMSpec",
    "tfim_step_circuit",
    "tfim_circuits",
    "ideal_magnetization",
    "tfim_hamiltonian",
    "exact_step_unitary",
    "exact_magnetization",
    "trotter_error",
    "PAPER_NUM_STEPS",
    "PAPER_DT_NS",
    "grover_circuit",
    "optimal_iterations",
    "success_probability",
    "marked_state_index",
    "mcx_circuit",
    "mcx_unitary",
    "append_mcx",
    "append_mcz",
    "append_mcu",
    "ToffoliTest",
    "toffoli_test_suite",
    "toffoli_js_score",
]
