"""Grover's search — the paper's second workload.

The 3-qubit instance searches 8 "boxes" for the marked item ``'111'``; the
quality metric is the probability of measuring the marked state (Figures 5
and 14). The hand-coded reference uses a multi-controlled-Z oracle and the
standard diffuser, both built from the 6-CNOT Toffoli, giving the CNOT-
heavy reference circuit the paper reports.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .toffoli import append_mcz

__all__ = [
    "grover_circuit",
    "optimal_iterations",
    "success_probability",
    "marked_state_index",
]


def optimal_iterations(num_qubits: int) -> int:
    """The Grover iteration count maximising success probability."""
    dim = 2**num_qubits
    return max(1, int(round(math.pi / 4.0 * math.sqrt(dim) - 0.5)))


def marked_state_index(marked: str) -> int:
    return int(marked, 2)


def _oracle(qc: QuantumCircuit, marked: str) -> None:
    """Phase-flip the marked state: X-conjugated multi-controlled Z."""
    n = qc.num_qubits
    zeros = [n - 1 - i for i, bit in enumerate(marked) if bit == "0"]
    for q in zeros:
        qc.x(q)
    append_mcz(qc, list(range(n)))
    for q in zeros:
        qc.x(q)


def _diffuser(qc: QuantumCircuit) -> None:
    """Inversion about the mean: H X mcz X H."""
    n = qc.num_qubits
    for q in range(n):
        qc.h(q)
    for q in range(n):
        qc.x(q)
    append_mcz(qc, list(range(n)))
    for q in range(n):
        qc.x(q)
    for q in range(n):
        qc.h(q)


def grover_circuit(
    num_qubits: int = 3,
    marked: str = "111",
    iterations: Optional[int] = None,
) -> QuantumCircuit:
    """The reference Grover circuit for ``marked`` (MSB-first bitstring)."""
    if len(marked) != num_qubits:
        raise ValueError("marked bitstring width mismatch")
    if any(b not in "01" for b in marked):
        raise ValueError(f"invalid marked state {marked!r}")
    iterations = optimal_iterations(num_qubits) if iterations is None else iterations
    qc = QuantumCircuit(num_qubits, name=f"grover{num_qubits}_{marked}")
    for q in range(num_qubits):
        qc.h(q)
    for _ in range(iterations):
        _oracle(qc, marked)
        _diffuser(qc)
    return qc


def success_probability(probabilities: np.ndarray, marked: str) -> float:
    """P(measuring the marked state) — the paper's y-axis for Grover."""
    return float(probabilities[marked_state_index(marked)])
