"""Time-dependent Transverse-Field Ising Model circuits.

The paper's primary workload (after Bassman et al. [28, 29]): Trotterised
evolution under

    H(t) = -J * sum_i Z_i Z_{i+1}  -  h(t) * sum_i X_i

starting from ``|0...0>``, measured as the average magnetization
``(1/n) sum_i <Z_i>``. Circuits for later time steps contain more Trotter
steps, so CNOT count grows linearly with the step index — exactly the
"circuits quickly grow beyond the NISQ fidelity budget" behaviour that
motivates approximation (the 3-qubit reference reaches ~80 CNOTs by step
21, versus ~6 for its best synthesised equivalent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..sim.expectation import average_magnetization
from ..sim.statevector import StatevectorSimulator

__all__ = ["TFIMSpec", "tfim_step_circuit", "tfim_circuits", "ideal_magnetization"]

#: The paper simulates "the first 21 time steps of 3ns".
PAPER_NUM_STEPS = 21
PAPER_DT_NS = 3.0


def _default_schedule(t: float) -> float:
    """Linear field ramp: a quench from 0 up to h_max over 21 paper steps.

    Produces the characteristic decaying-oscillation magnetization curve of
    the paper's Figure 2.
    """
    t_max = PAPER_NUM_STEPS * PAPER_DT_NS
    return 0.15 * min(1.0, t / t_max)


@dataclass
class TFIMSpec:
    """Parameters of a time-dependent TFIM simulation.

    Attributes
    ----------
    num_qubits:
        Chain length (open boundary).
    j_coupling:
        Ising coupling ``J`` (angular-frequency units, rad/ns).
    dt:
        Trotter step duration in ns (paper: 3 ns).
    field_schedule:
        ``h(t)`` in rad/ns, evaluated at the midpoint of each step.
    """

    num_qubits: int = 3
    j_coupling: float = 0.05
    dt: float = PAPER_DT_NS
    field_schedule: Callable[[float], float] = field(default=_default_schedule)

    def __post_init__(self) -> None:
        if self.num_qubits < 2:
            raise ValueError("TFIM needs at least 2 sites")

    def bonds(self) -> List[tuple]:
        return [(i, i + 1) for i in range(self.num_qubits - 1)]


def tfim_step_circuit(spec: TFIMSpec, num_steps: int) -> QuantumCircuit:
    """The Trotter circuit advancing ``|0..0>`` by ``num_steps`` steps.

    Each step applies ``exp(-i dt H(t_mid))`` in first-order Trotter form:
    an RZZ layer (2 CNOTs per bond after basis translation) followed by an
    RX layer.
    """
    if num_steps < 0:
        raise ValueError("num_steps must be non-negative")
    qc = QuantumCircuit(spec.num_qubits, name=f"tfim{spec.num_qubits}_t{num_steps}")
    for step in range(num_steps):
        t_mid = (step + 0.5) * spec.dt
        theta_zz = -2.0 * spec.j_coupling * spec.dt
        for a, b in spec.bonds():
            qc.rzz(theta_zz, a, b)
        theta_x = -2.0 * spec.field_schedule(t_mid) * spec.dt
        for q in range(spec.num_qubits):
            qc.rx(theta_x, q)
    return qc


def tfim_circuits(
    spec: Optional[TFIMSpec] = None,
    num_steps: int = PAPER_NUM_STEPS,
) -> List[QuantumCircuit]:
    """The paper's per-timestep circuit family: steps ``1..num_steps``."""
    spec = spec or TFIMSpec()
    return [tfim_step_circuit(spec, k) for k in range(1, num_steps + 1)]


def ideal_magnetization(
    spec: Optional[TFIMSpec] = None,
    num_steps: int = PAPER_NUM_STEPS,
) -> np.ndarray:
    """The noise-free reference series (Figure 2's "Noise free reference")."""
    spec = spec or TFIMSpec()
    sim = StatevectorSimulator()
    out = np.empty(num_steps)
    for k, circuit in enumerate(tfim_circuits(spec, num_steps)):
        out[k] = average_magnetization(sim.run(circuit).probabilities())
    return out


# ---------------------------------------------------------------------------
# Exact (non-Trotterised) dynamics — used to quantify the Trotter error the
# circuit generator introduces before any device noise enters.
# ---------------------------------------------------------------------------

def tfim_hamiltonian(spec: TFIMSpec, t: float) -> "PauliSum":
    """The instantaneous Hamiltonian ``H(t) = -J sum ZZ - h(t) sum X``."""
    from ..linalg.pauli import PauliString, PauliSum

    h = PauliSum(num_qubits=spec.num_qubits)
    for a, b in spec.bonds():
        h.add(
            PauliString.from_sparse(spec.num_qubits, {a: "Z", b: "Z"}),
            -spec.j_coupling,
        )
    field = spec.field_schedule(t)
    for q in range(spec.num_qubits):
        h.add(PauliString.from_sparse(spec.num_qubits, {q: "X"}), -field)
    return h


def exact_step_unitary(spec: TFIMSpec, num_steps: int) -> np.ndarray:
    """The exact propagator over ``num_steps`` steps.

    The time dependence is handled piecewise-constant at each step's
    midpoint — the same discretisation the Trotter circuit uses, so the
    difference to :func:`tfim_step_circuit` is pure Trotter error.
    """
    dim = 2**spec.num_qubits
    u = np.eye(dim, dtype=np.complex128)
    for step in range(num_steps):
        t_mid = (step + 0.5) * spec.dt
        u = tfim_hamiltonian(spec, t_mid).evolution_unitary(spec.dt) @ u
    return u


def exact_magnetization(
    spec: Optional[TFIMSpec] = None, num_steps: int = PAPER_NUM_STEPS
) -> np.ndarray:
    """Magnetization under the exact propagator (no Trotter error)."""
    spec = spec or TFIMSpec()
    dim = 2**spec.num_qubits
    psi = np.zeros(dim, dtype=np.complex128)
    psi[0] = 1.0
    out = np.empty(num_steps)
    for step in range(num_steps):
        t_mid = (step + 0.5) * spec.dt
        psi = tfim_hamiltonian(spec, t_mid).evolution_unitary(spec.dt) @ psi
        out[step] = average_magnetization(np.abs(psi) ** 2)
    return out


def trotter_error(spec: Optional[TFIMSpec] = None, num_steps: int = 10) -> float:
    """Hilbert-Schmidt distance between the Trotter circuit and the exact
    propagator after ``num_steps`` steps."""
    from ..synthesis.objective import hs_distance

    spec = spec or TFIMSpec()
    return hs_distance(
        exact_step_unitary(spec, num_steps),
        tfim_step_circuit(spec, num_steps).unitary(),
    )
