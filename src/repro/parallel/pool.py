"""Process-pool fan-out with deterministic per-task seeding.

The pipeline is embarrassingly parallel: pools of approximate circuits are
synthesised once per workload and re-executed under every noise setting, so
the per-timestep / per-level / per-width loops in the experiment drivers are
independent tasks. :func:`parallel_map` fans such loops out over a process
pool while keeping four guarantees the experiment layer depends on:

* **Determinism.** Results come back in input order, and when a ``seed`` is
  given every task receives its own :class:`numpy.random.Generator` built
  from ``np.random.SeedSequence(seed).spawn(len(items))`` — the stream a
  task sees depends only on ``(seed, task index)``, never on worker count
  or scheduling. Identical seeds therefore produce identical results
  regardless of ``REPRO_JOBS``.
* **Crash tolerance.** A dead worker (OOM kill, segfault, injected
  ``crash`` fault) breaks the pool; the map detects it, starts a fresh
  pool, and reschedules *only the unfinished payloads* — already-delivered
  results are kept and ``on_result`` never re-fires for them. Rescheduling
  is bounded (``max_restarts`` pool incarnations); whatever is still
  unfinished after that runs serially. Because tasks are pure functions of
  their payload, results are identical regardless of which worker died.
* **Graceful degradation.** ``REPRO_JOBS=1`` (the default), a single-item
  input, or an environment where process pools cannot start (restricted
  sandboxes, missing semaphores) all fall back to a plain serial loop with
  the exact same task arguments. A failed pool start disables the pool for
  a cooldown window (:data:`POOL_RETRY_COOLDOWN`) instead of permanently —
  one transient start-up failure no longer costs the whole process its
  parallelism.
* **Transparency.** Worker exceptions propagate to the caller unchanged,
  like the serial loop's would.

Per-task deadlines: with ``deadline`` set, a task that produces no result
within (approximately) that many seconds is abandoned with its pool and
rescheduled; a task that exhausts its reschedule budget raises
:class:`repro.faults.TaskTimeoutError` — a transient error the campaign
layer quarantines instead of aborting on.

Fault injection: under an active :mod:`repro.faults` plan with a ``crash``
rate, workers deterministically die (``os._exit``) per
``(fault_seed, task index, pool round)``, exercising the rescheduling path
end-to-end.

Workers inherit the synthesis disk cache, which
:mod:`repro.utils.cache` makes safe under concurrent writers.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

import numpy as np

from ..faults import TaskTimeoutError, active_plan, record_activation

__all__ = [
    "effective_jobs",
    "parallel_map",
    "spawn_generators",
    "reset_pool",
    "POOL_RETRY_COOLDOWN",
]

T = TypeVar("T")
R = TypeVar("R")

#: Seconds a failed pool start disables the pool for (then it is retried).
POOL_RETRY_COOLDOWN = 30.0

#: Monotonic timestamp of the last failed pool start, or ``None``.
_POOL_FAILED_AT: Optional[float] = None


def reset_pool() -> None:
    """Clear the pool-failure cooldown so the next map tries a pool again."""
    global _POOL_FAILED_AT
    _POOL_FAILED_AT = None


def _pool_unavailable() -> bool:
    """Whether the last pool-start failure is still inside its cooldown."""
    if _POOL_FAILED_AT is None:
        return False
    if time.monotonic() - _POOL_FAILED_AT >= POOL_RETRY_COOLDOWN:
        reset_pool()
        return False
    return True


def _note_pool_failure() -> None:
    global _POOL_FAILED_AT
    _POOL_FAILED_AT = time.monotonic()


def effective_jobs(jobs: Union[int, str, None] = None) -> int:
    """Resolve the worker count: explicit argument > ``REPRO_JOBS`` > 1.

    ``"auto"`` or any non-positive value means "one worker per CPU".
    The default is serial so tests and small runs never pay pool start-up.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "1")
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text in ("", "auto"):
            jobs = 0
        else:
            try:
                jobs = int(text)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer or 'auto', got {jobs!r}"
                ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return int(jobs)


def spawn_generators(
    seed: Union[int, np.random.SeedSequence, None], n: int
) -> List[np.random.Generator]:
    """``n`` independent generators from one root seed (stable per index)."""
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [np.random.default_rng(child) for child in root.spawn(n)]


def _invoke(payload):
    fn, item, child_seq = payload
    if child_seq is None:
        return fn(item)
    return fn(item, np.random.default_rng(child_seq))


def _run_chunk(batch):
    """Worker: run a chunk of ``(index, round, payload)`` tasks.

    The injected ``crash`` fault kills the worker process here — before
    the task runs — so rescheduled tasks recompute from scratch and the
    results are bit-identical to an uninjected run.
    """
    out = []
    for index, round_, payload in batch:
        plan = active_plan()
        if plan is not None and plan.should_fire("crash", f"task:{index}", round_):
            record_activation("crash", f"task:{index}")
            os._exit(13)
        out.append((index, _invoke(payload)))
    return out


def parallel_map(
    fn: Callable[..., R],
    items: Iterable[T],
    *,
    jobs: Union[int, str, None] = None,
    seed: Union[int, np.random.SeedSequence, None] = None,
    chunksize: int = 1,
    on_result: Optional[Callable[[int, R], None]] = None,
    deadline: Optional[float] = None,
    max_restarts: int = 2,
) -> List[R]:
    """Map ``fn`` over ``items``, fanning out over a process pool.

    Parameters
    ----------
    fn:
        A picklable (module-level) callable. Called as ``fn(item)``, or as
        ``fn(item, rng)`` when ``seed`` is given.
    items:
        The task inputs; results are returned in the same order.
    jobs:
        Worker count; ``None`` defers to ``REPRO_JOBS`` (default 1 =
        serial), ``"auto"``/``0`` means one worker per CPU.
    seed:
        Root entropy for deterministic per-task generators. Task ``i``
        receives ``np.random.default_rng(SeedSequence(seed).spawn(n)[i])``
        whatever the worker count or execution order.
    chunksize:
        Tasks per pool dispatch; raise for many small tasks.
    on_result:
        Parent-process callback ``on_result(index, result)``, fired in
        input order as each result becomes available (streaming under a
        pool, per-task when serial). Fired exactly once per index, even
        when a broken pool forces rescheduling or a serial fallback.
    deadline:
        Approximate per-task deadline in seconds. A task that has not
        delivered within the deadline is abandoned with its pool and
        rescheduled; after ``max_restarts`` reschedules it raises
        :class:`repro.faults.TaskTimeoutError`. ``None`` disables.
    max_restarts:
        How many replacement pools may be started after crashes or
        deadline abandonments before the remainder runs serially.
    """
    items = list(items)
    if seed is None:
        payloads = [(fn, item, None) for item in items]
    else:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = root.spawn(len(items)) if items else []
        payloads = [(fn, item, child) for item, child in zip(items, children)]

    total = len(payloads)
    results: Dict[int, R] = {}
    emitted = 0

    def deliver(index: int, value: R) -> None:
        nonlocal emitted
        if index in results:
            return
        results[index] = value
        while emitted in results:
            if on_result is not None:
                on_result(emitted, results[emitted])
            emitted += 1

    def run_serial() -> None:
        # Resumes from the first unfinished index: results already
        # delivered by a pool incarnation are reused, never recomputed,
        # and on_result does not re-fire for them.
        for index in range(total):
            if index not in results:
                deliver(index, _invoke(payloads[index]))

    workers = min(effective_jobs(jobs), total)
    if workers <= 1 or total <= 1 or _pool_unavailable():
        run_serial()
        return [results[i] for i in range(total)]

    timeout_counts: Dict[int, int] = {}
    round_ = 0
    while round_ <= max_restarts:
        pending = [i for i in range(total) if i not in results]
        if not pending:
            break
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            )
        except (OSError, PermissionError, ImportError) as exc:
            _note_pool_failure()
            warnings.warn(
                f"process pool unavailable ({exc!r}); running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            run_serial()
            return [results[i] for i in range(total)]
        broken = False
        try:
            future_of: Dict[int, Future] = {}
            for start in range(0, len(pending), max(1, chunksize)):
                chunk = pending[start : start + max(1, chunksize)]
                future = executor.submit(
                    _run_chunk, [(i, round_, payloads[i]) for i in chunk]
                )
                for i in chunk:
                    future_of[i] = future
            for i in pending:
                if i in results:
                    continue
                future = future_of[i]
                try:
                    pairs = future.result(timeout=deadline)
                except FuturesTimeout:
                    if future.done():
                        # The task itself raised TimeoutError — a task
                        # error, not a deadline expiry.
                        raise
                    timeout_counts[i] = timeout_counts.get(i, 0) + 1
                    if timeout_counts[i] > max_restarts:
                        raise TaskTimeoutError(
                            f"task {i} exceeded its {deadline:g}s deadline "
                            f"in {timeout_counts[i]} pool(s)"
                        ) from None
                    broken = True
                    break
                for j, value in pairs:
                    deliver(j, value)
        except BrokenProcessPool:
            # A worker died; everything delivered so far is kept and only
            # the unfinished payloads are rescheduled next round.
            broken = True
        except (OSError, PermissionError, ImportError):
            # Pool plumbing failed mid-flight (or a task raised OSError):
            # cool the pool down and finish serially — the serial replay
            # recomputes only unfinished tasks, so a genuine task error
            # re-raises unchanged.
            _note_pool_failure()
            warnings.warn(
                "process pool failed mid-run; finishing serially",
                RuntimeWarning,
                stacklevel=2,
            )
            run_serial()
            return [results[i] for i in range(total)]
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if not broken:
            break
        round_ += 1
    if any(i not in results for i in range(total)):
        warnings.warn(
            f"process pool broke {max_restarts + 1} time(s); finishing "
            "the remaining tasks serially",
            RuntimeWarning,
            stacklevel=2,
        )
        run_serial()
    return [results[i] for i in range(total)]
