"""Process-pool fan-out with deterministic per-task seeding.

The pipeline is embarrassingly parallel: pools of approximate circuits are
synthesised once per workload and re-executed under every noise setting, so
the per-timestep / per-level / per-width loops in the experiment drivers are
independent tasks. :func:`parallel_map` fans such loops out over a process
pool while keeping three guarantees the experiment layer depends on:

* **Determinism.** Results come back in input order, and when a ``seed`` is
  given every task receives its own :class:`numpy.random.Generator` built
  from ``np.random.SeedSequence(seed).spawn(len(items))`` — the stream a
  task sees depends only on ``(seed, task index)``, never on worker count
  or scheduling. Identical seeds therefore produce identical results
  regardless of ``REPRO_JOBS``.
* **Graceful degradation.** ``REPRO_JOBS=1`` (the default), a single-item
  input, or an environment where process pools cannot start (restricted
  sandboxes, missing semaphores) all fall back to a plain serial loop with
  the exact same task arguments.
* **Transparency.** Worker exceptions propagate to the caller unchanged,
  like the serial loop's would.

Workers inherit the synthesis disk cache, which
:mod:`repro.utils.cache` makes safe under concurrent writers.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

import numpy as np

__all__ = ["effective_jobs", "parallel_map", "spawn_generators"]

T = TypeVar("T")
R = TypeVar("R")

#: Set after the first failed pool start so later calls skip the retry.
_POOL_BROKEN = False


def effective_jobs(jobs: Union[int, str, None] = None) -> int:
    """Resolve the worker count: explicit argument > ``REPRO_JOBS`` > 1.

    ``"auto"`` or any non-positive value means "one worker per CPU".
    The default is serial so tests and small runs never pay pool start-up.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "1")
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text in ("", "auto"):
            jobs = 0
        else:
            try:
                jobs = int(text)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer or 'auto', got {jobs!r}"
                ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return int(jobs)


def spawn_generators(
    seed: Union[int, np.random.SeedSequence, None], n: int
) -> List[np.random.Generator]:
    """``n`` independent generators from one root seed (stable per index)."""
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [np.random.default_rng(child) for child in root.spawn(n)]


def _invoke(payload):
    fn, item, child_seq = payload
    if child_seq is None:
        return fn(item)
    return fn(item, np.random.default_rng(child_seq))


def parallel_map(
    fn: Callable[..., R],
    items: Iterable[T],
    *,
    jobs: Union[int, str, None] = None,
    seed: Union[int, np.random.SeedSequence, None] = None,
    chunksize: int = 1,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, fanning out over a process pool.

    Parameters
    ----------
    fn:
        A picklable (module-level) callable. Called as ``fn(item)``, or as
        ``fn(item, rng)`` when ``seed`` is given.
    items:
        The task inputs; results are returned in the same order.
    jobs:
        Worker count; ``None`` defers to ``REPRO_JOBS`` (default 1 =
        serial), ``"auto"``/``0`` means one worker per CPU.
    seed:
        Root entropy for deterministic per-task generators. Task ``i``
        receives ``np.random.default_rng(SeedSequence(seed).spawn(n)[i])``
        whatever the worker count or execution order.
    chunksize:
        Tasks per pool dispatch; raise for many small tasks.
    on_result:
        Parent-process callback ``on_result(index, result)``, fired in
        input order as each result becomes available (streaming under a
        pool, per-task when serial). Lets callers fold results into
        caches/memos without waiting for the whole map. If the pool
        breaks mid-run the map restarts serially and the callback may
        re-fire for early indices — keep it idempotent.
    """
    items = list(items)
    if seed is None:
        payloads = [(fn, item, None) for item in items]
    else:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = root.spawn(len(items)) if items else []
        payloads = [(fn, item, child) for item, child in zip(items, children)]
    def serial() -> List[R]:
        results = []
        for index, payload in enumerate(payloads):
            result = _invoke(payload)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results

    workers = min(effective_jobs(jobs), len(payloads))
    global _POOL_BROKEN
    if workers <= 1 or len(payloads) <= 1 or _POOL_BROKEN:
        return serial()
    try:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            results = []
            for index, result in enumerate(
                executor.map(_invoke, payloads, chunksize=chunksize)
            ):
                if on_result is not None:
                    on_result(index, result)
                results.append(result)
            return results
    except (OSError, PermissionError, BrokenProcessPool, ImportError) as exc:
        # Pool start-up (or the pool itself) failed — not a task error.
        # Task errors are ordinary exceptions and propagate above.
        _POOL_BROKEN = True
        warnings.warn(
            f"process pool unavailable ({exc!r}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return serial()
