"""Parallel execution layer: process-pool fan-out with deterministic seeding.

See :mod:`repro.parallel.pool` for the guarantees (ordering, per-task
seeding via ``SeedSequence.spawn``, serial fallback).
"""

from .pool import (
    POOL_RETRY_COOLDOWN,
    effective_jobs,
    parallel_map,
    reset_pool,
    spawn_generators,
)

__all__ = [
    "POOL_RETRY_COOLDOWN",
    "effective_jobs",
    "parallel_map",
    "reset_pool",
    "spawn_generators",
]
