"""Parallel execution layer: process-pool fan-out with deterministic seeding.

See :mod:`repro.parallel.pool` for the guarantees (ordering, per-task
seeding via ``SeedSequence.spawn``, serial fallback).
"""

from .pool import effective_jobs, parallel_map, spawn_generators

__all__ = ["effective_jobs", "parallel_map", "spawn_generators"]
