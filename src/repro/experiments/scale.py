"""Experiment scale presets.

The paper's full experiment matrix (21 TFIM timesteps x several devices x
several tools) is minutes of synthesis on one core. Three presets trade
pool size for runtime; all of them preserve every figure's qualitative
shape, and synthesis results are disk-cached so only the first run pays.

Select with the ``REPRO_SCALE`` environment variable (``smoke`` | ``quick``
| ``paper``); ``quick`` is the default for benchmarks, ``smoke`` is what
the test suite uses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["ExperimentScale", "SMOKE", "QUICK", "PAPER", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs bounding synthesis effort and run sizes.

    Attributes
    ----------
    tfim_steps:
        Which of the paper's 21 timesteps to evaluate.
    max_nodes:
        QSearch node budget per target.
    maxiter:
        Optimiser iteration cap per node.
    max_cnots_by_width:
        Synthesis depth limit per circuit width (qubits -> CNOTs).
    qfast_patience:
        Stall tolerance when growing deep pools.
    shots:
        Hardware-emulation sample count.
    success_threshold:
        HS distance treated as converged during synthesis.
    """

    name: str
    tfim_steps: Tuple[int, ...]
    max_nodes: int
    maxiter: int
    max_cnots_by_width: Tuple[Tuple[int, int], ...]
    qfast_patience: int
    shots: int
    success_threshold: float
    restarts: int = 1

    def steps(self) -> List[int]:
        return list(self.tfim_steps)

    def max_cnots(self, num_qubits: int) -> int:
        table = dict(self.max_cnots_by_width)
        if num_qubits in table:
            return table[num_qubits]
        return max(table.values())


_ALL_21 = tuple(range(1, 22))

SMOKE = ExperimentScale(
    name="smoke",
    tfim_steps=(1, 6, 11, 16, 21),
    max_nodes=12,
    maxiter=80,
    max_cnots_by_width=((2, 3), (3, 5), (4, 7), (5, 9)),
    qfast_patience=4,
    shots=2048,
    success_threshold=1e-5,
)

QUICK = ExperimentScale(
    name="quick",
    tfim_steps=_ALL_21,
    max_nodes=25,
    maxiter=120,
    max_cnots_by_width=((2, 3), (3, 6), (4, 10), (5, 14)),
    qfast_patience=8,
    shots=4096,
    success_threshold=1e-6,
)

PAPER = ExperimentScale(
    name="paper",
    tfim_steps=_ALL_21,
    max_nodes=150,
    maxiter=300,
    max_cnots_by_width=((2, 3), (3, 8), (4, 16), (5, 24)),
    qfast_patience=12,
    shots=8192,
    success_threshold=1e-8,
    restarts=2,
)

_PRESETS = {"smoke": SMOKE, "quick": QUICK, "paper": PAPER}


def get_scale(name: str = None) -> ExperimentScale:
    """Resolve a scale by name or the ``REPRO_SCALE`` environment variable."""
    key = (name or os.environ.get("REPRO_SCALE", "quick")).lower()
    if key not in _PRESETS:
        raise KeyError(f"unknown scale {key!r}; choose from {sorted(_PRESETS)}")
    return _PRESETS[key]
