"""Table reproductions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..noise.devices import TABLE1_CNOT_ERRORS, get_device

__all__ = ["Table1Row", "table1", "table1_rows"]


@dataclass(frozen=True)
class Table1Row:
    machine: str
    num_qubits: int
    avg_cnot_error: float


def table1() -> List[Table1Row]:
    """Table 1: average CNOT errors on the five IBM machines.

    The snapshots are constructed so these match the published averages
    exactly (the paper's calibration date: 2021/01/18).
    """
    order = ["manhattan", "toronto", "santiago", "rome", "ourense"]
    rows = []
    for name in order:
        device = get_device(name)
        rows.append(
            Table1Row(
                machine=name.capitalize(),
                num_qubits=device.num_qubits,
                avg_cnot_error=device.average_cnot_error(),
            )
        )
    return rows


def table1_rows() -> str:
    lines = [
        "[table1] Average CNOT errors on IBM machines (2021/01/18)",
        "IBM Machine  Num. qubits  Av. CNOT err.",
    ]
    for row in table1():
        lines.append(
            f"{row.machine:<11}  {row.num_qubits:>11}  {row.avg_cnot_error:>12.5f}"
        )
    return "\n".join(lines)
