"""Shared approximate-circuit pools.

Every figure draws from the same per-workload pools (the paper likewise
synthesises once and re-runs the pool under each noise setting), so pools
are built here with the scale's synthesis budget and disk-cached by the
synthesis layer. Circuits are synthesised against *line* coupling
(``0-1-2-...``), which makes every CNOT native on the paper's five-qubit
devices and on the first rows of Toronto/Manhattan — the paper's
"optimization level 1 with mappings to qubits 0, 1, 2, 3, and 4".

Pool construction is embarrassingly parallel (one synthesis run per TFIM
timestep / Grover width / Toffoli width, each with its own fixed seed), so
the per-target loops fan out through :func:`repro.parallel.parallel_map`:
set ``REPRO_JOBS`` (or pass ``jobs=``) to build a cold cache with several
workers. Results are identical whatever the worker count — every target's
synthesis seed is a pure function of the target, never of scheduling.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..apps.grover import grover_circuit
from ..apps.tfim import TFIMSpec, tfim_step_circuit
from ..apps.toffoli import mcx_circuit, mcx_unitary
from ..parallel import parallel_map
from ..transpile.basis import to_basis_gates
from ..transpile.passes import merge_single_qubit_gates
from ..synthesis.approximations import (
    ApproximateCircuitSet,
    generate_approximate_circuits,
)
from .scale import ExperimentScale, get_scale

__all__ = [
    "line_coupling",
    "tfim_pools",
    "grover_pool",
    "grover_pools",
    "toffoli_pool",
    "toffoli_pools",
]


def line_coupling(num_qubits: int) -> List[Tuple[int, int]]:
    """Nearest-neighbour CNOT placements ``(0,1), (1,2), ...``."""
    return [(i, i + 1) for i in range(num_qubits - 1)]


def _tool_for_width(num_qubits: int) -> str:
    # QSearch up to 3 qubits (the paper: "QSearch begins to require a
    # prohibitive amount of search time ... more than four qubits");
    # QFast beyond.
    return "qsearch" if num_qubits <= 3 else "qfast"


def _synth_options(scale: ExperimentScale, num_qubits: int, tool: str) -> dict:
    options = {
        "max_cnots": scale.max_cnots(num_qubits),
        "maxiter": scale.maxiter,
        "restarts": scale.restarts,
        "success_threshold": scale.success_threshold,
    }
    if tool == "qsearch":
        options["max_nodes"] = scale.max_nodes
        options["beam_width"] = 8
    else:
        options["patience"] = scale.qfast_patience
        options["beam_width"] = 2
    return options


def _build_tfim_step(task) -> Tuple[int, ApproximateCircuitSet]:
    """Worker: synthesise one timestep's pool (module-level for pickling)."""
    step, spec, tool, coupling, max_hs, options = task
    target = tfim_step_circuit(spec, step).unitary()
    pool = generate_approximate_circuits(
        target,
        tool=tool,
        coupling=coupling,
        max_hs=max_hs,
        seed=1000 + step,
        synthesizer_options=dict(options),
    )
    return (step, pool)


def tfim_pools(
    num_qubits: int,
    *,
    scale: Optional[ExperimentScale] = None,
    spec: Optional[TFIMSpec] = None,
    max_hs: float = float("inf"),
    jobs: Optional[int] = None,
) -> List[Tuple[int, ApproximateCircuitSet]]:
    """Per-timestep approximate-circuit pools for the TFIM workload.

    Returns ``[(step_index, pool), ...]`` over the scale's timesteps.
    Timesteps synthesise in parallel when ``jobs`` / ``REPRO_JOBS`` allows;
    each step keeps its fixed seed (``1000 + step``), so the result is
    independent of the worker count.
    """
    scale = scale or get_scale()
    spec = spec or TFIMSpec(num_qubits)
    if spec.num_qubits != num_qubits:
        raise ValueError("spec width mismatch")
    tool = _tool_for_width(num_qubits)
    coupling = line_coupling(num_qubits)
    options = _synth_options(scale, num_qubits, tool)
    tasks = [
        (step, spec, tool, coupling, max_hs, options) for step in scale.steps()
    ]
    return parallel_map(_build_tfim_step, tasks, jobs=jobs)


def grover_pool(
    num_qubits: int = 3,
    marked: str = "111",
    *,
    scale: Optional[ExperimentScale] = None,
    max_hs: float = float("inf"),
) -> ApproximateCircuitSet:
    """Approximate circuits for the Grover reference unitary."""
    scale = scale or get_scale()
    target = grover_circuit(num_qubits, marked).unitary()
    tool = _tool_for_width(num_qubits)
    options = _synth_options(scale, num_qubits, tool)
    # Grover's unitary is deeper than a TFIM step: give the search more
    # depth room at every scale.
    options["max_cnots"] = scale.max_cnots(num_qubits) + 2
    return generate_approximate_circuits(
        target,
        tool=tool,
        coupling=line_coupling(num_qubits),
        max_hs=max_hs,
        seed=2000 + num_qubits,
        synthesizer_options=options,
    )


def toffoli_pool(
    num_controls: int,
    *,
    scale: Optional[ExperimentScale] = None,
    max_hs: float = float("inf"),
) -> ApproximateCircuitSet:
    """Approximate circuits for the ``num_controls``-control Toffoli.

    Toffoli targets defeat growth-based synthesis (their HS landscape
    plateaus near the identity), so the pool is produced by compression of
    the exact ancilla-free reference — see
    :mod:`repro.synthesis.compression`.
    """
    scale = scale or get_scale()
    target = mcx_unitary(num_controls)
    reference = merge_single_qubit_gates(to_basis_gates(mcx_circuit(num_controls)))
    options = {
        "maxiter": scale.maxiter,
        "success_threshold": scale.success_threshold,
        "trial_drops": 3 if scale.name != "smoke" else 2,
        "stride": 2 if reference.cnot_count > 40 else 1,
    }
    return generate_approximate_circuits(
        target,
        tool="compress",
        max_hs=max_hs,
        seed=3000 + num_controls,
        synthesizer_options=options,
        reference=reference,
    )


# ---------------------------------------------------------------------------
# Per-width fan-out (one synthesis task per workload width)
# ---------------------------------------------------------------------------

def _build_grover_pool(task) -> Tuple[int, ApproximateCircuitSet]:
    num_qubits, marked, scale, max_hs = task
    return (
        num_qubits,
        grover_pool(num_qubits, marked, scale=scale, max_hs=max_hs),
    )


def grover_pools(
    widths: Iterable[int],
    marked: Optional[str] = None,
    *,
    scale: Optional[ExperimentScale] = None,
    max_hs: float = float("inf"),
    jobs: Optional[int] = None,
) -> List[Tuple[int, ApproximateCircuitSet]]:
    """Grover pools for several widths, ``[(num_qubits, pool), ...]``.

    ``marked=None`` marks the all-ones state at each width.
    """
    scale = scale or get_scale()
    tasks = [
        (w, marked if marked is not None else "1" * w, scale, max_hs)
        for w in widths
    ]
    return parallel_map(_build_grover_pool, tasks, jobs=jobs)


def _build_toffoli_pool(task) -> Tuple[int, ApproximateCircuitSet]:
    num_controls, scale, max_hs = task
    return (num_controls, toffoli_pool(num_controls, scale=scale, max_hs=max_hs))


def toffoli_pools(
    control_counts: Iterable[int],
    *,
    scale: Optional[ExperimentScale] = None,
    max_hs: float = float("inf"),
    jobs: Optional[int] = None,
) -> List[Tuple[int, ApproximateCircuitSet]]:
    """Toffoli pools for several widths, ``[(num_controls, pool), ...]``."""
    scale = scale or get_scale()
    tasks = [(k, scale, max_hs) for k in control_counts]
    return parallel_map(_build_toffoli_pool, tasks, jobs=jobs)
