"""Execution backends and evaluation plumbing shared by the figure drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.channels import apply_readout_errors
from ..noise.devices import DeviceSnapshot, get_device
from ..noise.model import NoiseModel
from ..sim.density_matrix import DensityMatrixSimulator
from ..sim.expectation import average_magnetization
from ..sim.statevector import StatevectorSimulator
from ..sim.trajectory import TrajectorySimulator
from ..transpile.layout import Layout
from ..transpile.transpiler import TranspileResult, transpile

__all__ = [
    "Backend",
    "IdealBackend",
    "NoiseModelBackend",
    "TrajectoryBackend",
    "backend_config",
    "backend_is_deterministic",
    "run_distributions",
    "marginal_distribution",
    "transpiled_virtual_distribution",
    "run_magnetization",
]


class Backend(Protocol):
    """Anything that executes a circuit into a basis-state distribution."""

    name: str

    def run(self, circuit: QuantumCircuit) -> np.ndarray: ...


class IdealBackend:
    """Noise-free execution (the "noise free reference" series)."""

    name = "ideal"
    deterministic = True

    def __init__(self) -> None:
        self._sim = StatevectorSimulator()

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        return self._sim.run(circuit.without_measurements()).probabilities()


class NoiseModelBackend:
    """Exact density-matrix execution under a device noise model.

    This is the reproduction's equivalent of Qiskit Aer with a device
    noise model: deterministic (no shot noise), including readout
    confusion.
    """

    deterministic = True

    def __init__(self, noise_model: NoiseModel, name: Optional[str] = None) -> None:
        self.noise_model = noise_model
        self.name = name or noise_model.name
        self._sim = DensityMatrixSimulator(noise_model)

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        return self._sim.probabilities(circuit.without_measurements())

    def run_many(self, circuits: Sequence[QuantumCircuit]) -> List[np.ndarray]:
        """Batched execution of a circuit list (pool workloads).

        Uses the compiled engine of :mod:`repro.sim.batched`; each result
        matches :meth:`run` to <= 1e-12 (identical math, reassociated
        floating point). Prefer this whenever a whole pool is evaluated
        under one model.
        """
        from ..sim.batched import simulate_pool

        circuits = list(circuits)
        if not circuits:
            return []
        stacks = simulate_pool(
            [c.without_measurements() for c in circuits], [self.noise_model]
        )
        return [stack[0] for stack in stacks]


class TrajectoryBackend:
    """Shot-based noisy execution via the batched trajectory engine.

    Complements :class:`NoiseModelBackend`: instead of the exact
    (shot-noise-free) density-matrix distribution it returns an empirical
    ``shots``-sample estimate, the way hardware counts behave, at
    ``2^n`` memory instead of ``4^n``. Prefer it for wider circuits, or
    when shot noise is part of what an experiment studies.

    Deterministic per circuit: each ``run`` re-seeds a fresh simulator, so
    a given ``(circuit, seed, shots)`` always yields the same distribution
    independent of evaluation order.
    """

    deterministic = True

    def __init__(
        self,
        noise_model: NoiseModel,
        *,
        shots: int = 4096,
        seed: int = 0,
        name: Optional[str] = None,
        method: str = "batched",
    ) -> None:
        self.noise_model = noise_model
        self.shots = shots
        self.seed = seed
        self.method = method
        self.name = name or f"{noise_model.name}_traj"

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        sim = TrajectorySimulator(
            self.noise_model, seed=self.seed, method=self.method
        )
        return sim.probabilities(
            circuit.without_measurements(), shots=self.shots
        )


def run_distributions(
    backend, circuits: Sequence[QuantumCircuit]
) -> List[np.ndarray]:
    """Run many circuits on a backend, batched when it supports it.

    Dispatches to ``backend.run_many`` where available (one compiled,
    batched pass for :class:`NoiseModelBackend`) and falls back to a plain
    per-circuit ``run`` loop otherwise — same results either way.
    """
    circuits = list(circuits)
    run_many = getattr(backend, "run_many", None)
    if run_many is not None:
        return list(run_many(circuits))
    return [backend.run(circuit) for circuit in circuits]


def backend_is_deterministic(backend) -> bool:
    """Whether ``backend.run`` is a pure function of the circuit.

    Stateful backends (e.g. :class:`~repro.hardware.backend.FakeHardware`,
    whose shot sampler advances one RNG across calls) produce results that
    depend on evaluation *order*, so campaign checkpointing must treat
    their whole evaluation sequence as a single unit to stay
    resume-deterministic.
    """
    return bool(getattr(backend, "deterministic", False))


def backend_config(backend) -> dict:
    """A JSON-able provenance descriptor of a backend, for store keys.

    Captures the identity that determines the backend's outputs: its
    name, noise-model name, and — where present — shot count, seed and
    emulation knobs. Used as part of checkpoint-unit configs so two
    different backends never share a checkpoint.
    """
    cfg: dict = {"name": getattr(backend, "name", type(backend).__name__)}
    noise_model = getattr(backend, "noise_model", None)
    if noise_model is not None:
        cfg["noise_model"] = getattr(noise_model, "name", None)
    for attr in ("shots", "seed", "method", "drift", "crosstalk"):
        value = getattr(backend, attr, None)
        if isinstance(value, (bool, int, float, str)):
            cfg[attr] = value
    return cfg


def marginal_distribution(
    probabilities: np.ndarray, wires: Sequence[int]
) -> np.ndarray:
    """Distribution over ``wires`` (new qubit ``i`` = old wire ``wires[i]``),
    marginalising every other wire out.
    """
    m = int(round(np.log2(probabilities.size)))
    if 2**m != probabilities.size:
        raise ValueError("distribution size is not a power of two")
    if len(set(wires)) != len(wires):
        raise ValueError("duplicate wires")
    tensor = probabilities.reshape((2,) * m)
    keep_axes = [m - 1 - w for w in wires]  # tensor axis of old wire w
    other = tuple(ax for ax in range(m) if ax not in keep_axes)
    if other:
        tensor = tensor.sum(axis=other)
    # After summing, the kept axes appear in increasing original order.
    k = len(wires)
    remaining = sorted(keep_axes)
    src = [remaining.index(ax) for ax in keep_axes]  # position of qubit i
    dst = [k - 1 - i for i in range(k)]  # qubit i belongs on axis k-1-i
    tensor = np.moveaxis(tensor, src, dst)
    return np.ascontiguousarray(tensor).reshape(-1)


def transpiled_virtual_distribution(
    circuit: QuantumCircuit,
    device: DeviceSnapshot,
    *,
    optimization_level: int = 1,
    initial_layout: Optional[Sequence[int]] = None,
    hardware=None,
    include_thermal: bool = True,
) -> Tuple[np.ndarray, TranspileResult]:
    """Transpile, execute on the device's noise, return the *virtual* dist.

    Runs the routed circuit over its active physical qubits (relabelled to
    local indices), then marginalises ancilla wires and undoes the final
    layout so the returned distribution is over the original virtual
    qubits — exactly what hardware counts deliver after Qiskit's final
    mapping.

    ``hardware`` may be a :class:`~repro.hardware.backend.FakeHardware`
    *factory* ``(device, qubits) -> backend``; otherwise a noiseless-shot
    exact noise-model simulation is used.
    """
    result = transpile(
        circuit,
        device,
        optimization_level=optimization_level,
        initial_layout=initial_layout,
    )
    local, local_final = result.local_circuit()
    if local.num_qubits > 10:
        raise ValueError(
            f"routing wandered over {local.num_qubits} qubits; "
            "restrict the layout"
        )
    if hardware is not None:
        backend = hardware(device, result.active_qubits)
        probs = backend.run(local.without_measurements())
    else:
        model = device.noise_model(
            result.active_qubits, include_thermal=include_thermal
        )
        probs = DensityMatrixSimulator(model).probabilities(
            local.without_measurements()
        )
    wires = list(local_final.physical_qubits[: circuit.num_qubits])
    return marginal_distribution(probs, wires), result


def run_magnetization(circuit: QuantumCircuit, backend: Backend) -> float:
    """The TFIM observable under a backend."""
    return average_magnetization(backend.run(circuit))
