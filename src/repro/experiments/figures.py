"""Per-figure experiment drivers.

One function per figure of the paper (``fig02`` ... ``fig19``), each
returning a result object that carries the same series the figure plots
plus ``rows()`` — a plain-text rendering of those series. Benchmarks in
``benchmarks/`` call these drivers and assert each figure's qualitative
shape.

Pools are shared across figures (see :mod:`repro.experiments.pools`) and
synthesis is disk-cached, so the first driver to run a workload pays for
its synthesis and the rest re-use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.grover import grover_circuit, success_probability
from ..apps.tfim import TFIMSpec, tfim_step_circuit
from ..apps.toffoli import (
    mcx_circuit,
    toffoli_js_score,
    toffoli_test_suite,
)
from ..circuits.circuit import QuantumCircuit
from ..hardware.backend import FakeHardware
from ..hardware.calibration import noise_report, paper_mappings
from ..metrics.distributions import UNIFORM_NOISE_JS
from ..noise.devices import get_device
from ..parallel import effective_jobs, parallel_map
from ..sim.expectation import average_magnetization
from ..store.campaign import UnitQuarantined, checkpoint_unit
from ..transpile.basis import to_basis_gates
from ..transpile.passes import merge_single_qubit_gates
from .pools import grover_pool, tfim_pools, toffoli_pool
from .runner import (
    Backend,
    IdealBackend,
    NoiseModelBackend,
    backend_config,
    backend_is_deterministic,
    run_distributions,
    transpiled_virtual_distribution,
)
from .scale import ExperimentScale, get_scale

__all__ = [
    "ApproxPoint",
    "TFIMFigure",
    "ScatterFigure",
    "BestDepthFigure",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig07b",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "clear_memo",
]

# ---------------------------------------------------------------------------
# Result containers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ApproxPoint:
    """One approximate circuit evaluated under one backend."""

    step: int
    cnot_count: int
    hs_distance: float
    value: float


@dataclass
class TFIMFigure:
    """Magnetization-over-timesteps figures (2, 3, 4, 8-10, 12, 13)."""

    figure_id: str
    description: str
    device: str
    num_qubits: int
    steps: List[int]
    noise_free: np.ndarray
    noisy_reference: np.ndarray
    reference_cnots: List[int]
    points: List[ApproxPoint]

    def points_at(self, step: int) -> List[ApproxPoint]:
        return [p for p in self.points if p.step == step]

    def minimal_hs_series(self) -> np.ndarray:
        """Magnetization of the lowest-HS circuit per step ("Minimal HS")."""
        out = np.empty(len(self.steps))
        for i, step in enumerate(self.steps):
            pts = self.points_at(step)
            out[i] = min(pts, key=lambda p: p.hs_distance).value
        return out

    def best_points(self) -> List[ApproxPoint]:
        """Per step, the circuit whose output is closest to the ideal."""
        out = []
        for i, step in enumerate(self.steps):
            pts = self.points_at(step)
            out.append(min(pts, key=lambda p: abs(p.value - self.noise_free[i])))
        return out

    def best_series(self) -> np.ndarray:
        return np.array([p.value for p in self.best_points()])

    def best_depth_series(self) -> List[int]:
        return [p.cnot_count for p in self.best_points()]

    def reference_error(self) -> float:
        return float(np.mean(np.abs(self.noisy_reference - self.noise_free)))

    def best_error(self) -> float:
        return float(np.mean(np.abs(self.best_series() - self.noise_free)))

    def minimal_hs_error(self) -> float:
        return float(np.mean(np.abs(self.minimal_hs_series() - self.noise_free)))

    def improvement(self) -> float:
        """Precision gain of the best approximations over the reference.

        The paper's headline metric ("gain in overall precision by up to
        60%"): 1 - best_error / reference_error.
        """
        ref = self.reference_error()
        if ref <= 0:
            return 0.0
        return 1.0 - self.best_error() / ref

    def fraction_beating_reference(self) -> float:
        """Share of all approximate circuits closer to ideal than the ref."""
        total, better = 0, 0
        for i, step in enumerate(self.steps):
            ref_err = abs(self.noisy_reference[i] - self.noise_free[i])
            for p in self.points_at(step):
                total += 1
                if abs(p.value - self.noise_free[i]) < ref_err:
                    better += 1
        return better / total if total else 0.0

    def rows(self) -> str:
        lines = [
            f"[{self.figure_id}] {self.description}",
            f"device={self.device} qubits={self.num_qubits} "
            f"pool={len(self.points)} circuits",
            "step  ref_cnots  noise_free  noisy_ref  minimal_HS  best_approx"
            "  best_cnots",
        ]
        min_hs = self.minimal_hs_series()
        best = self.best_series()
        depths = self.best_depth_series()
        for i, step in enumerate(self.steps):
            lines.append(
                f"{step:>4}  {self.reference_cnots[i]:>9}  "
                f"{self.noise_free[i]:>10.4f}  {self.noisy_reference[i]:>9.4f}  "
                f"{min_hs[i]:>10.4f}  {best[i]:>11.4f}  {depths[i]:>10}"
            )
        lines.append(
            f"mean|err|: reference={self.reference_error():.4f} "
            f"minimal_HS={self.minimal_hs_error():.4f} "
            f"best={self.best_error():.4f} "
            f"improvement={self.improvement():.1%} "
            f"beating_ref={self.fraction_beating_reference():.1%}"
        )
        return "\n".join(lines)


@dataclass
class ScatterFigure:
    """Metric-vs-CNOT-count figures (5-7, 14, 15, 17-19)."""

    figure_id: str
    description: str
    device: str
    metric: str  # "success_prob" (higher better) | "js" (lower better)
    points: List[ApproxPoint]
    reference: ApproxPoint
    extra_references: Dict[str, ApproxPoint] = field(default_factory=dict)
    noise_floor: Optional[float] = None

    def _better(self, a: float, b: float) -> bool:
        return a > b if self.metric == "success_prob" else a < b

    def fraction_better_than_reference(self) -> float:
        if not self.points:
            return 0.0
        wins = sum(
            1 for p in self.points if self._better(p.value, self.reference.value)
        )
        return wins / len(self.points)

    def best(self) -> ApproxPoint:
        key = (lambda p: -p.value) if self.metric == "success_prob" else (
            lambda p: p.value
        )
        return min(self.points, key=key)

    def improvement(self) -> float:
        """Relative metric improvement of the best circuit over the ref."""
        best = self.best().value
        ref = self.reference.value
        if self.metric == "success_prob":
            return best / ref - 1.0 if ref > 0 else 0.0
        return 1.0 - best / ref if ref > 0 else 0.0

    def rows(self) -> str:
        lines = [
            f"[{self.figure_id}] {self.description}",
            f"device={self.device} metric={self.metric} "
            f"pool={len(self.points)} circuits",
            f"reference: cnots={self.reference.cnot_count} "
            f"value={self.reference.value:.4f}",
        ]
        for name, ref in self.extra_references.items():
            lines.append(
                f"{name}: cnots={ref.cnot_count} value={ref.value:.4f}"
            )
        if self.noise_floor is not None:
            lines.append(f"random-noise floor: {self.noise_floor:.4f}")
        lines.append("cnots  hs_distance  value")
        for p in sorted(self.points, key=lambda p: (p.cnot_count, p.value)):
            lines.append(
                f"{p.cnot_count:>5}  {p.hs_distance:>11.4f}  {p.value:>6.4f}"
            )
        best = self.best()
        lines.append(
            f"best: cnots={best.cnot_count} value={best.value:.4f} "
            f"improvement={self.improvement():.1%} "
            f"better_than_ref={self.fraction_better_than_reference():.1%}"
        )
        return "\n".join(lines)


@dataclass
class BestDepthFigure:
    """Figure 11: best circuit's CNOT depth per timestep per error level."""

    figure_id: str
    description: str
    steps: List[int]
    series: Dict[float, List[int]]  # cnot error level -> depth series

    def mean_depth(self, level: float) -> float:
        return float(np.mean(self.series[level]))

    def rows(self) -> str:
        lines = [f"[{self.figure_id}] {self.description}"]
        header = "step  " + "  ".join(f"err={lvl:g}" for lvl in self.series)
        lines.append(header)
        for i, step in enumerate(self.steps):
            cells = "  ".join(
                f"{self.series[lvl][i]:>7}" for lvl in self.series
            )
            lines.append(f"{step:>4}  {cells}")
        lines.append(
            "mean depth: "
            + ", ".join(
                f"{lvl:g} -> {self.mean_depth(lvl):.2f}" for lvl in self.series
            )
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared computation (memoised per process)
# ---------------------------------------------------------------------------

_MEMO: Dict[Tuple, object] = {}


def clear_memo() -> None:
    """Drop in-process experiment memoisation (not the disk cache)."""
    _MEMO.clear()


def _memoised(key: Tuple, builder: Callable[[], object]):
    if key not in _MEMO:
        _MEMO[key] = builder()
    return _MEMO[key]


def _prepare_reference(circuit: QuantumCircuit) -> QuantumCircuit:
    """Reference circuits run in the device basis (level-1 style)."""
    return merge_single_qubit_gates(to_basis_gates(circuit))


def _spec_config(spec: TFIMSpec) -> dict:
    """A JSON-able identity of a TFIM spec (for checkpoint-unit keys)."""
    schedule = spec.field_schedule
    return {
        "num_qubits": spec.num_qubits,
        "j_coupling": spec.j_coupling,
        "dt": spec.dt,
        "schedule": getattr(schedule, "__qualname__", repr(schedule)),
    }


def _tfim_step_payload(spec: TFIMSpec, step: int, pool, ideal, backend) -> dict:
    """One checkpoint unit: a timestep's reference + pool evaluation.

    The pool is evaluated through :func:`run_distributions`, so dense
    noise-model backends execute it as one compiled, batched pass.
    """
    reference = _prepare_reference(tfim_step_circuit(spec, step))
    candidates = list(pool)
    distributions = run_distributions(
        backend, [c.circuit for c in candidates]
    )
    return {
        "noise_free": float(average_magnetization(ideal.run(reference))),
        "noisy_reference": float(average_magnetization(backend.run(reference))),
        "reference_cnots": int(reference.cnot_count),
        "points": [
            [
                int(c.cnot_count),
                float(c.hs_distance),
                float(average_magnetization(probs)),
            ]
            for c, probs in zip(candidates, distributions)
        ],
    }


def _tfim_experiment(
    figure_id: str,
    description: str,
    num_qubits: int,
    device_name: str,
    backend: Backend,
    scale: ExperimentScale,
    spec: Optional[TFIMSpec] = None,
) -> TFIMFigure:
    spec = spec or TFIMSpec(num_qubits)
    ideal = IdealBackend()
    pools = tfim_pools(num_qubits, scale=scale, spec=spec)
    steps = [s for s, _ in pools]

    base_config = {
        "workload": "tfim",
        "num_qubits": num_qubits,
        "device": device_name,
        "scale": scale.name,
        "backend": backend_config(backend),
        "spec": _spec_config(spec),
    }
    if backend_is_deterministic(backend):
        # Pure backends: one resumable checkpoint unit per sweep point.
        # A quarantined step (transient failure surviving the lower
        # layers' retries) is dropped from the figure — the campaign
        # records it, ``repro runs retry`` recomputes it — but at least
        # one step must survive or there is no figure to assemble.
        computed: List[Tuple[int, dict]] = []
        quarantined: Optional[UnitQuarantined] = None
        for step, pool in pools:
            try:
                payload = checkpoint_unit(
                    {
                        "kind": "tfim-step",
                        "step": step,
                        "pool_seed": 1000 + step,
                        **base_config,
                    },
                    lambda step=step, pool=pool: _tfim_step_payload(
                        spec, step, pool, ideal, backend
                    ),
                )
            except UnitQuarantined as exc:
                quarantined = exc
                continue
            computed.append((step, payload))
        if not computed:
            assert quarantined is not None
            raise quarantined
        steps = [s for s, _ in computed]
        payloads = [p for _, p in computed]
    else:
        # Stateful backends (shot RNG carried across runs): evaluation
        # order is part of the result, so the whole figure is one unit —
        # a quarantine here propagates (no partial figure is possible).
        config = {
            "kind": "tfim-figure",
            "steps": steps,
            "pool_seeds": [1000 + s for s in steps],
            **base_config,
        }
        payloads = checkpoint_unit(
            config,
            lambda: [
                _tfim_step_payload(spec, step, pool, ideal, backend)
                for step, pool in pools
            ],
        )

    points = [
        ApproxPoint(step, cnots, hs, value)
        for step, payload in zip(steps, payloads)
        for cnots, hs, value in payload["points"]
    ]
    return TFIMFigure(
        figure_id=figure_id,
        description=description,
        device=device_name,
        num_qubits=num_qubits,
        steps=steps,
        noise_free=np.array([p["noise_free"] for p in payloads]),
        noisy_reference=np.array([p["noisy_reference"] for p in payloads]),
        reference_cnots=[p["reference_cnots"] for p in payloads],
        points=points,
    )


def _device_backend(device_name: str, num_qubits: int) -> NoiseModelBackend:
    device = get_device(device_name)
    model = device.noise_model(list(range(num_qubits)))
    return NoiseModelBackend(model, name=f"{device_name}_model")


def _sweep_backend(cnot_error: float, num_qubits: int) -> NoiseModelBackend:
    device = get_device("ourense")
    model = device.noise_model(list(range(num_qubits))).with_cnot_depolarizing(
        cnot_error
    )
    return NoiseModelBackend(model, name=f"ourense_cx{cnot_error:g}")


def _hardware_backend(
    device_name: str, num_qubits: int, scale: ExperimentScale, seed: int = 17
) -> FakeHardware:
    return FakeHardware(
        device_name,
        qubits=list(range(num_qubits)),
        shots=scale.shots,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# TFIM figures
# ---------------------------------------------------------------------------

def fig02(scale: Optional[ExperimentScale] = None) -> TFIMFigure:
    """3-qubit TFIM, Toronto noise model: reference vs selected circuits."""
    scale = scale or get_scale()
    return _memoised(
        ("tfim", 3, "toronto", scale.name),
        lambda: _tfim_experiment(
            "fig02",
            "3q TFIM magnetization, Toronto noise model "
            "(noise-free / noisy ref / minimal-HS / best approximate)",
            3,
            "toronto",
            _device_backend("toronto", 3),
            scale,
        ),
    )


def fig03(scale: Optional[ExperimentScale] = None) -> TFIMFigure:
    """Same experiment as fig02, reported as the full circuit scatter."""
    result = fig02(scale)
    out = TFIMFigure(**{**result.__dict__})
    out.figure_id = "fig03"
    out.description = "3q TFIM, Toronto noise model: all approximate circuits"
    return out


def fig04(scale: Optional[ExperimentScale] = None) -> TFIMFigure:
    """4-qubit TFIM under the Santiago noise model."""
    scale = scale or get_scale()
    return _memoised(
        ("tfim", 4, "santiago", scale.name),
        lambda: _tfim_experiment(
            "fig04",
            "4q TFIM magnetization, Santiago noise model: all approximate "
            "circuits",
            4,
            "santiago",
            _device_backend("santiago", 4),
            scale,
        ),
    )


def _sweep_figure(
    figure_id: str, cnot_error: float, scale: ExperimentScale
) -> TFIMFigure:
    return _memoised(
        ("tfim-sweep", 3, cnot_error, scale.name),
        lambda: _tfim_experiment(
            figure_id,
            f"3q TFIM, Ourense noise model with CNOT error pinned to "
            f"{cnot_error:g}",
            3,
            "ourense",
            _sweep_backend(cnot_error, 3),
            scale,
        ),
    )


def fig08(scale: Optional[ExperimentScale] = None) -> TFIMFigure:
    """Sensitivity sweep: CNOT error = 0."""
    return _sweep_figure("fig08", 0.0, scale or get_scale())


def fig09(scale: Optional[ExperimentScale] = None) -> TFIMFigure:
    """Sensitivity sweep: CNOT error = 0.12."""
    return _sweep_figure("fig09", 0.12, scale or get_scale())


def fig10(scale: Optional[ExperimentScale] = None) -> TFIMFigure:
    """Sensitivity sweep: CNOT error = 0.24."""
    return _sweep_figure("fig10", 0.24, scale or get_scale())


def _sweep_figure_task(task) -> TFIMFigure:
    """Worker: one pinned-CNOT-error TFIM experiment (picklable)."""
    figure_id, level, scale_name = task
    return _sweep_figure(figure_id, level, get_scale(scale_name))


def fig11(
    scale: Optional[ExperimentScale] = None,
    levels: Sequence[float] = (0.0, 0.03, 0.06, 0.12, 0.24),
    jobs: Optional[int] = None,
) -> BestDepthFigure:
    """Best-performing circuit depth vs timestep for several error levels.

    The per-level experiments are independent; with ``jobs``/``REPRO_JOBS``
    above 1 the not-yet-memoised levels run in worker processes (synthesis
    and density-matrix evaluation are deterministic, so the fan-out changes
    wall-clock only). Results are folded back into the in-process memo so
    fig08-10 reuse them.
    """
    scale = scale or get_scale()
    missing = [
        level
        for level in levels
        if ("tfim-sweep", 3, level, scale.name) not in _MEMO
    ]
    if len(missing) > 1 and effective_jobs(jobs) > 1:
        # Pools are shared by every level: synthesise them once here (the
        # per-step fan-out already parallelises it) so workers hit the
        # disk cache instead of each re-synthesising the workload.
        tfim_pools(3, scale=scale, jobs=jobs)
        parallel_map(
            _sweep_figure_task,
            [(f"fig11[{level:g}]", level, scale.name) for level in missing],
            jobs=jobs,
            # Fold each level into the in-process memo as it lands (so
            # fig08-10 reuse it); idempotent if the pool restarts serially.
            on_result=lambda i, result: _MEMO.__setitem__(
                ("tfim-sweep", 3, missing[i], scale.name), result
            ),
        )
    series: Dict[float, List[int]] = {}
    steps: List[int] = []
    for level in levels:
        result = _sweep_figure(f"fig11[{level:g}]", level, scale)
        series[level] = result.best_depth_series()
        steps = result.steps
    return BestDepthFigure(
        figure_id="fig11",
        description="CNOT depth of the best approximate circuit per timestep "
        "for selected CNOT error levels (Ourense base model)",
        steps=steps,
        series=series,
    )


def fig12(scale: Optional[ExperimentScale] = None) -> TFIMFigure:
    """3-qubit TFIM executed on emulated Manhattan hardware."""
    scale = scale or get_scale()
    return _memoised(
        ("tfim-hw", 3, "manhattan", scale.name),
        lambda: _tfim_experiment(
            "fig12",
            "3q TFIM on (emulated) Manhattan hardware",
            3,
            "manhattan",
            _hardware_backend("manhattan", 3, scale),
            scale,
        ),
    )


def fig13(scale: Optional[ExperimentScale] = None) -> TFIMFigure:
    """4-qubit TFIM executed on emulated Manhattan hardware."""
    scale = scale or get_scale()
    return _memoised(
        ("tfim-hw", 4, "manhattan", scale.name),
        lambda: _tfim_experiment(
            "fig13",
            "4q TFIM on (emulated) Manhattan hardware",
            4,
            "manhattan",
            _hardware_backend("manhattan", 4, scale),
            scale,
        ),
    )


# ---------------------------------------------------------------------------
# Grover figures
# ---------------------------------------------------------------------------

def _grover_figure(
    figure_id: str,
    description: str,
    device_name: str,
    scale: ExperimentScale,
    *,
    hardware: bool,
) -> ScatterFigure:
    marked = "111"
    pool = grover_pool(3, marked, scale=scale)
    device = get_device(device_name)
    if hardware:
        backend = _hardware_backend(device_name, 3, scale)
    else:
        backend = _device_backend(device_name, 3)

    def build() -> dict:
        candidates = list(pool)
        distributions = run_distributions(
            backend, [c.circuit for c in candidates]
        )
        points = [
            [
                int(c.cnot_count),
                float(c.hs_distance),
                float(success_probability(probs, marked)),
            ]
            for c, probs in zip(candidates, distributions)
        ]

        # The reference is transpiled onto the device (level 1, as the
        # paper's simulator experiments; its CNOT count balloons under
        # routing, which is why the paper's Figure 14 reference exceeded
        # 50 CNOTs).
        reference_circuit = grover_circuit(3, marked)
        hw_factory = None
        if hardware:
            hw_factory = lambda dev, qubits: FakeHardware(
                dev, qubits, shots=scale.shots, seed=17
            )
        ref_probs, ref_result = transpiled_virtual_distribution(
            reference_circuit,
            device,
            optimization_level=1,
            hardware=hw_factory,
        )
        return {
            "points": points,
            "reference": {
                "cnot_count": int(ref_result.circuit.cnot_count),
                "value": float(success_probability(ref_probs, marked)),
            },
        }

    # One circuit-set evaluation = one checkpoint unit.
    payload = checkpoint_unit(
        {
            "kind": "grover-figure",
            "workload": "grover",
            "num_qubits": 3,
            "marked": marked,
            "device": device_name,
            "scale": scale.name,
            "hardware": hardware,
            "pool_seed": 2000 + 3,
            "hw_seed": 17 if hardware else None,
            "backend": backend_config(backend),
        },
        build,
    )
    return ScatterFigure(
        figure_id=figure_id,
        description=description,
        device=device_name,
        metric="success_prob",
        points=[
            ApproxPoint(0, cnots, hs, value)
            for cnots, hs, value in payload["points"]
        ],
        reference=ApproxPoint(
            0,
            payload["reference"]["cnot_count"],
            0.0,
            payload["reference"]["value"],
        ),
    )


def fig05(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """3-qubit Grover under the Toronto noise model."""
    scale = scale or get_scale()
    return _memoised(
        ("grover", "toronto", scale.name),
        lambda: _grover_figure(
            "fig05",
            "P(correct) vs CNOT count, 3q Grover '111', Toronto noise model",
            "toronto",
            scale,
            hardware=False,
        ),
    )


def fig14(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """3-qubit Grover on emulated Rome hardware."""
    scale = scale or get_scale()
    return _memoised(
        ("grover-hw", "rome", scale.name),
        lambda: _grover_figure(
            "fig14",
            "P(correct) vs CNOT count, 3q Grover '111', (emulated) Rome "
            "hardware",
            "rome",
            scale,
            hardware=True,
        ),
    )


# ---------------------------------------------------------------------------
# Toffoli figures
# ---------------------------------------------------------------------------

def _toffoli_figure(
    figure_id: str,
    description: str,
    num_controls: int,
    device_name: str,
    scale: ExperimentScale,
    *,
    hardware: bool,
    initial_layout: Optional[Sequence[int]] = None,
    optimization_level: int = 1,
) -> ScatterFigure:
    n = num_controls + 1
    pool = toffoli_pool(num_controls, scale=scale)
    tests = toffoli_test_suite(num_controls)
    device = get_device(device_name)

    hw_factory = None
    if hardware:
        hw_factory = lambda dev, qubits: FakeHardware(
            dev, qubits, shots=scale.shots, seed=23
        )

    needs_routing = initial_layout is not None or optimization_level >= 3

    if needs_routing:
        def run_distribution(circuit: QuantumCircuit) -> np.ndarray:
            probs, _ = transpiled_virtual_distribution(
                circuit,
                device,
                optimization_level=optimization_level,
                initial_layout=initial_layout,
                hardware=hw_factory,
            )
            return probs
    elif hardware:
        backend = _hardware_backend(device_name, n, scale, seed=23)

        def run_distribution(circuit: QuantumCircuit) -> np.ndarray:
            return backend.run(_prepare_reference(circuit))
    else:
        backend = _device_backend(device_name, n)

        def run_distribution(circuit: QuantumCircuit) -> np.ndarray:
            return backend.run(_prepare_reference(circuit))

    def build() -> dict:
        points = [
            [
                int(c.cnot_count),
                float(c.hs_distance),
                float(toffoli_js_score(run_distribution, c.circuit, tests)),
            ]
            for c in pool
        ]

        # Reference: the ancilla-free MCX construction ("Qiskit's Toffoli
        # without ancilla").
        reference_circuit = _prepare_reference(mcx_circuit(num_controls))
        ref_value = toffoli_js_score(run_distribution, reference_circuit, tests)

        # "QFast's default result": the deepest/lowest-HS circuit the
        # synthesis run converged to.
        qfast = pool.exact if pool.exact else pool.minimal_hs()
        return {
            "points": points,
            "reference": {
                "cnot_count": int(reference_circuit.cnot_count),
                "value": float(ref_value),
            },
            "qfast_reference": {
                "cnot_count": int(qfast.circuit.cnot_count),
                "hs_distance": float(qfast.hs_distance),
                "value": float(
                    toffoli_js_score(run_distribution, qfast.circuit, tests)
                ),
            },
        }

    payload = checkpoint_unit(
        {
            "kind": "toffoli-figure",
            "workload": "toffoli",
            "num_controls": num_controls,
            "device": device_name,
            "scale": scale.name,
            "hardware": hardware,
            "initial_layout": list(initial_layout) if initial_layout else None,
            "optimization_level": optimization_level,
            "pool_seed": 3000 + num_controls,
            "hw_seed": 23 if hardware else None,
        },
        build,
    )
    qfast_ref = payload["qfast_reference"]
    return ScatterFigure(
        figure_id=figure_id,
        description=description,
        device=device_name,
        metric="js",
        points=[
            ApproxPoint(0, cnots, hs, value)
            for cnots, hs, value in payload["points"]
        ],
        reference=ApproxPoint(
            0, payload["reference"]["cnot_count"], 0.0, payload["reference"]["value"]
        ),
        extra_references={
            "qfast_reference": ApproxPoint(
                0,
                qfast_ref["cnot_count"],
                qfast_ref["hs_distance"],
                qfast_ref["value"],
            )
        },
        noise_floor=UNIFORM_NOISE_JS,
    )


def fig06(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """4-qubit Toffoli (3 controls) under the Manhattan noise model."""
    scale = scale or get_scale()
    return _memoised(
        ("toffoli", 3, "manhattan", scale.name),
        lambda: _toffoli_figure(
            "fig06",
            "JS distance vs CNOT count, 4q Toffoli, Manhattan noise model",
            3,
            "manhattan",
            scale,
            hardware=False,
        ),
    )


def fig07(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """5-qubit Toffoli (4 controls) under the Manhattan noise model."""
    scale = scale or get_scale()
    return _memoised(
        ("toffoli", 4, "manhattan", scale.name),
        lambda: _toffoli_figure(
            "fig07",
            "JS distance vs CNOT count, 5q Toffoli, Manhattan noise model",
            4,
            "manhattan",
            scale,
            hardware=False,
        ),
    )


def fig07b(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """The 3-qubit Toffoli negative result (§6.1, graph omitted in paper).

    Approximations should NOT meaningfully beat the hand-optimised 6-CNOT
    Toffoli (Observation 4: short references leave no room).
    """
    scale = scale or get_scale()
    return _memoised(
        ("toffoli", 2, "manhattan", scale.name),
        lambda: _toffoli_figure(
            "fig07b",
            "JS distance vs CNOT count, 3q Toffoli (negative result), "
            "Manhattan noise model",
            2,
            "manhattan",
            scale,
            hardware=False,
        ),
    )


def fig15(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """4-qubit Toffoli on emulated Manhattan hardware."""
    scale = scale or get_scale()
    return _memoised(
        ("toffoli-hw", 3, "manhattan", scale.name),
        lambda: _toffoli_figure(
            "fig15",
            "JS distance vs CNOT count, 4q Toffoli, (emulated) Manhattan "
            "hardware",
            3,
            "manhattan",
            scale,
            hardware=True,
        ),
    )


# ---------------------------------------------------------------------------
# Mapping sensitivity (Figures 16-19)
# ---------------------------------------------------------------------------

def fig16() -> str:
    """The Toronto calibration/noise report with the mapping regions."""
    return noise_report("toronto")


def _mapping_study(scale: ExperimentScale) -> Dict[str, ScatterFigure]:
    """Run the 4q Toffoli over every manual Toronto mapping (§6.4).

    Like the paper, the "best" and "worst" mappings are identified *post
    hoc* from measured results ("We depict only the circuits with the best
    and worst results here") — calibration data alone does not predict the
    ordering, which is Observation 9.
    """
    def build() -> Dict[str, ScatterFigure]:
        results = {}
        for name, mapping in paper_mappings("toronto").items():
            results[name] = _toffoli_figure(
                f"fig17/18[{name}]",
                f"JS vs CNOT count, 4q Toffoli on (emulated) Toronto "
                f"hardware, manual mapping {name}={list(mapping)}",
                3,
                "toronto",
                scale,
                hardware=True,
                initial_layout=list(mapping),
            )
        return results

    return _memoised(("toffoli-map-study", scale.name), build)


def _measured_rank(figure: ScatterFigure) -> float:
    """Outcome score of one mapping: best-circuit JS plus pool median."""
    values = sorted(p.value for p in figure.points)
    median = values[len(values) // 2]
    return figure.best().value + median


def fig17(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """The manual mapping with the best measured results (blue circle)."""
    scale = scale or get_scale()
    study = _mapping_study(scale)
    winner = min(study.values(), key=_measured_rank)
    out = ScatterFigure(**{**winner.__dict__})
    out.figure_id = "fig17"
    out.description = f"(best measured mapping) {winner.description}"
    return out


def fig18(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """The manual mapping with the worst measured results (red circle)."""
    scale = scale or get_scale()
    study = _mapping_study(scale)
    loser = max(study.values(), key=_measured_rank)
    out = ScatterFigure(**{**loser.__dict__})
    out.figure_id = "fig18"
    out.description = f"(worst measured mapping) {loser.description}"
    return out


def fig19(scale: Optional[ExperimentScale] = None) -> ScatterFigure:
    """Automatic (level 3) mapping per circuit, like Qiskit's transpiler."""
    scale = scale or get_scale()
    return _memoised(
        ("toffoli-map", "auto", scale.name),
        lambda: _toffoli_figure(
            "fig19",
            "JS vs CNOT count, 4q Toffoli on (emulated) Toronto hardware, "
            "per-circuit noise-aware mapping (optimization level 3)",
            3,
            "toronto",
            scale,
            hardware=True,
            optimization_level=3,
        ),
    )
