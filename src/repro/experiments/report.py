"""Consolidated reproduction report.

Collates the per-figure result files the benchmarks write into
``results/`` (or regenerates them through the drivers) into one
``REPORT.md`` — the single document a reviewer reads to see every
regenerated table and figure next to the paper's claims.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional

from .scale import ExperimentScale, get_scale

__all__ = ["collate_results", "write_report", "generate_report"]

_SECTIONS = [
    ("Table 1 — device CNOT errors", ["table1"]),
    ("TFIM under device noise models (Figs 2-4)", ["fig02", "fig03", "fig04"]),
    ("Grover (Figs 5, 14)", ["fig05", "fig14"]),
    (
        "Multi-control Toffoli (Figs 6, 7, 15 + 3q negative result)",
        ["fig06", "fig07", "fig07b", "fig15"],
    ),
    ("CNOT-error sensitivity (Figs 8-11)", ["fig08", "fig09", "fig10", "fig11"]),
    ("Emulated hardware TFIM (Figs 12-13)", ["fig12", "fig13"]),
    (
        "Qubit-mapping sensitivity (Figs 16-19)",
        ["fig16", "fig17", "fig18", "fig19"],
    ),
    (
        "Ablations and extensions",
        [
            "ablation_selection",
            "ablation_objective",
            "ablation_warmstart",
            "ablation_suite",
            "ablation_mitigation",
            "ext_quantum_volume",
            "ext_partition",
            "ext_idle_noise",
            "ext_characterization",
        ],
    ),
]


def collate_results(results_dir: Path) -> Dict[str, str]:
    """Read every ``<name>.txt`` the benchmarks produced."""
    results_dir = Path(results_dir)
    out: Dict[str, str] = {}
    if not results_dir.is_dir():
        return out
    for path in sorted(results_dir.glob("*.txt")):
        out[path.stem] = path.read_text().rstrip()
    return out


def write_report(
    results_dir: Path,
    output_path: Optional[Path] = None,
    *,
    scale_name: Optional[str] = None,
) -> Path:
    """Write ``REPORT.md`` from collected result files.

    Missing artifacts are listed as "not yet generated" rather than
    failing — run ``pytest benchmarks/ --benchmark-only`` (or
    ``python -m repro all --output results``) to fill them in.
    """
    results_dir = Path(results_dir)
    output_path = Path(output_path) if output_path else results_dir.parent / "REPORT.md"
    collected = collate_results(results_dir)
    scale = scale_name or get_scale().name

    lines: List[str] = [
        "# Reproduction report",
        "",
        "Paper: *Empirical Evaluation of Circuit Approximations on Noisy "
        "Quantum Devices* (Wilson, Bassman, Mueller, Iancu — SC 2021).",
        "",
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} at scale "
        f"`{scale}`. Regenerate any artifact with "
        "`python -m repro <name>` or `pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    missing: List[str] = []
    for title, names in _SECTIONS:
        lines.append(f"## {title}")
        lines.append("")
        for name in names:
            if name in collected:
                lines.append("```text")
                lines.append(collected[name])
                lines.append("```")
                lines.append("")
            else:
                missing.append(name)
                lines.append(f"*{name}: not yet generated.*")
                lines.append("")
    if missing:
        lines.append(
            f"_{len(missing)} artifact(s) missing — run the benchmark "
            "suite to produce them._"
        )
        lines.append("")
    output_path.write_text("\n".join(lines))
    return output_path


def generate_report(
    output_path: Optional[Path] = None,
    *,
    scale: Optional[ExperimentScale] = None,
    results_dir: Optional[Path] = None,
) -> Path:
    """Convenience wrapper: collate whatever exists and write the report."""
    base = Path(__file__).resolve().parents[3]
    results = Path(results_dir) if results_dir else base / "results"
    return write_report(
        results,
        output_path,
        scale_name=(scale or get_scale()).name,
    )
