"""Ablation studies for the reproduction's design choices.

Four studies, each isolating one decision the implementation makes:

* **selection** — the paper's Observation 2: race circuit-selection
  strategies (minimal-HS, shortest, HS-threshold, noise-aware prediction)
  across CNOT-error levels and measure the regret vs the oracle pick.
* **objective** — why synthesis optimises the smooth ``1 - |Tr|^2/d^2``
  form instead of the HS distance itself (the sqrt's infinite slope at
  zero breaks quasi-Newton line searches).
* **warm start** — why child nodes inherit the parent's parameters during
  search instead of starting cold.
* **toffoli suite** — how the choice of Toffoli input-test suite changes
  the discrimination power of the JS score (the superposition-only suite
  matches the paper's 0.465 noise floor; the extended suite separates
  candidates more sharply).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import optimize as sp_optimize

from ..apps.tfim import TFIMSpec, tfim_step_circuit
from ..apps.toffoli import mcx_circuit, toffoli_js_score, toffoli_test_suite
from ..metrics.selection import (
    evaluate_strategies,
    standard_strategies,
)
from ..noise.devices import get_device
from ..parallel import parallel_map
from ..sim.expectation import average_magnetization
from ..store.campaign import UnitQuarantined, checkpoint_unit
from ..sim.statevector import StatevectorSimulator
from ..synthesis.objective import (
    CircuitStructure,
    HilbertSchmidtObjective,
)
from ..synthesis.qsearch import QSearchSynthesizer
from .pools import tfim_pools, toffoli_pool
from .runner import NoiseModelBackend
from .scale import ExperimentScale, get_scale

__all__ = [
    "SelectionAblation",
    "selection_ablation",
    "ObjectiveAblation",
    "objective_ablation",
    "WarmStartAblation",
    "warm_start_ablation",
    "SuiteAblation",
    "toffoli_suite_ablation",
    "MitigationAblation",
    "mitigation_ablation",
]


# ---------------------------------------------------------------------------
# 1. Selection strategies
# ---------------------------------------------------------------------------

@dataclass
class SelectionAblation:
    """Mean selection error per strategy per CNOT-error level."""

    levels: List[float]
    #: strategy name -> level -> mean |magnetization error| of its pick
    table: Dict[str, Dict[float, float]]

    def regret(self, name: str, level: float) -> float:
        return self.table[name][level] - self.table["oracle"][level]

    def rows(self) -> str:
        lines = ["[ablation:selection] mean pick error by strategy and CNOT error"]
        header = "strategy            " + "  ".join(
            f"p={lvl:g}" for lvl in self.levels
        )
        lines.append(header)
        for name, by_level in self.table.items():
            cells = "  ".join(f"{by_level[lvl]:6.4f}" for lvl in self.levels)
            lines.append(f"{name:<20}{cells}")
        return "\n".join(lines)


def _selection_level_task(task) -> Optional[Dict[str, List[float]]]:
    """Worker: race every strategy at one CNOT-error level (picklable).

    Returns ``{strategy: [pick error per step]}`` for that level, or
    ``None`` when the level's unit was quarantined. Each level is one
    campaign checkpoint unit, so interrupted ablation campaigns resume
    level-by-level.
    """
    level, pools, spec, scale_name = task

    def build() -> Dict[str, List[float]]:
        ideal_sim = StatevectorSimulator()
        backend = NoiseModelBackend(
            get_device("ourense").noise_model().with_cnot_depolarizing(level)
        )
        strategies = standard_strategies(level)
        errors: Dict[str, List[float]] = {}
        for step, pool in pools:
            reference = tfim_step_circuit(spec, step)
            ideal = average_magnetization(
                ideal_sim.run(reference).probabilities()
            )

            def error_of(probs, ideal=ideal):
                return abs(average_magnetization(probs) - ideal)

            result = evaluate_strategies(pool, strategies, backend, error_of)
            for name, row in result.items():
                # The noise-aware strategy is re-parameterised per level;
                # collapse its per-level names into one table row.
                errors.setdefault(name.split("(")[0], []).append(
                    float(row["error"])
                )
        return errors

    try:
        return checkpoint_unit(
            {
                "kind": "ablation-selection-level",
                "level": level,
                "scale": scale_name,
                "num_qubits": spec.num_qubits,
                "device": "ourense",
                "pool_seeds": [1000 + step for step, _ in pools],
            },
            build,
        )
    except UnitQuarantined:
        # Quarantined levels are dropped from the table (and recorded in
        # the campaign manifest for ``repro runs retry``). Returning None
        # instead of raising keeps the failure from crossing the process
        # pool and aborting the sibling levels.
        return None


def selection_ablation(
    scale: Optional[ExperimentScale] = None,
    levels: Sequence[float] = (0.01, 0.06, 0.24),
    *,
    jobs: Optional[int] = None,
) -> SelectionAblation:
    """Race selection strategies on the 3q TFIM pools across noise levels.

    Pools are synthesised once (itself a per-step fan-out), then the
    independent per-level races run through
    :func:`repro.parallel.parallel_map`.
    """
    scale = scale or get_scale()
    spec = TFIMSpec(3)
    pools = tfim_pools(3, scale=scale, spec=spec, jobs=jobs)

    per_level = parallel_map(
        _selection_level_task,
        [(level, pools, spec, scale.name) for level in levels],
        jobs=jobs,
    )
    if all(errors is None for errors in per_level):
        raise RuntimeError(
            "selection ablation: every noise level was quarantined; "
            "see the run manifest and `repro runs retry`"
        )
    table: Dict[str, Dict[float, List[float]]] = {}
    for level, errors in zip(levels, per_level):
        if errors is None:
            continue
        for name, values in errors.items():
            table.setdefault(name, {})[level] = values
    collapsed = {
        name: {lvl: float(np.mean(vals)) for lvl, vals in by_level.items()}
        for name, by_level in table.items()
    }
    survived = [
        lvl for lvl, errors in zip(levels, per_level) if errors is not None
    ]
    return SelectionAblation(levels=survived, table=collapsed)


# ---------------------------------------------------------------------------
# 2. Smooth vs sqrt objective
# ---------------------------------------------------------------------------

@dataclass
class ObjectiveAblation:
    """Convergence statistics for the two objective formulations."""

    smooth_success: int
    sqrt_success: int
    trials: int
    smooth_mean_cost: float
    sqrt_mean_cost: float

    def rows(self) -> str:
        return (
            "[ablation:objective] optimise 1-|Tr|^2/d^2 (smooth) vs the HS "
            "distance itself (sqrt)\n"
            f"trials={self.trials}\n"
            f"smooth: {self.smooth_success}/{self.trials} converged, "
            f"mean final HS {self.smooth_mean_cost:.2e}\n"
            f"sqrt:   {self.sqrt_success}/{self.trials} converged, "
            f"mean final HS {self.sqrt_mean_cost:.2e}"
        )


def objective_ablation(trials: int = 8, tol: float = 1e-6) -> ObjectiveAblation:
    """Optimise representable targets under both objective forms."""
    payload = checkpoint_unit(
        {"kind": "ablation-objective", "trials": trials, "tol": tol, "seed": 5},
        lambda: _objective_ablation_payload(trials, tol),
    )
    return ObjectiveAblation(**payload)


def _objective_ablation_payload(trials: int, tol: float) -> dict:
    rng = np.random.default_rng(5)
    structure = CircuitStructure(2, ((0, 1), (0, 1)))
    smooth_costs, sqrt_costs = [], []
    for _ in range(trials):
        truth = rng.uniform(-np.pi, np.pi, structure.num_params)
        target = structure.unitary(truth)
        objective = HilbertSchmidtObjective(target, structure)
        x0 = rng.uniform(-np.pi, np.pi, structure.num_params)

        res_smooth = sp_optimize.minimize(
            objective.smooth_cost_and_grad,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": 300, "ftol": 1e-18, "gtol": 1e-12},
        )
        smooth_costs.append(
            HilbertSchmidtObjective.hs_from_smooth(float(res_smooth.fun))
        )

        def sqrt_cost_grad(p):
            val, grad = objective.smooth_cost_and_grad(p)
            hs = max(1e-150, val) ** 0.5
            return hs, grad / (2.0 * hs)

        res_sqrt = sp_optimize.minimize(
            sqrt_cost_grad,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": 300},
        )
        sqrt_costs.append(float(res_sqrt.fun))
    return {
        "smooth_success": sum(1 for c in smooth_costs if c < tol),
        "sqrt_success": sum(1 for c in sqrt_costs if c < tol),
        "trials": trials,
        "smooth_mean_cost": float(np.mean(smooth_costs)),
        "sqrt_mean_cost": float(np.mean(sqrt_costs)),
    }


# ---------------------------------------------------------------------------
# 3. Warm starts
# ---------------------------------------------------------------------------

@dataclass
class WarmStartAblation:
    """Search effort with and without parent warm starts."""

    warm_nodes: List[int]
    cold_nodes: List[int]
    warm_success: int
    cold_success: int

    def rows(self) -> str:
        return (
            "[ablation:warm-start] QSearch nodes to convergence\n"
            f"warm: success {self.warm_success}/{len(self.warm_nodes)}, "
            f"mean nodes {np.mean(self.warm_nodes):.1f}\n"
            f"cold: success {self.cold_success}/{len(self.cold_nodes)}, "
            f"mean nodes {np.mean(self.cold_nodes):.1f}"
        )


def warm_start_ablation(trials: int = 4) -> WarmStartAblation:
    """Synthesise TFIM-step targets with and without warm starts."""
    payload = checkpoint_unit(
        {"kind": "ablation-warmstart", "trials": trials, "seeds": list(range(trials))},
        lambda: _warm_start_payload(trials),
    )
    return WarmStartAblation(**payload)


def _warm_start_payload(trials: int) -> dict:
    spec = TFIMSpec(3)
    warm_nodes, cold_nodes = [], []
    warm_ok = cold_ok = 0
    for i in range(trials):
        target = tfim_step_circuit(spec, 8 + i).unitary()
        warm = QSearchSynthesizer(
            coupling=[(0, 1), (1, 2)],
            seed=i,
            max_cnots=7,
            max_nodes=80,
            restarts=1,
            maxiter=150,
            success_threshold=1e-5,
        ).synthesize(target)
        warm_nodes.append(warm.nodes_explored)
        warm_ok += warm.success

        # Same total start count per node (2), but both starts random.
        cold_synth = QSearchSynthesizer(
            coupling=[(0, 1), (1, 2)],
            seed=i,
            max_cnots=7,
            max_nodes=80,
            restarts=2,
            maxiter=150,
            success_threshold=1e-5,
        )
        # Disable the warm start by monkey-wrapping optimise calls: replace
        # the parent's params with None via a shim around synthesize.
        import repro.synthesis.qsearch as qs_module
        from repro.synthesis.objective import optimize_structure as real_opt

        def cold_opt(target, structure, *, initial_params=None, **kwargs):
            return real_opt(target, structure, initial_params=None, **kwargs)

        original = qs_module.optimize_structure
        qs_module.optimize_structure = cold_opt
        try:
            cold = cold_synth.synthesize(target)
        finally:
            qs_module.optimize_structure = original
        cold_nodes.append(cold.nodes_explored)
        cold_ok += cold.success
    return {
        "warm_nodes": [int(n) for n in warm_nodes],
        "cold_nodes": [int(n) for n in cold_nodes],
        "warm_success": int(warm_ok),
        "cold_success": int(cold_ok),
    }


# ---------------------------------------------------------------------------
# 3b. Error-mitigation interaction (the paper's related-work question)
# ---------------------------------------------------------------------------

@dataclass
class MitigationAblation:
    """Does readout mitigation change the approximate-vs-exact ordering?

    The paper asks whether approximation benefits survive "processes which
    require post-processing or manipulation of error levels". This study
    re-runs the 3q TFIM comparison with readout-mitigated outputs.
    """

    raw_improvement: float
    mitigated_improvement: float
    raw_beating: float
    mitigated_beating: float

    def rows(self) -> str:
        return (
            "[ablation:mitigation] fig02-style TFIM with/without readout "
            "mitigation\n"
            f"raw:       improvement {self.raw_improvement:.1%}, "
            f"{self.raw_beating:.1%} of pool beats reference\n"
            f"mitigated: improvement {self.mitigated_improvement:.1%}, "
            f"{self.mitigated_beating:.1%} of pool beats reference"
        )


def mitigation_ablation(
    scale: Optional[ExperimentScale] = None,
) -> MitigationAblation:
    """Re-run the TFIM comparison with readout-mitigated distributions."""
    from ..noise.mitigation import mitigate_readout
    from .figures import _tfim_experiment

    scale = scale or get_scale()
    device = get_device("toronto")
    model = device.noise_model(list(range(3)))

    raw_backend = NoiseModelBackend(model, name="raw")

    class MitigatedBackend:
        name = "mitigated"
        deterministic = True

        def run(self, circuit):
            probs = raw_backend.run(circuit)
            return mitigate_readout(
                probs, model.readout_errors(circuit.num_qubits)
            )

        def run_many(self, circuits):
            circuits = list(circuits)
            return [
                mitigate_readout(
                    probs, model.readout_errors(circuit.num_qubits)
                )
                for circuit, probs in zip(
                    circuits, raw_backend.run_many(circuits)
                )
            ]

    raw = _tfim_experiment(
        "ablation-raw", "raw", 3, "toronto", raw_backend, scale
    )
    mitigated = _tfim_experiment(
        "ablation-mitigated", "mitigated", 3, "toronto", MitigatedBackend(), scale
    )
    return MitigationAblation(
        raw_improvement=raw.improvement(),
        mitigated_improvement=mitigated.improvement(),
        raw_beating=raw.fraction_beating_reference(),
        mitigated_beating=mitigated.fraction_beating_reference(),
    )


# ---------------------------------------------------------------------------
# 4. Toffoli test-suite choice
# ---------------------------------------------------------------------------

@dataclass
class SuiteAblation:
    """JS-score discrimination under the two input suites."""

    basic_spread: float
    extended_spread: float
    basic_scores: List[float] = field(repr=False, default_factory=list)
    extended_scores: List[float] = field(repr=False, default_factory=list)

    def rows(self) -> str:
        return (
            "[ablation:toffoli-suite] JS discrimination across the pool\n"
            f"superposition-only suite: score spread "
            f"{self.basic_spread:.4f} (matches the paper's 0.465 floor)\n"
            f"extended suite (+basis inputs): score spread "
            f"{self.extended_spread:.4f}"
        )


def toffoli_suite_ablation(
    scale: Optional[ExperimentScale] = None,
) -> SuiteAblation:
    """Compare candidate discrimination under the two test suites."""
    scale = scale or get_scale()
    payload = checkpoint_unit(
        {
            "kind": "ablation-suite",
            "scale": scale.name,
            "device": "manhattan",
            "num_controls": 3,
            "pool_seed": 3003,
        },
        lambda: _suite_ablation_payload(scale),
    )
    return SuiteAblation(**payload)


def _suite_ablation_payload(scale: ExperimentScale) -> dict:
    pool = toffoli_pool(3, scale=scale)
    device = get_device("manhattan")
    backend = NoiseModelBackend(device.noise_model(list(range(4))))

    from ..transpile.basis import to_basis_gates
    from ..transpile.passes import merge_single_qubit_gates

    def run(circuit):
        return backend.run(merge_single_qubit_gates(to_basis_gates(circuit)))

    basic = toffoli_test_suite(3)
    extended = toffoli_test_suite(3, include_basis_inputs=True)
    basic_scores = [
        float(toffoli_js_score(run, c.circuit, basic)) for c in pool
    ]
    extended_scores = [
        float(toffoli_js_score(run, c.circuit, extended)) for c in pool
    ]
    return {
        "basic_spread": float(np.std(basic_scores)),
        "extended_spread": float(np.std(extended_scores)),
        "basic_scores": basic_scores,
        "extended_scores": extended_scores,
    }
