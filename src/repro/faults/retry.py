"""Retry policies and the circuit breaker.

:class:`retrying` is the one retry discipline the execution layers share
(hardware job execution, store writes): a bounded number of attempts,
exponential backoff with decorrelated jitter between them, and exception
classification so only transient failures are retried. The clock, sleep
function and jitter RNG are all injectable, so tests drive the policy with
a fake clock and assert the backoff bounds exactly.

Backoff follows the "decorrelated jitter" scheme: the ``i``-th delay is
drawn uniformly from ``[base_delay, min(max_delay, 3 * previous_delay)]``,
which spreads concurrent retriers apart instead of synchronising them the
way fixed exponential backoff does.
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional, TypeVar

from .errors import classify_exception

__all__ = ["retrying", "CircuitBreaker"]

R = TypeVar("R")


class retrying:
    """A reusable retry policy: ``policy.call(fn)`` runs ``fn(attempt)``.

    Parameters
    ----------
    attempts:
        Total attempt budget (first try included); must be >= 1.
    base_delay, max_delay:
        Backoff bounds in seconds. Every sleep lies in
        ``[base_delay, max_delay]``.
    classify:
        Maps an exception to ``"transient"`` (retry) or ``"fatal"``
        (re-raise immediately). Defaults to
        :func:`repro.faults.errors.classify_exception`.
    sleep:
        Injectable sleep function (tests pass a recording fake).
    rng:
        Injectable :class:`random.Random` for the jitter draws.
    on_retry:
        Optional observer ``on_retry(attempt, exc, delay)`` fired before
        each backoff sleep.
    """

    def __init__(
        self,
        attempts: int = 4,
        *,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        classify: Callable[[BaseException], str] = classify_exception,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"retry budget must be >= 1, got {attempts}")
        if not 0 <= base_delay <= max_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{base_delay}/{max_delay}"
            )
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.classify = classify
        self.sleep = sleep
        self.rng = rng if rng is not None else random.Random()
        self.on_retry = on_retry

    def next_delay(self, previous: Optional[float]) -> float:
        """One decorrelated-jitter backoff delay, within the bounds."""
        if previous is None:
            previous = self.base_delay
        high = min(self.max_delay, 3.0 * previous)
        high = max(high, self.base_delay)
        return self.rng.uniform(self.base_delay, high)

    def call(self, fn: Callable[[int], R]) -> R:
        """Run ``fn(attempt)`` under the policy; attempts are 0-based.

        Transient failures are retried until the budget is exhausted,
        then the last one re-raises. Fatal failures re-raise immediately.
        """
        delay: Optional[float] = None
        for attempt in range(self.attempts):
            try:
                return fn(attempt)
            except Exception as exc:
                if self.classify(exc) == "fatal":
                    raise
                if attempt + 1 >= self.attempts:
                    raise
                delay = self.next_delay(delay)
                if self.on_retry is not None:
                    self.on_retry(attempt, exc, delay)
                self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Stop hammering a dependency after repeated retry-budget exhaustion.

    ``record_failure`` counts *exhausted retry budgets* (not individual
    attempt failures); once ``threshold`` consecutive failures accumulate
    the breaker opens and stays open until :meth:`reset`. The hardware
    layer consults ``breaker.open`` to decide whether to keep attempting
    emulation or to fall back to its degraded execution path.
    """

    def __init__(self, threshold: int = 1) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.failures = 0
        self.last_error: Optional[BaseException] = None

    @property
    def open(self) -> bool:
        return self.failures >= self.threshold

    def record_failure(self, exc: Optional[BaseException] = None) -> None:
        self.failures += 1
        if exc is not None:
            self.last_error = exc

    def record_success(self) -> None:
        self.failures = 0
        self.last_error = None

    def reset(self) -> None:
        self.record_success()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.open else "closed"
        return f"CircuitBreaker({state}, failures={self.failures}/{self.threshold})"
