"""Deterministic, seeded fault injection.

A :class:`FaultPlan` decides — reproducibly — whether a fault fires at a
given *injection site*. The decision is a pure function of
``(fault_seed, kind, site, attempt)``: a SHA-256 hash of those four values
is mapped to a uniform draw in ``[0, 1)`` and compared against the kind's
configured rate. Nothing depends on wall-clock time, worker count or
execution order, so a fault campaign replays identically and CI can
byte-compare a fault-injected-then-retried run against a fault-free one.

The ``attempt`` coordinate is what lets retries make progress: a site that
fired at attempt 0 redraws at attempt 1, so any rate below 1.0 eventually
lets the operation through while rates of exactly 1.0 model a hard outage
(the quarantine path).

Plans are activated through the environment (``REPRO_FAULTS``, which the
CLI's ``--faults`` flag exports) so worker processes inherit the exact
same fault stream as the parent. The grammar is comma-separated
``key=value`` pairs::

    REPRO_FAULTS="seed=11,job=0.4,timeout=0.1,drift=0.1,crash=0.5,store=0.6,degrade=1"

with ``seed`` (int, default 0), ``degrade`` (0/1 — allow the hardware
circuit breaker to fall back to plain noise-model simulation) and one
rate in ``[0, 1]`` per fault kind:

========  ==========================================================
kind      effect at an injection site
========  ==========================================================
job       transient job failure (:class:`JobFailedError`)
timeout   submission timeout (:class:`SubmissionTimeout`)
drift     calibration-drift rejection (:class:`CalibrationDriftError`)
crash     pool worker dies mid-task (``os._exit`` in the worker)
store     torn store write (:class:`TornWriteError` + corrupt bytes)
========  ==========================================================

Every activation is appended to the file named by ``REPRO_FAULTS_LOG``
(when set) and to an in-process counter, so drivers and CI can assert
that a fault campaign actually exercised the resilience paths.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import (
    CalibrationDriftError,
    JobFailedError,
    SubmissionTimeout,
    TornWriteError,
)

__all__ = [
    "FAULTS_ENV",
    "FAULTS_LOG_ENV",
    "FAULT_KINDS",
    "FaultPlan",
    "active_plan",
    "maybe_inject",
    "record_activation",
    "activation_counts",
    "reset_activations",
    "note_degradation",
    "degradation_events",
    "reset_degradations",
]

FAULTS_ENV = "REPRO_FAULTS"
FAULTS_LOG_ENV = "REPRO_FAULTS_LOG"

FAULT_KINDS = ("job", "timeout", "drift", "crash", "store")

#: kind -> exception raised by :func:`maybe_inject`.
_KIND_ERRORS = {
    "job": JobFailedError,
    "timeout": SubmissionTimeout,
    "drift": CalibrationDriftError,
    "store": TornWriteError,
}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault activations per injection site."""

    seed: int = 0
    rates: Dict[str, float] = field(default_factory=dict)
    degrade: bool = False

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``--faults`` / ``REPRO_FAULTS`` grammar.

        Raises :class:`ValueError` on unknown kinds, malformed pairs or
        rates outside ``[0, 1]``.
        """
        seed = 0
        degrade = False
        rates: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"fault spec {part!r} is not 'key=value' "
                    f"(full spec: {spec!r})"
                )
            key, _, value = part.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "seed":
                seed = int(value)
            elif key == "degrade":
                degrade = value not in ("0", "", "false")
            elif key in FAULT_KINDS:
                rate = float(value)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"fault rate {key}={rate} outside [0, 1]"
                    )
                rates[key] = rate
            else:
                raise ValueError(
                    f"unknown fault kind {key!r}; valid kinds: "
                    f"{', '.join(FAULT_KINDS)} (plus seed=, degrade=)"
                )
        return cls(seed=seed, rates=rates, degrade=degrade)

    def format(self) -> str:
        """Round-trippable spec text (``parse(format())`` == self)."""
        parts = [f"seed={self.seed}"]
        parts += [f"{k}={v:g}" for k, v in sorted(self.rates.items())]
        if self.degrade:
            parts.append("degrade=1")
        return ",".join(parts)

    def draw(self, kind: str, site: str, attempt: int = 0) -> float:
        """The uniform [0, 1) draw for one (kind, site, attempt) point."""
        text = f"{self.seed}:{kind}:{site}:{attempt}"
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def should_fire(self, kind: str, site: str, attempt: int = 0) -> bool:
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self.draw(kind, site, attempt) < rate


# ---------------------------------------------------------------------------
# Active plan (environment-driven, inherited by worker processes)
# ---------------------------------------------------------------------------

#: (spec text, parsed plan) cache so repeated lookups skip parsing.
_CACHED: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULTS``, or ``None`` when unset/empty."""
    global _CACHED
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return None
    if _CACHED[0] != spec:
        _CACHED = (spec, FaultPlan.parse(spec))
    return _CACHED[1]


# ---------------------------------------------------------------------------
# Activation accounting
# ---------------------------------------------------------------------------

_ACTIVATIONS: List[Tuple[str, str]] = []  # (kind, site), this process only


def record_activation(kind: str, site: str) -> None:
    """Count one fired fault (in-process + the shared log file, if any)."""
    _ACTIVATIONS.append((kind, site))
    log = os.environ.get(FAULTS_LOG_ENV)
    if log:
        try:
            with open(log, "a") as fh:
                fh.write(f"{kind}\t{site}\n")
        except OSError:
            pass


def activation_counts(log_path: Optional[str] = None) -> Dict[str, int]:
    """Per-kind activation counts.

    With ``log_path`` the shared log file is read (covering worker
    processes); otherwise only this process's in-memory record is used.
    """
    counts: Dict[str, int] = {}
    if log_path is not None:
        try:
            with open(log_path) as fh:
                for line in fh:
                    kind = line.split("\t", 1)[0].strip()
                    if kind:
                        counts[kind] = counts.get(kind, 0) + 1
        except OSError:
            pass
        return counts
    for kind, _site in _ACTIVATIONS:
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def reset_activations() -> None:
    """Drop the in-process activation record (tests)."""
    _ACTIVATIONS.clear()


def maybe_inject(kind: str, site: str, attempt: int = 0) -> None:
    """Raise the fault for ``kind`` iff the active plan fires at this site.

    No-op without an active plan. ``crash`` is not raised here — worker
    death is injected by the pool layer itself (see
    :mod:`repro.parallel.pool`).
    """
    plan = active_plan()
    if plan is None or not plan.should_fire(kind, site, attempt):
        return
    record_activation(kind, site)
    error = _KIND_ERRORS[kind]
    raise error(f"injected {kind} fault at {site} (attempt {attempt})")


# ---------------------------------------------------------------------------
# Degradation accounting
# ---------------------------------------------------------------------------

_DEGRADATIONS: List[Tuple[str, str]] = []  # (site, reason), this process


def note_degradation(site: str, reason: str) -> None:
    """Record that a component fell back to a degraded execution mode.

    The campaign layer snapshots :func:`degradation_events` around each
    unit so degraded results are flagged in the run manifest, never
    silently mixed into checkpointed artifacts.
    """
    _DEGRADATIONS.append((site, reason))


def degradation_events() -> List[Tuple[str, str]]:
    """All degradations noted in this process, oldest first."""
    return list(_DEGRADATIONS)


def reset_degradations() -> None:
    """Drop the in-process degradation record (tests)."""
    _DEGRADATIONS.clear()
