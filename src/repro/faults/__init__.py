"""``repro.faults`` — deterministic fault injection + resilience policies.

Two halves, shared by every execution layer (:mod:`repro.parallel`,
:mod:`repro.hardware`, :mod:`repro.store`):

* :mod:`repro.faults.plan` — a seeded :class:`FaultPlan` that injects
  transient job failures, submission timeouts, calibration-drift
  rejections, worker crashes and torn store writes on a reproducible
  schedule (pure function of ``(fault_seed, kind, site, attempt)``),
  activated via ``--faults`` / ``REPRO_FAULTS``.
* :mod:`repro.faults.retry` — the :class:`retrying` backoff policy and
  :class:`CircuitBreaker` that turn those transient failures into retried,
  quarantined or gracefully degraded units instead of aborted campaigns.

:mod:`repro.faults.errors` defines the transient-vs-fatal exception
taxonomy both halves agree on.
"""

from .errors import (
    CalibrationDriftError,
    JobFailedError,
    SubmissionTimeout,
    TaskTimeoutError,
    TornWriteError,
    TransientError,
    classify_exception,
)
from .plan import (
    FAULT_KINDS,
    FAULTS_ENV,
    FAULTS_LOG_ENV,
    FaultPlan,
    activation_counts,
    active_plan,
    degradation_events,
    maybe_inject,
    note_degradation,
    record_activation,
    reset_activations,
    reset_degradations,
)
from .retry import CircuitBreaker, retrying

__all__ = [
    "CalibrationDriftError",
    "JobFailedError",
    "SubmissionTimeout",
    "TaskTimeoutError",
    "TornWriteError",
    "TransientError",
    "classify_exception",
    "FAULT_KINDS",
    "FAULTS_ENV",
    "FAULTS_LOG_ENV",
    "FaultPlan",
    "activation_counts",
    "active_plan",
    "degradation_events",
    "maybe_inject",
    "note_degradation",
    "record_activation",
    "reset_activations",
    "reset_degradations",
    "CircuitBreaker",
    "retrying",
]
