"""The failure taxonomy the resilience layer retries, quarantines or raises.

Every fault the execution layers can encounter — injected or real — is
classified into exactly one of two buckets:

* **transient** — the operation may succeed if repeated: flaky job
  submissions, queue timeouts, calibration-drift rejections, torn store
  writes, dead pool workers. :func:`classify_exception` maps these to
  ``"transient"`` and the :func:`repro.faults.retry.retrying` policy
  retries them under a budget.
* **fatal** — a programming or configuration error that repeating cannot
  fix (``ValueError``, ``TypeError``, assertion failures, ...). These
  propagate immediately; retrying them would only hide bugs.

All injected faults derive from :class:`TransientError` so the retry and
quarantine machinery treats simulated and genuine flakiness identically.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

__all__ = [
    "TransientError",
    "JobFailedError",
    "SubmissionTimeout",
    "CalibrationDriftError",
    "TornWriteError",
    "TaskTimeoutError",
    "classify_exception",
]


class TransientError(RuntimeError):
    """Base class for failures that are worth retrying."""


class JobFailedError(TransientError):
    """A backend job failed after submission (flaky execution)."""


class SubmissionTimeout(TransientError):
    """A job submission timed out before the backend accepted it."""


class CalibrationDriftError(TransientError):
    """A job was rejected because the calibration drifted mid-campaign."""


class TornWriteError(TransientError):
    """A store write was interrupted, leaving a torn object behind.

    The content-addressed store treats torn objects as misses on read, so
    the correct recovery is simply to rewrite — which is why this is
    transient.
    """


class TaskTimeoutError(TransientError):
    """A :func:`repro.parallel.parallel_map` task exceeded its deadline."""


#: Exception types (beyond :class:`TransientError`) treated as transient:
#: I/O hiccups, timeouts, dropped connections and dead executors.
TRANSIENT_TYPES = (
    TransientError,
    TimeoutError,
    ConnectionError,
    OSError,
    BrokenExecutor,
)


def classify_exception(exc: BaseException) -> str:
    """``"transient"`` for retryable failures, ``"fatal"`` for the rest."""
    return "transient" if isinstance(exc, TRANSIENT_TYPES) else "fatal"
