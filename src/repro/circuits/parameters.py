"""Symbolic circuit parameters.

A light-weight analogue of Qiskit's ``Parameter``/``bind_parameters``:
circuits can be built with named symbolic angles (plus scaled/shifted
expressions of them) and instantiated later. Used to express parametric
ansatz templates once and sweep their angles without rebuilding the gate
list.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Union

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["Parameter", "ParameterExpression", "bind_parameters", "free_parameters"]


class ParameterExpression:
    """An affine expression ``scale * parameter + offset``."""

    __slots__ = ("parameter", "scale", "offset")

    def __init__(self, parameter: "Parameter", scale: float = 1.0, offset: float = 0.0):
        self.parameter = parameter
        self.scale = float(scale)
        self.offset = float(offset)

    # -- arithmetic ----------------------------------------------------
    def __mul__(self, factor: float) -> "ParameterExpression":
        return ParameterExpression(
            self.parameter, self.scale * factor, self.offset * factor
        )

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0

    def __add__(self, shift: float) -> "ParameterExpression":
        return ParameterExpression(
            self.parameter, self.scale, self.offset + float(shift)
        )

    __radd__ = __add__

    def __sub__(self, shift: float) -> "ParameterExpression":
        return self + (-float(shift))

    def __truediv__(self, divisor: float) -> "ParameterExpression":
        return self * (1.0 / divisor)

    # -- evaluation ----------------------------------------------------
    def bind(self, value: float) -> float:
        return self.scale * float(value) + self.offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.scale:g}*{self.parameter.name}+{self.offset:g}"

    # Deliberately NOT convertible to float: catching accidental use of an
    # unbound parameter as a number is the main safety feature.
    def __float__(self):
        raise TypeError(
            f"parameter {self.parameter.name!r} is unbound; call "
            "bind_parameters(circuit, {...}) first"
        )


class Parameter(ParameterExpression):
    """A named free parameter."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("parameter needs a name")
        self.name = name
        super().__init__(self, 1.0, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name!r})"


ParamLike = Union[float, ParameterExpression]


def free_parameters(circuit: QuantumCircuit) -> Set[str]:
    """Names of all unbound parameters in a circuit."""
    names: Set[str] = set()
    for gate in circuit:
        for p in gate.params:
            if isinstance(p, ParameterExpression):
                names.add(p.parameter.name)
    return names


def bind_parameters(
    circuit: QuantumCircuit, values: Mapping[Union[str, "Parameter"], float]
) -> QuantumCircuit:
    """Return a copy with every symbolic parameter replaced by its value.

    Raises if any parameter remains unbound (so the result is always a
    fully numeric, simulable circuit).
    """
    table: Dict[str, float] = {}
    for key, value in values.items():
        name = key.name if isinstance(key, Parameter) else str(key)
        table[name] = float(value)

    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    missing: Set[str] = set()
    for gate in circuit:
        if not gate.params:
            out.append(gate)
            continue
        bound: List[float] = []
        for p in gate.params:
            if isinstance(p, ParameterExpression):
                name = p.parameter.name
                if name not in table:
                    missing.add(name)
                    bound.append(0.0)
                else:
                    bound.append(p.bind(table[name]))
            else:
                bound.append(float(p))
        out.append(Gate(gate.name, gate.qubits, tuple(bound)))
    if missing:
        raise KeyError(f"unbound parameters: {sorted(missing)}")
    return out
