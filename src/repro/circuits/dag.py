"""Dependency-DAG view of a circuit, used by the optimisation passes.

Nodes are gate indices; an edge ``i -> j`` means gate ``j`` consumes a qubit
that gate ``i`` was the most recent writer of. The DAG exposes the queries
the transpiler passes need: per-qubit gate chains, direct successors on a
given qubit, and topological layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["CircuitDAG"]


class CircuitDAG:
    """A scheduling DAG over the gates of a :class:`QuantumCircuit`."""

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.num_qubits = circuit.num_qubits
        self.graph = nx.DiGraph()
        last_writer: Dict[int, int] = {}
        for idx, gate in enumerate(circuit):
            self.graph.add_node(idx, gate=gate)
            for q in gate.qubits:
                if q in last_writer:
                    self.graph.add_edge(last_writer[q], idx, qubit=q)
                last_writer[q] = idx

    def gate(self, node: int) -> Gate:
        return self.graph.nodes[node]["gate"]

    def successors_on_qubit(self, node: int, qubit: int) -> Optional[int]:
        """The next gate after ``node`` touching ``qubit``, if any."""
        for _u, v, data in self.graph.out_edges(node, data=True):
            if data["qubit"] == qubit:
                return v
        return None

    def predecessors_on_qubit(self, node: int, qubit: int) -> Optional[int]:
        for u, _v, data in self.graph.in_edges(node, data=True):
            if data["qubit"] == qubit:
                return u
        return None

    def topological_gates(self) -> List[Gate]:
        return [self.gate(i) for i in nx.topological_sort(self.graph)]

    def layers(self) -> List[List[Gate]]:
        """ASAP layers: each inner list holds gates that can run in parallel."""
        depth: Dict[int, int] = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            depth[node] = 1 + max((depth[p] for p in preds), default=-1)
        if not depth:
            return []
        out: List[List[Gate]] = [[] for _ in range(max(depth.values()) + 1)]
        for node, d in depth.items():
            out[d].append(self.gate(node))
        return out

    def longest_path_length(self, *, two_qubit_only: bool = False) -> int:
        """Critical-path length; with ``two_qubit_only`` count only entanglers."""
        best: Dict[int, int] = {}
        for node in nx.topological_sort(self.graph):
            g = self.gate(node)
            w = 1
            if g.name == "barrier" or not g.is_unitary:
                w = 0
            elif two_qubit_only and not g.is_entangler():
                w = 0
            preds = list(self.graph.predecessors(node))
            best[node] = w + max((best[p] for p in preds), default=0)
        return max(best.values(), default=0)

    def to_circuit(self) -> QuantumCircuit:
        out = QuantumCircuit(self.num_qubits)
        for gate in self.topological_gates():
            out.append(gate)
        return out
