"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuits.gates.Gate`
instances over ``num_qubits`` qubits, with builder methods mirroring the
Qiskit surface the paper uses (``h``, ``cx``, ``u3``, ``mcx`` via
:mod:`repro.apps.toffoli`, ...).

The quantities the paper measures live here as first-class properties:
``cnot_count`` (the paper's universal x-axis), ``depth`` and ``duration``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..linalg.unitary import apply_matrix_to_state, is_unitary
from .gates import Gate, GATE_REGISTRY, NON_UNITARY

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered gate list over a fixed number of qubits.

    Parameters
    ----------
    num_qubits:
        Width of the circuit.
    name:
        Optional human-readable label (propagated through transpilation).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError("circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: List[Gate] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, idx):
        return self._gates[idx]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, QuantumCircuit)
            and self.num_qubits == other.num_qubits
            and self._gates == other._gates
        )

    def __hash__(self) -> int:
        return hash((self.num_qubits, tuple(self._gates)))

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate, validating its qubits against the circuit width."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"gate {gate.name!r} addresses qubit {q} outside "
                    f"0..{self.num_qubits - 1}"
                )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for g in gates:
            self.append(g)
        return self

    def compose(
        self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None
    ) -> "QuantumCircuit":
        """Append another circuit, optionally remapping its qubits.

        ``qubits[i]`` names the qubit of ``self`` that plays the role of
        qubit ``i`` of ``other``.
        """
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise ValueError("composed circuit is wider than target")
            qubits = range(other.num_qubits)
        mapping = {i: q for i, q in enumerate(qubits)}
        for g in other:
            self.append(Gate(g.name, tuple(mapping[q] for q in g.qubits), g.params))
        return self

    # ------------------------------------------------------------------
    # Builder methods (Qiskit-flavoured)
    # ------------------------------------------------------------------
    def _add(self, name: str, qubits: Tuple[int, ...], params: Tuple[float, ...] = ()):
        return self.append(Gate(name, qubits, params))

    def id(self, q: int):
        return self._add("id", (q,))

    def delay(self, duration: float, q: int):
        """Explicit idle period (ns) — the hook for idle decoherence."""
        return self._add("delay", (q,), (duration,))

    def x(self, q: int):
        return self._add("x", (q,))

    def y(self, q: int):
        return self._add("y", (q,))

    def z(self, q: int):
        return self._add("z", (q,))

    def h(self, q: int):
        return self._add("h", (q,))

    def s(self, q: int):
        return self._add("s", (q,))

    def sdg(self, q: int):
        return self._add("sdg", (q,))

    def t(self, q: int):
        return self._add("t", (q,))

    def tdg(self, q: int):
        return self._add("tdg", (q,))

    def sx(self, q: int):
        return self._add("sx", (q,))

    def u1(self, lam: float, q: int):
        return self._add("u1", (q,), (lam,))

    def u2(self, phi: float, lam: float, q: int):
        return self._add("u2", (q,), (phi, lam))

    def u3(self, theta: float, phi: float, lam: float, q: int):
        return self._add("u3", (q,), (theta, phi, lam))

    def rx(self, theta: float, q: int):
        return self._add("rx", (q,), (theta,))

    def ry(self, theta: float, q: int):
        return self._add("ry", (q,), (theta,))

    def rz(self, theta: float, q: int):
        return self._add("rz", (q,), (theta,))

    def cx(self, control: int, target: int):
        return self._add("cx", (control, target))

    def cz(self, a: int, b: int):
        return self._add("cz", (a, b))

    def swap(self, a: int, b: int):
        return self._add("swap", (a, b))

    def iswap(self, a: int, b: int):
        return self._add("iswap", (a, b))

    def rzz(self, theta: float, a: int, b: int):
        return self._add("rzz", (a, b), (theta,))

    def rxx(self, theta: float, a: int, b: int):
        return self._add("rxx", (a, b), (theta,))

    def crx(self, theta: float, control: int, target: int):
        return self._add("crx", (control, target), (theta,))

    def cu1(self, lam: float, control: int, target: int):
        return self._add("cu1", (control, target), (lam,))

    def ccx(self, c1: int, c2: int, target: int):
        return self._add("ccx", (c1, c2, target))

    def cswap(self, control: int, a: int, b: int):
        return self._add("cswap", (control, a, b))

    def barrier(self, *qubits: int):
        qs = qubits if qubits else tuple(range(self.num_qubits))
        return self.append(Gate("barrier", qs))

    def measure_all(self):
        return self.append(Gate("measure", tuple(range(self.num_qubits))))

    # ------------------------------------------------------------------
    # Metrics (the paper's x-axes)
    # ------------------------------------------------------------------
    @property
    def cnot_count(self) -> int:
        """Number of two-qubit entangling gates — the paper's CNOT count."""
        return sum(1 for g in self._gates if g.is_unitary and g.is_entangler())

    @property
    def gate_count(self) -> int:
        return sum(1 for g in self._gates if g.is_unitary)

    def count_ops(self) -> dict:
        """Histogram of gate names, like Qiskit's ``count_ops``."""
        out: dict = {}
        for g in self._gates:
            out[g.name] = out.get(g.name, 0) + 1
        return out

    def depth(self, *, two_qubit_only: bool = False) -> int:
        """Circuit depth: longest path in the scheduling DAG.

        With ``two_qubit_only`` only entangling gates add to the depth,
        which matches the paper's "CNOT depth".
        """
        level = [0] * self.num_qubits
        for g in self._gates:
            if not g.is_unitary or g.name == "barrier":
                continue
            weight = 1 if (not two_qubit_only or g.is_entangler()) else 0
            start = max(level[q] for q in g.qubits)
            for q in g.qubits:
                level[q] = start + weight
        return max(level) if level else 0

    def duration(self, gate_times: Optional[dict] = None) -> float:
        """Schedule length in nanoseconds under an ASAP schedule.

        ``gate_times`` maps gate name -> duration; defaults to typical IBM
        values (1q: 35 ns, 2q: 300 ns, measure: 1000 ns).
        """
        times = {"measure": 1000.0, "barrier": 0.0}
        finish = [0.0] * self.num_qubits
        for g in self._gates:
            if g.name == "barrier":
                t = max(finish[q] for q in g.qubits)
                for q in g.qubits:
                    finish[q] = t
                continue
            if g.name == "delay":
                dt = g.params[0]
            elif gate_times and g.name in gate_times:
                dt = gate_times[g.name]
            elif g.name in times:
                dt = times[g.name]
            else:
                dt = 35.0 if g.num_qubits == 1 else 300.0
            start = max(finish[q] for q in g.qubits)
            for q in g.qubits:
                finish[q] = start + dt
        return max(finish) if finish else 0.0

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def unitary(self) -> np.ndarray:
        """The ``(2**n, 2**n)`` unitary implemented by the circuit.

        Raises if the circuit contains measurements.
        """
        dim = 2**self.num_qubits
        u = np.eye(dim, dtype=np.complex128)
        for g in self._gates:
            if g.name == "barrier":
                continue
            if not g.is_unitary:
                raise ValueError(
                    f"circuit contains non-unitary gate {g.name!r}; "
                    "remove measurements before requesting the unitary"
                )
            u = apply_matrix_to_state(g.matrix(), u, g.qubits, self.num_qubits)
        return u

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (reversed gate order, each gate inverted)."""
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for g in reversed(self._gates):
            if g.name == "barrier":
                inv.append(g)
                continue
            inv.append(g.inverse())
        return inv

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, name=name or self.name)
        out._gates = list(self._gates)
        return out

    def remap(self, mapping: Sequence[int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with qubit ``i`` relabelled to ``mapping[i]``.

        Used by layout selection: a virtual circuit on ``0..k-1`` becomes a
        physical circuit over a device's qubits.
        """
        width = num_qubits if num_qubits is not None else max(mapping) + 1
        out = QuantumCircuit(width, name=self.name)
        for g in self._gates:
            out.append(Gate(g.name, tuple(mapping[q] for q in g.qubits), g.params))
        return out

    def without_measurements(self) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, name=self.name)
        out._gates = [g for g in self._gates if g.name not in NON_UNITARY]
        return out

    def has_measurements(self) -> bool:
        return any(g.name == "measure" for g in self._gates)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"QuantumCircuit({self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self._gates)}, cnots={self.cnot_count})"
        )

    def draw(self, style: str = "art") -> str:
        """Plain-text rendering.

        ``style="art"`` (default) draws wires/moments like Qiskit's text
        drawer; ``style="list"`` prints one gate per line.
        """
        if style == "art":
            from .drawing import draw_circuit

            return draw_circuit(self)
        if style != "list":
            raise ValueError(f"unknown draw style {style!r}")
        lines = [f"{self.name}: {self.num_qubits} qubits"]
        for g in self._gates:
            lines.append(f"  {g!r}")
        return "\n".join(lines)
