"""Gate definitions and their unitary matrices.

The gate set mirrors the subset of Qiskit's standard library used by the
paper: the IBM physical basis ``{U1, U2, U3, CX}``, convenience Clifford
gates, parametric rotations used by the TFIM circuit generator, and the
multi-qubit gates (``CCX``, ``CSWAP``) used by the applications.

Conventions
-----------
* Qubit 0 is the least-significant bit of a basis-state index
  (little-endian, matching Qiskit).
* Matrices for multi-qubit gates are given in that same convention: for a
  two-qubit gate acting on ``(q0, q1)``, the basis ordering of the returned
  4x4 matrix is ``|q1 q0>`` = ``|00>, |01>, |10>, |11>`` where the *right*
  bit is ``q0``.
* All matrices are ``complex128``, memoized and **read-only**: constant
  gates are module-level frozen arrays, parametric builders are
  ``lru_cache``-fronted per parameter tuple. Copy before mutating.
"""

from __future__ import annotations

import cmath
import functools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "Gate",
    "GateDefinition",
    "GATE_REGISTRY",
    "register_gate",
    "gate_matrix",
    "standard_gate",
    "U3Gate",
    "CXGate",
]

#: Names of gates that act on classical data / have no unitary.
NON_UNITARY = frozenset({"measure", "barrier", "reset"})

#: Gate names counted as "CNOT" for depth metrics (the paper counts CNOTs).
TWO_QUBIT_ENTANGLERS = frozenset({"cx", "cz", "swap", "iswap", "rzz", "rxx"})


@dataclass(frozen=True)
class GateDefinition:
    """Static description of a gate type.

    Attributes
    ----------
    name:
        Lower-case mnemonic (``"u3"``, ``"cx"`` ...).
    num_qubits:
        Arity of the gate.
    num_params:
        Number of real parameters.
    matrix_fn:
        Callable mapping a parameter tuple to the gate unitary.
    self_inverse:
        Whether ``G @ G == I`` (used by cancellation passes).
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[[Tuple[float, ...]], np.ndarray]
    self_inverse: bool = False


GATE_REGISTRY: Dict[str, GateDefinition] = {}


def _is_symbolic(value) -> bool:
    """True for unbound symbolic parameters (duck-typed to avoid cycles)."""
    return hasattr(value, "bind") and hasattr(value, "parameter")


def register_gate(definition: GateDefinition) -> GateDefinition:
    """Add a gate definition to the global registry (idempotent by name)."""
    GATE_REGISTRY[definition.name] = definition
    return definition


def _mat(rows) -> np.ndarray:
    return np.array(rows, dtype=np.complex128)


def _frozen(rows) -> np.ndarray:
    """A read-only ``complex128`` array (shared safely between callers)."""
    matrix = np.ascontiguousarray(rows, dtype=np.complex128)
    matrix.setflags(write=False)
    return matrix


def _memoized(fn: Callable[[Tuple[float, ...]], np.ndarray]):
    """Memoize a parametric matrix builder per parameter tuple.

    The cached arrays are returned read-only so no caller can corrupt the
    cache for everyone else; copy before mutating.
    """
    cached = functools.lru_cache(maxsize=8192)(
        lambda params: _frozen(fn(params))
    )

    @functools.wraps(fn)
    def wrapper(params: Sequence[float]) -> np.ndarray:
        return cached(tuple(params))

    wrapper.cache_clear = cached.cache_clear  # type: ignore[attr-defined]
    wrapper.cache_info = cached.cache_info  # type: ignore[attr-defined]
    return wrapper


# ---------------------------------------------------------------------------
# One-qubit gate matrices
# ---------------------------------------------------------------------------

@_memoized
def u3_matrix(params: Sequence[float]) -> np.ndarray:
    """The generic one-qubit rotation U3(theta, phi, lam)."""
    theta, phi, lam = params
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return _mat(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ]
    )


@_memoized
def u2_matrix(params: Sequence[float]) -> np.ndarray:
    phi, lam = params
    return u3_matrix((math.pi / 2.0, phi, lam))


@_memoized
def u1_matrix(params: Sequence[float]) -> np.ndarray:
    (lam,) = params
    return _mat([[1.0, 0.0], [0.0, cmath.exp(1j * lam)]])


@_memoized
def rx_matrix(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return _mat([[c, -1j * s], [-1j * s, c]])


@_memoized
def ry_matrix(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return _mat([[c, -s], [s, c]])


@_memoized
def rz_matrix(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    e = cmath.exp(-1j * theta / 2.0)
    return _mat([[e, 0.0], [0.0, e.conjugate()]])


_SQRT2INV = 1.0 / math.sqrt(2.0)

#: Constant gate matrices: built once at import, frozen, shared by every
#: ``Gate.matrix()`` / ``gate_matrix`` call.
_H = _frozen([[_SQRT2INV, _SQRT2INV], [_SQRT2INV, -_SQRT2INV]])
_X = _frozen([[0.0, 1.0], [1.0, 0.0]])
_Y = _frozen([[0.0, -1j], [1j, 0.0]])
_Z = _frozen([[1.0, 0.0], [0.0, -1.0]])
_S = _frozen([[1.0, 0.0], [0.0, 1j]])
_SDG = _frozen([[1.0, 0.0], [0.0, -1j]])
_T = _frozen([[1.0, 0.0], [0.0, cmath.exp(1j * math.pi / 4.0)]])
_TDG = _frozen([[1.0, 0.0], [0.0, cmath.exp(-1j * math.pi / 4.0)]])
_SX = _frozen(0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]))
_ID = _frozen([[1.0, 0.0], [0.0, 1.0]])


def _h_matrix(_params) -> np.ndarray:
    return _H


def _x_matrix(_params) -> np.ndarray:
    return _X


def _y_matrix(_params) -> np.ndarray:
    return _Y


def _z_matrix(_params) -> np.ndarray:
    return _Z


def _s_matrix(_params) -> np.ndarray:
    return _S


def _sdg_matrix(_params) -> np.ndarray:
    return _SDG


def _t_matrix(_params) -> np.ndarray:
    return _T


def _tdg_matrix(_params) -> np.ndarray:
    return _TDG


def _sx_matrix(_params) -> np.ndarray:
    return _SX


def _id_matrix(_params) -> np.ndarray:
    return _ID


def _delay_matrix(params: Sequence[float]) -> np.ndarray:
    """Identity; the parameter is the idle duration in ns (noise hooks on it)."""
    return _ID


# ---------------------------------------------------------------------------
# Two-qubit gate matrices (little-endian: right bit is the first qubit)
# ---------------------------------------------------------------------------

# Control = first qubit (q0, low bit), target = second qubit (q1).
# |q1 q0>: 00 -> 00, 01 -> 11, 10 -> 10, 11 -> 01
_CX = _frozen(
    [
        [1, 0, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
    ]
)
_CZ = _frozen(np.diag([1.0, 1.0, 1.0, -1.0]))
_SWAP = _frozen(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ]
)
_ISWAP = _frozen(
    [
        [1, 0, 0, 0],
        [0, 0, 1j, 0],
        [0, 1j, 0, 0],
        [0, 0, 0, 1],
    ]
)


def _cx_matrix(_params) -> np.ndarray:
    return _CX


def _cz_matrix(_params) -> np.ndarray:
    return _CZ


def _swap_matrix(_params) -> np.ndarray:
    return _SWAP


def _iswap_matrix(_params) -> np.ndarray:
    return _ISWAP


@_memoized
def rzz_matrix(params: Sequence[float]) -> np.ndarray:
    """exp(-i theta/2 Z⊗Z) — the native TFIM Ising coupling."""
    (theta,) = params
    e = cmath.exp(-1j * theta / 2.0)
    ec = e.conjugate()
    return _mat(np.diag([e, ec, ec, e]))


@_memoized
def rxx_matrix(params: Sequence[float]) -> np.ndarray:
    """exp(-i theta/2 X⊗X)."""
    (theta,) = params
    c = math.cos(theta / 2.0)
    s = -1j * math.sin(theta / 2.0)
    m = np.zeros((4, 4), dtype=np.complex128)
    m[0, 0] = m[1, 1] = m[2, 2] = m[3, 3] = c
    m[0, 3] = m[3, 0] = s
    m[1, 2] = m[2, 1] = s
    return m


@_memoized
def crx_matrix(params: Sequence[float]) -> np.ndarray:
    """Controlled-RX; control = first qubit (low bit)."""
    (theta,) = params
    rx = rx_matrix((theta,))
    m = np.eye(4, dtype=np.complex128)
    # Control is bit 0 => states |q1 q0> with q0 = 1 are indices 1 and 3.
    m[1, 1] = rx[0, 0]
    m[1, 3] = rx[0, 1]
    m[3, 1] = rx[1, 0]
    m[3, 3] = rx[1, 1]
    return m


@_memoized
def cu1_matrix(params: Sequence[float]) -> np.ndarray:
    """Controlled phase gate; symmetric in its qubits."""
    (lam,) = params
    return _mat(np.diag([1.0, 1.0, 1.0, cmath.exp(1j * lam)]))


# ---------------------------------------------------------------------------
# Three-qubit gate matrices
# ---------------------------------------------------------------------------

def _ccx_build() -> np.ndarray:
    """Toffoli; controls = qubits 0 and 1 (low bits), target = qubit 2."""
    m = np.eye(8, dtype=np.complex128)
    # states |q2 q1 q0>; control bits q0=q1=1 -> indices 3 (q2=0) and 7 (q2=1)
    m[3, 3] = 0.0
    m[7, 7] = 0.0
    m[3, 7] = 1.0
    m[7, 3] = 1.0
    return m


def _cswap_build() -> np.ndarray:
    """Fredkin; control = qubit 0 (low bit), swaps qubits 1 and 2."""
    m = np.eye(8, dtype=np.complex128)
    # control q0 = 1 and q1 != q2: |q2 q1 q0> = |011> (3) <-> |101> (5)
    m[3, 3] = 0.0
    m[5, 5] = 0.0
    m[3, 5] = 1.0
    m[5, 3] = 1.0
    return m


_CCX = _frozen(_ccx_build())
_CSWAP = _frozen(_cswap_build())


def _ccx_matrix(_params) -> np.ndarray:
    return _CCX


def _cswap_matrix(_params) -> np.ndarray:
    return _CSWAP


# ---------------------------------------------------------------------------
# Registry population
# ---------------------------------------------------------------------------

for _name, _nq, _np_, _fn, _self_inv in [
    ("id", 1, 0, _id_matrix, True),
    ("delay", 1, 1, _delay_matrix, False),
    ("x", 1, 0, _x_matrix, True),
    ("y", 1, 0, _y_matrix, True),
    ("z", 1, 0, _z_matrix, True),
    ("h", 1, 0, _h_matrix, True),
    ("s", 1, 0, _s_matrix, False),
    ("sdg", 1, 0, _sdg_matrix, False),
    ("t", 1, 0, _t_matrix, False),
    ("tdg", 1, 0, _tdg_matrix, False),
    ("sx", 1, 0, _sx_matrix, False),
    ("u1", 1, 1, u1_matrix, False),
    ("u2", 1, 2, u2_matrix, False),
    ("u3", 1, 3, u3_matrix, False),
    ("rx", 1, 1, rx_matrix, False),
    ("ry", 1, 1, ry_matrix, False),
    ("rz", 1, 1, rz_matrix, False),
    ("cx", 2, 0, _cx_matrix, True),
    ("cz", 2, 0, _cz_matrix, True),
    ("swap", 2, 0, _swap_matrix, True),
    ("iswap", 2, 0, _iswap_matrix, False),
    ("rzz", 2, 1, rzz_matrix, False),
    ("rxx", 2, 1, rxx_matrix, False),
    ("crx", 2, 1, crx_matrix, False),
    ("cu1", 2, 1, cu1_matrix, False),
    ("ccx", 3, 0, _ccx_matrix, True),
    ("cswap", 3, 0, _cswap_matrix, True),
]:
    register_gate(
        GateDefinition(
            name=_name,
            num_qubits=_nq,
            num_params=_np_,
            matrix_fn=_fn,
            self_inverse=_self_inv,
        )
    )


@dataclass(frozen=True)
class Gate:
    """A gate instance: a registered gate type applied to specific qubits.

    ``Gate`` is immutable and hashable so circuits can be deduplicated and
    used as dictionary keys by the synthesis cache.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.name not in NON_UNITARY:
            definition = GATE_REGISTRY.get(self.name)
            if definition is None:
                raise KeyError(f"unknown gate {self.name!r}")
            if len(self.qubits) != definition.num_qubits:
                raise ValueError(
                    f"gate {self.name!r} expects {definition.num_qubits} qubits, "
                    f"got {len(self.qubits)}"
                )
            if len(self.params) != definition.num_params:
                raise ValueError(
                    f"gate {self.name!r} expects {definition.num_params} params, "
                    f"got {len(self.params)}"
                )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.name!r}: {self.qubits}")
        # Freeze numeric params as plain floats for hashing stability;
        # symbolic ParameterExpression entries pass through unchanged and
        # are resolved by repro.circuits.parameters.bind_parameters.
        object.__setattr__(
            self,
            "params",
            tuple(
                p if _is_symbolic(p) else float(p) for p in self.params
            ),
        )
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))

    @property
    def is_parameterized(self) -> bool:
        """True when any parameter is still a symbolic expression."""
        return any(_is_symbolic(p) for p in self.params)

    @property
    def definition(self) -> GateDefinition:
        return GATE_REGISTRY[self.name]

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_unitary(self) -> bool:
        return self.name not in NON_UNITARY

    def matrix(self) -> np.ndarray:
        """Return the gate unitary in the little-endian local basis."""
        if not self.is_unitary:
            raise ValueError(f"gate {self.name!r} has no unitary matrix")
        if self.is_parameterized:
            raise TypeError(
                f"gate {self.name!r} has unbound symbolic parameters; "
                "bind them with repro.circuits.parameters.bind_parameters"
            )
        return self.definition.matrix_fn(self.params)

    def inverse(self) -> "Gate":
        """Return a gate whose matrix is the adjoint of this one.

        Parametric standard gates invert by parameter negation; self-inverse
        gates return themselves; the remaining fixed gates map to their
        registered adjoints.
        """
        if not self.is_unitary:
            raise ValueError(f"cannot invert non-unitary gate {self.name!r}")
        if self.definition.self_inverse:
            return self
        if self.name == "delay":
            return self  # identity with a duration tag
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", self.qubits, (-theta, -lam, -phi))
        if self.name == "u2":
            phi, lam = self.params
            return Gate("u3", self.qubits, (-math.pi / 2.0, -lam, -phi))
        if self.name in ("u1", "cu1"):
            return Gate(self.name, self.qubits, (-self.params[0],))
        if self.name in ("rx", "ry", "rz", "rzz", "rxx", "crx"):
            return Gate(self.name, self.qubits, (-self.params[0],))
        adjoints = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        if self.name in adjoints:
            return Gate(adjoints[self.name], self.qubits)
        if self.name == "sx":
            # sx = e^{i pi/4} Rx(pi/2), so sx^+ = Rx(-pi/2) up to phase.
            return Gate("rx", self.qubits, (-math.pi / 2.0,))
        if self.name == "iswap":
            raise NotImplementedError("iswap inverse is not a registered gate")
        raise NotImplementedError(f"no inverse rule for gate {self.name!r}")

    def is_entangler(self) -> bool:
        """True for the two-qubit gates the paper counts as "CNOTs"."""
        return self.name in TWO_QUBIT_ENTANGLERS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.params:
            p = ", ".join(f"{v:.4g}" for v in self.params)
            return f"{self.name}({p}) q{list(self.qubits)}"
        return f"{self.name} q{list(self.qubits)}"


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Look up a gate's unitary without constructing a :class:`Gate`."""
    definition = GATE_REGISTRY[name]
    if len(params) != definition.num_params:
        raise ValueError(
            f"gate {name!r} expects {definition.num_params} params, got {len(params)}"
        )
    return definition.matrix_fn(tuple(params))


def standard_gate(name: str, *qubits: int, params: Sequence[float] = ()) -> Gate:
    """Convenience constructor: ``standard_gate("cx", 0, 1)``."""
    return Gate(name, tuple(qubits), tuple(params))


def U3Gate(qubit: int, theta: float, phi: float, lam: float) -> Gate:
    """Shortcut for the workhorse parameterised single-qubit gate."""
    return Gate("u3", (qubit,), (theta, phi, lam))


def CXGate(control: int, target: int) -> Gate:
    """Shortcut for the workhorse entangling gate (control, target)."""
    return Gate("cx", (control, target))
