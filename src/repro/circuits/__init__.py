"""Quantum circuit intermediate representation.

Gates, circuits, a scheduling DAG, OpenQASM serialisation and a small
standard-circuit library.
"""

from .gates import Gate, GateDefinition, GATE_REGISTRY, gate_matrix, standard_gate, U3Gate, CXGate
from .circuit import QuantumCircuit
from .dag import CircuitDAG
from .qasm import to_qasm, from_qasm
from .parameters import Parameter, ParameterExpression, bind_parameters, free_parameters
from .library import (
    ghz_circuit,
    qft_circuit,
    random_circuit,
    random_u3_cx_circuit,
    basis_state_preparation,
    bell_pair,
    w_state_circuit,
    hardware_efficient_ansatz,
)
from .drawing import draw_circuit

__all__ = [
    "Gate",
    "GateDefinition",
    "GATE_REGISTRY",
    "gate_matrix",
    "standard_gate",
    "U3Gate",
    "CXGate",
    "QuantumCircuit",
    "CircuitDAG",
    "to_qasm",
    "from_qasm",
    "Parameter",
    "ParameterExpression",
    "bind_parameters",
    "free_parameters",
    "ghz_circuit",
    "qft_circuit",
    "random_circuit",
    "random_u3_cx_circuit",
    "basis_state_preparation",
    "bell_pair",
    "w_state_circuit",
    "hardware_efficient_ansatz",
    "draw_circuit",
]
