"""Standard circuit constructions used by tests, examples and benchmarks."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .circuit import QuantumCircuit

__all__ = [
    "ghz_circuit",
    "qft_circuit",
    "random_circuit",
    "random_u3_cx_circuit",
    "basis_state_preparation",
]


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """|0..0> + |1..1> preparation: one H plus a CNOT ladder."""
    qc = QuantumCircuit(num_qubits, name=f"ghz{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def qft_circuit(num_qubits: int, *, swaps: bool = True) -> QuantumCircuit:
    """The quantum Fourier transform over ``num_qubits`` qubits."""
    qc = QuantumCircuit(num_qubits, name=f"qft{num_qubits}")
    for target in reversed(range(num_qubits)):
        qc.h(target)
        for k, control in enumerate(reversed(range(target)), start=2):
            qc.cu1(2.0 * math.pi / (2**k), control, target)
    if swaps:
        for q in range(num_qubits // 2):
            qc.swap(q, num_qubits - 1 - q)
    return qc


def random_circuit(
    num_qubits: int,
    depth: int,
    *,
    seed: Optional[int] = None,
    two_qubit_prob: float = 0.35,
) -> QuantumCircuit:
    """A random circuit over the registered one- and two-qubit gates.

    Deterministic for a fixed ``seed``; used heavily by property-based
    tests to cross-validate simulators and transpiler passes.
    """
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"random{num_qubits}x{depth}")
    one_q = ["h", "x", "y", "z", "s", "t", "sx", "u3", "rx", "ry", "rz"]
    two_q = ["cx", "cz", "swap", "rzz"]
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < two_qubit_prob:
            name = two_q[rng.integers(len(two_q))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            if name == "rzz":
                qc.rzz(float(rng.uniform(0, 2 * math.pi)), int(a), int(b))
            elif name == "cx":
                qc.cx(int(a), int(b))
            elif name == "cz":
                qc.cz(int(a), int(b))
            else:
                qc.swap(int(a), int(b))
        else:
            name = one_q[rng.integers(len(one_q))]
            q = int(rng.integers(num_qubits))
            if name == "u3":
                qc.u3(
                    float(rng.uniform(0, math.pi)),
                    float(rng.uniform(0, 2 * math.pi)),
                    float(rng.uniform(0, 2 * math.pi)),
                    q,
                )
            elif name in ("rx", "ry", "rz"):
                getattr(qc, name)(float(rng.uniform(0, 2 * math.pi)), q)
            else:
                getattr(qc, name)(q)
    return qc


def random_u3_cx_circuit(
    num_qubits: int,
    num_cnots: int,
    *,
    seed: Optional[int] = None,
    coupling: Optional[Sequence[tuple]] = None,
) -> QuantumCircuit:
    """A random circuit in the synthesis ansatz shape: U3 layers + CNOTs.

    This mirrors the circuit space QSearch explores (one CNOT plus two U3
    gates per block) and is used to exercise the synthesis objective.
    """
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"ansatz{num_qubits}x{num_cnots}")
    edges = list(coupling) if coupling else [
        (a, b) for a in range(num_qubits) for b in range(num_qubits) if a < b
    ]
    for q in range(num_qubits):
        qc.u3(*(float(x) for x in rng.uniform(0, 2 * math.pi, size=3)), q)
    for _ in range(num_cnots):
        a, b = edges[rng.integers(len(edges))]
        qc.cx(int(a), int(b))
        for q in (a, b):
            qc.u3(*(float(x) for x in rng.uniform(0, 2 * math.pi, size=3)), int(q))
    return qc


def bell_pair() -> QuantumCircuit:
    """The |Phi+> Bell state preparation."""
    return ghz_circuit(2).copy(name="bell")


def w_state_circuit(num_qubits: int) -> QuantumCircuit:
    """Prepare the W state ``(|100..> + |010..> + ... + |0..01>)/sqrt(n)``.

    Cascade construction: a chain of amplitude-splitting controlled
    rotations followed by CNOTs (ancilla free).
    """
    if num_qubits < 2:
        raise ValueError("W state needs at least 2 qubits")
    n = num_qubits
    qc = QuantumCircuit(n, name=f"w{n}")
    qc.x(0)
    for k in range(n - 1):
        # Split amplitude 1/(n-k) off the current excitation carrier.
        theta = 2.0 * math.acos(math.sqrt(1.0 / (n - k)))
        # CRY via crx conjugated: use ry-based controlled rotation built
        # from the generic controlled-1q decomposition.
        from ..transpile.basis import controlled_1q_gates
        from .gates import gate_matrix

        for gate in controlled_1q_gates(
            gate_matrix("ry", (theta,)), k, k + 1
        ):
            qc.append(gate)
        qc.cx(k + 1, k)
    return qc


def hardware_efficient_ansatz(
    num_qubits: int,
    num_layers: int,
    parameter_prefix: str = "t",
):
    """A hardware-efficient variational ansatz with symbolic parameters.

    Each layer: RY+RZ on every qubit (symbolic angles) followed by a CNOT
    ladder. Returns ``(circuit, parameters)``; bind with
    :func:`repro.circuits.parameters.bind_parameters`.
    """
    from .parameters import Parameter

    qc = QuantumCircuit(num_qubits, name=f"hea{num_qubits}x{num_layers}")
    parameters = []
    for layer in range(num_layers):
        for q in range(num_qubits):
            p_ry = Parameter(f"{parameter_prefix}[{layer}][{q}]ry")
            p_rz = Parameter(f"{parameter_prefix}[{layer}][{q}]rz")
            parameters.extend([p_ry, p_rz])
            qc.ry(p_ry, q)
            qc.rz(p_rz, q)
        for q in range(num_qubits - 1):
            qc.cx(q, q + 1)
    return qc, parameters


def basis_state_preparation(num_qubits: int, bitstring: str) -> QuantumCircuit:
    """Prepare the computational basis state ``|bitstring>``.

    The bitstring reads left-to-right from the most significant qubit,
    i.e. ``"011"`` on 3 qubits sets qubit 1 and qubit 0.
    """
    if len(bitstring) != num_qubits:
        raise ValueError("bitstring length must equal num_qubits")
    qc = QuantumCircuit(num_qubits, name=f"prep_{bitstring}")
    for position, bit in enumerate(bitstring):
        qubit = num_qubits - 1 - position
        if bit == "1":
            qc.x(qubit)
        elif bit != "0":
            raise ValueError(f"invalid bit {bit!r}")
    return qc
