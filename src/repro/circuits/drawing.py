"""Plain-text circuit rendering.

A column-per-moment ASCII drawing in the spirit of Qiskit's text drawer:
one wire per qubit, gates stacked left-to-right in ASAP moments, vertical
bars for multi-qubit gates.

Example (GHZ on 3 qubits)::

    q0: ─[H]──●───────
    q1: ──────X───●───
    q2: ──────────X───
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["draw_circuit"]

_WIRE = "─"
_VERT = "│"


def _gate_symbol(gate: Gate, qubit: int) -> str:
    """The cell label of ``gate`` on ``qubit``."""
    name = gate.name
    if name == "cx":
        return "●" if qubit == gate.qubits[0] else "X"
    if name == "cz":
        return "●"
    if name == "swap":
        return "x"
    if name == "ccx":
        return "●" if qubit in gate.qubits[:2] else "X"
    if name == "cswap":
        return "●" if qubit == gate.qubits[0] else "x"
    if name in ("crx", "cu1"):
        label = f"{name.upper()}({gate.params[0]:.2g})"
        return "●" if qubit == gate.qubits[0] else f"[{label}]"
    if name == "measure":
        return "[M]"
    if name == "barrier":
        return "░"
    if name == "delay":
        return f"[idle {gate.params[0]:.3g}]"
    if gate.params:
        args = ",".join(
            f"{p:.2g}" if isinstance(p, float) else "θ" for p in gate.params
        )
        return f"[{name.upper()}({args})]"
    return f"[{name.upper()}]"


def _moments(circuit: QuantumCircuit) -> List[List[Gate]]:
    """ASAP moments: gates grouped into non-overlapping columns."""
    level: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    moments: List[List[Gate]] = []
    for gate in circuit:
        qubits = gate.qubits if gate.qubits else tuple(range(circuit.num_qubits))
        start = max(level[q] for q in qubits)
        while len(moments) <= start:
            moments.append([])
        moments[start].append(gate)
        for q in qubits:
            level[q] = start + 1
    return moments


def draw_circuit(circuit: QuantumCircuit, *, max_width: Optional[int] = None) -> str:
    """Render a circuit as ASCII art; one line per qubit wire.

    ``max_width`` truncates long circuits with an ellipsis column.
    """
    n = circuit.num_qubits
    moments = _moments(circuit)
    label_width = len(f"q{n - 1}: ")
    rows = [f"q{q}: ".ljust(label_width) for q in range(n)]

    for moment in moments:
        cells = {q: None for q in range(n)}
        spans = []  # (min_qubit, max_qubit) of multi-qubit gates
        for gate in moment:
            for q in gate.qubits:
                cells[q] = _gate_symbol(gate, q)
            if len(gate.qubits) > 1 and gate.name != "measure":
                spans.append((min(gate.qubits), max(gate.qubits)))
        width = max(
            (len(c) for c in cells.values() if c is not None), default=1
        )
        for q in range(n):
            cell = cells[q]
            if cell is None:
                in_span = any(lo < q < hi for lo, hi in spans)
                cell = _VERT if in_span else _WIRE
                body = cell.center(width, _WIRE if cell == _WIRE else " ")
                # keep the vertical connector visible on wire background
                if cell == _VERT:
                    body = _VERT.center(width, _WIRE)
            else:
                body = cell.center(width, _WIRE)
            rows[q] += _WIRE + body + _WIRE
        if max_width and len(rows[0]) > max_width:
            rows = [r[:max_width] + "…" for r in rows]
            break
    return "\n".join(rows)
