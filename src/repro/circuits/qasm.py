"""OpenQASM 2 subset serialisation.

Enough of OpenQASM 2 to round-trip every circuit this package produces:
one quantum register, the registered gate set, ``barrier`` and ``measure``.
Used by the experiment harness to checkpoint synthesized approximate
circuits to disk.
"""

from __future__ import annotations

import math
import re
from typing import List

from .circuit import QuantumCircuit
from .gates import GATE_REGISTRY, Gate

__all__ = ["to_qasm", "from_qasm"]

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_QREG_RE = re.compile(r"qreg\s+(\w+)\[(\d+)\]\s*;")
_CREG_RE = re.compile(r"creg\s+(\w+)\[(\d+)\]\s*;")
_GATE_RE = re.compile(
    r"(\w+)\s*(?:\(([^)]*)\))?\s+((?:\w+\[\d+\]\s*,?\s*)+);"
)
_QUBIT_RE = re.compile(r"\w+\[(\d+)\]")


def _fmt_param(value: float) -> str:
    """Render a parameter, preferring exact multiples of pi for readability."""
    for denom in (1, 2, 3, 4, 6, 8):
        for num in range(-16, 17):
            if num == 0:
                continue
            if abs(value - num * math.pi / denom) < 1e-12:
                frac = f"pi/{denom}" if denom != 1 else "pi"
                if num == 1:
                    return frac
                if num == -1:
                    return f"-{frac}"
                return f"{num}*{frac}"
    if value == 0:
        return "0"
    return repr(float(value))


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to an OpenQASM 2 string."""
    lines: List[str] = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    if circuit.has_measurements():
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit:
        qubits = ",".join(f"q[{q}]" for q in gate.qubits)
        if gate.name == "measure":
            for q in gate.qubits:
                lines.append(f"measure q[{q}] -> c[{q}];")
            continue
        if gate.name == "barrier":
            lines.append(f"barrier {qubits};")
            continue
        if gate.params:
            params = ",".join(_fmt_param(p) for p in gate.params)
            lines.append(f"{gate.name}({params}) {qubits};")
        else:
            lines.append(f"{gate.name} {qubits};")
    return "\n".join(lines) + "\n"


def _eval_param(expr: str) -> float:
    """Evaluate a QASM parameter expression (numbers, pi, + - * /)."""
    expr = expr.strip()
    if not re.fullmatch(r"[\d\s\.\+\-\*/epi()]+", expr):
        raise ValueError(f"unsupported parameter expression {expr!r}")
    return float(eval(expr, {"__builtins__": {}}, {"pi": math.pi, "e": math.e}))


def from_qasm(text: str) -> QuantumCircuit:
    """Parse the OpenQASM 2 subset emitted by :func:`to_qasm`."""
    num_qubits = None
    circuit = None
    pending_measure: List[int] = []
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include")):
            continue
        m = _QREG_RE.fullmatch(line)
        if m:
            num_qubits = int(m.group(2))
            circuit = QuantumCircuit(num_qubits)
            continue
        if _CREG_RE.fullmatch(line):
            continue
        if circuit is None:
            raise ValueError("gate statement before qreg declaration")
        if line.startswith("measure"):
            q = int(_QUBIT_RE.search(line).group(1))
            pending_measure.append(q)
            continue
        if line.startswith("barrier"):
            qubits = tuple(int(x) for x in _QUBIT_RE.findall(line))
            circuit.append(Gate("barrier", qubits))
            continue
        m = _GATE_RE.fullmatch(line)
        if not m:
            raise ValueError(f"cannot parse QASM line {raw!r}")
        name, params_str, qubits_str = m.groups()
        if name not in GATE_REGISTRY:
            raise ValueError(f"unknown gate {name!r} in QASM input")
        qubits = tuple(int(x) for x in _QUBIT_RE.findall(qubits_str))
        params = ()
        if params_str:
            params = tuple(_eval_param(p) for p in params_str.split(","))
        circuit.append(Gate(name, qubits, params))
    if circuit is None:
        raise ValueError("QASM input has no qreg declaration")
    if pending_measure:
        circuit.append(Gate("measure", tuple(sorted(set(pending_measure)))))
    return circuit
