"""CNOT-error sensitivity sweeps (paper §6.2).

The paper "uses the ibmq_ourense noise model as a base, but changes the
two-qubit gate noise level" — implemented here as a helper that produces a
family of noise models whose CNOT depolarizing rate is pinned to each sweep
value while every other error source (one-qubit gates, thermal relaxation,
readout) keeps its calibrated value.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..parallel import parallel_map
from .devices import DeviceSnapshot, get_device
from .model import NoiseModel

__all__ = [
    "cnot_error_sweep",
    "sweep_map",
    "sweep_pool_distributions",
    "PAPER_SWEEP_LEVELS",
]

#: The CNOT error levels the paper's Figures 8-11 report.
PAPER_SWEEP_LEVELS = (0.0, 0.03, 0.06, 0.12, 0.24)


def cnot_error_sweep(
    device: "DeviceSnapshot | str" = "ourense",
    levels: Iterable[float] = PAPER_SWEEP_LEVELS,
    *,
    qubits: Optional[Sequence[int]] = None,
) -> List[NoiseModel]:
    """Noise models with the CNOT error forced to each of ``levels``.

    Parameters
    ----------
    device:
        Base device snapshot (name or object); the paper uses Ourense.
    levels:
        CNOT depolarizing probabilities, one output model per value.
    qubits:
        Physical qubit subset passed to
        :meth:`~repro.noise.devices.DeviceSnapshot.noise_model`.
    """
    if isinstance(device, str):
        device = get_device(device)
    base = device.noise_model(qubits)
    models = []
    for level in levels:
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"CNOT error level {level} outside [0, 1]")
        models.append(base.with_cnot_depolarizing(level))
    return models


def _sweep_eval(task):
    fn, device_name, level, qubits = task
    (model,) = cnot_error_sweep(device_name, [level], qubits=qubits)
    return fn(level, model)


def sweep_map(
    fn: Callable[[float, NoiseModel], object],
    device: str = "ourense",
    levels: Iterable[float] = PAPER_SWEEP_LEVELS,
    *,
    qubits: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> List[object]:
    """Evaluate ``fn(level, noise_model)`` per sweep level, fanned out over
    worker processes.

    The sweep levels are independent workloads (the paper re-runs the same
    pools under each), so this is the natural fan-out axis for §6.2-style
    studies. ``fn`` must be a module-level (picklable) callable; each
    worker rebuilds its pinned-CNOT model locally so only the results
    travel between processes. Results are in ``levels`` order regardless
    of the worker count.
    """
    device_name = device if isinstance(device, str) else device.name
    tasks = [(fn, device_name, float(level), qubits) for level in levels]
    return parallel_map(_sweep_eval, tasks, jobs=jobs)


def sweep_pool_distributions(
    circuits: Sequence,
    device: "DeviceSnapshot | str" = "ourense",
    levels: Iterable[float] = PAPER_SWEEP_LEVELS,
    *,
    qubits: Optional[Sequence[int]] = None,
    with_readout_error: bool = True,
    fuse: bool = True,
    jobs: Optional[int] = None,
) -> np.ndarray:
    """Distributions of every circuit under every sweep level, batched.

    The §6.2 workload in one call: instead of one full density-matrix
    propagation per ``(circuit, level)`` pair, every circuit is compiled
    once and propagated under the whole level stack through
    :func:`repro.sim.batched.simulate_pool` (levels whose noise shares a
    channel structure ride in one pass).  Results match the serial
    ``DensityMatrixSimulator`` path to <= 1e-12.

    Returns an array of shape ``(len(levels), len(circuits), 2**n)``.
    """
    # Imported lazily: repro.sim imports repro.noise at package import.
    from ..sim.batched import simulate_pool

    circuits = list(circuits)
    levels = [float(level) for level in levels]
    models = cnot_error_sweep(device, levels, qubits=qubits)
    per_circuit = simulate_pool(
        circuits,
        models,
        with_readout_error=with_readout_error,
        fuse=fuse,
        jobs=jobs,
    )
    # (C, L, dim) -> (L, C, dim): level-major, like the paper's figures.
    return np.ascontiguousarray(np.stack(per_circuit).swapaxes(0, 1))
