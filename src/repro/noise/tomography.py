"""Quantum process tomography by linear inversion.

Reconstructs the process (superoperator) of a noisy operation from
prepare-and-measure data alone, exactly as one would characterise a gate
on hardware. Used to *verify* the reproduction's noise models from the
outside: tomographing a simulated noisy gate recovers the channel that
was injected (see ``tests/test_tomography.py``), closing the loop between
the model layer and the simulator layer.

Method (single- and two-qubit processes):

* prepare the informationally complete single-qubit basis
  ``{|0>, |1>, |+>, |+i>}`` on each involved qubit (preparation gates are
  assumed ideal — this is SPAM-free tomography; fold SPAM error into the
  process if it should be characterised too),
* apply the process,
* estimate the output density matrix by measuring in the X/Y/Z bases
  (state tomography via Pauli expectations),
* solve the linear system mapping input matrices to outputs for the
  superoperator, and convert to the Choi matrix / average fidelity.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .channels import KrausChannel

__all__ = [
    "state_tomography",
    "process_tomography",
    "choi_matrix",
    "process_fidelity_to_channel",
]

_PAULI = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}

#: Informationally complete input states (density matrices) per qubit.
_INPUT_STATES: Dict[str, np.ndarray] = {
    "0": np.array([[1, 0], [0, 0]], dtype=np.complex128),
    "1": np.array([[0, 0], [0, 1]], dtype=np.complex128),
    "+": 0.5 * np.array([[1, 1], [1, 1]], dtype=np.complex128),
    "i": 0.5 * np.array([[1, -1j], [1j, 1]], dtype=np.complex128),
}

#: Circuits preparing each input state from |0>.
def _prep_gates(label: str, qubit: int, circuit: QuantumCircuit) -> None:
    if label == "0":
        return
    if label == "1":
        circuit.x(qubit)
    elif label == "+":
        circuit.h(qubit)
    elif label == "i":
        circuit.h(qubit)
        circuit.s(qubit)
    else:
        raise ValueError(f"unknown input label {label!r}")


def _pauli_matrix(label: str) -> np.ndarray:
    out = np.array([[1.0]], dtype=np.complex128)
    for ch in label:
        out = np.kron(out, _PAULI[ch])
    return out


def state_tomography(
    expectation: Callable[[str], float], num_qubits: int
) -> np.ndarray:
    """Reconstruct a density matrix from Pauli expectations.

    ``expectation(label)`` returns ``<P_label>`` for an ``num_qubits``-wide
    Pauli label (MSB-first). Uses the Pauli expansion
    ``rho = (1/d) sum_P <P> P``.
    """
    dim = 2**num_qubits
    rho = np.zeros((dim, dim), dtype=np.complex128)
    for letters in itertools.product("IXYZ", repeat=num_qubits):
        label = "".join(letters)
        value = 1.0 if label == "I" * num_qubits else expectation(label)
        rho += value * _pauli_matrix(label)
    return rho / dim


def process_tomography(
    apply_process: Callable[[QuantumCircuit], np.ndarray],
    num_qubits: int,
) -> np.ndarray:
    """Reconstruct a process superoperator from prepare/measure data.

    Parameters
    ----------
    apply_process:
        Executes ``prep_circuit ; process`` and returns the *output
        density matrix* over the process qubits. (With a density-matrix
        simulator this is exact; with counts, build it from measured
        Pauli expectations via :func:`state_tomography`.)
    num_qubits:
        Width of the process (1 or 2 supported).

    Returns
    -------
    numpy.ndarray
        The column-stacking superoperator ``S`` with
        ``vec(E(rho)) = S vec(rho)`` (row-major vec, matching
        :meth:`repro.noise.channels.KrausChannel.superoperator`).
    """
    if num_qubits not in (1, 2):
        raise ValueError("process tomography implemented for 1-2 qubits")
    dim = 2**num_qubits
    labels = list(_INPUT_STATES)

    inputs: List[np.ndarray] = []
    outputs: List[np.ndarray] = []
    for combo in itertools.product(labels, repeat=num_qubits):
        # combo[i] prepares qubit (num_qubits-1-i) so the label reads
        # MSB-first like Pauli labels.
        prep = QuantumCircuit(num_qubits, name=f"prep_{''.join(combo)}")
        for position, label in enumerate(combo):
            _prep_gates(label, num_qubits - 1 - position, prep)
        rho_in = np.array([[1.0]], dtype=np.complex128)
        for label in combo:
            rho_in = np.kron(rho_in, _INPUT_STATES[label])
        inputs.append(rho_in.reshape(-1))
        outputs.append(np.asarray(apply_process(prep)).reshape(-1))

    basis = np.stack(inputs, axis=1)  # (d^2, n_inputs)
    images = np.stack(outputs, axis=1)
    # S @ basis = images  ->  S = images @ pinv(basis)
    return images @ np.linalg.pinv(basis)


def choi_matrix(superoperator: np.ndarray) -> np.ndarray:
    """Choi matrix of a (row-major vec) superoperator.

    ``J = sum_{ij} E(|i><j|) (x) |i><j|``; positive semidefinite iff the
    process is completely positive.
    """
    d2 = superoperator.shape[0]
    d = int(round(np.sqrt(d2)))
    if d * d != d2 or superoperator.shape != (d2, d2):
        raise ValueError("superoperator must be d^2 x d^2")
    choi = np.zeros((d * d, d * d), dtype=np.complex128)
    for i in range(d):
        for j in range(d):
            e_ij = np.zeros((d, d), dtype=np.complex128)
            e_ij[i, j] = 1.0
            image = (superoperator @ e_ij.reshape(-1)).reshape(d, d)
            choi += np.kron(image, e_ij)
    return choi


def process_fidelity_to_channel(
    superoperator: np.ndarray, channel: KrausChannel
) -> float:
    """Normalised overlap between a measured process and a model channel.

    ``F = Tr(S_model^+ S_measured) / d^2`` — equals 1 iff they agree.
    """
    model = channel.superoperator()
    if model.shape != superoperator.shape:
        raise ValueError("dimension mismatch")
    d2 = model.shape[0]
    norm = float(np.real(np.trace(model.conj().T @ model)))
    overlap = float(np.real(np.trace(model.conj().T @ superoperator)))
    return overlap / max(norm, 1e-300)
