"""Error-mitigation post-processing.

The paper's related-work section wonders "whether the benefits of
approximate circuits will hold for processes which require post-processing
or manipulation of error levels, as these may end up interfering with the
noise which the approximate circuits rely on". This module implements the
two standard techniques that question refers to, so the interaction can be
measured:

* **readout mitigation** — invert the per-qubit confusion matrices
  (tensor-product structure, so inversion is per-qubit and cheap) and
  project the result back onto the probability simplex;
* **zero-noise extrapolation (ZNE)** — evaluate an observable at several
  artificially scaled noise levels (via
  :meth:`~repro.noise.model.NoiseModel.scaled`) and Richardson-extrapolate
  to zero noise.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .channels import ReadoutError
from .model import NoiseModel

__all__ = [
    "invert_readout",
    "mitigate_readout",
    "richardson_extrapolate",
    "zne_observable",
]


def invert_readout(
    probabilities: np.ndarray,
    errors: Sequence[Optional[ReadoutError]],
) -> np.ndarray:
    """Undo per-qubit readout confusion by matrix inversion.

    The confusion matrix of ``n`` independent qubits is the tensor product
    of 2x2 matrices, so its inverse applies one small solve per qubit.
    The raw inverse can leave the simplex (negative quasi-probabilities);
    see :func:`mitigate_readout` for the projected version.
    """
    num_qubits = len(errors)
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.size != 2**num_qubits:
        raise ValueError("distribution size does not match error list")
    tensor = probs.reshape((2,) * num_qubits)
    for q, err in enumerate(errors):
        if err is None:
            continue
        inverse = np.linalg.inv(err.matrix)
        axis = num_qubits - 1 - q
        tensor = np.tensordot(inverse, tensor, axes=([1], [axis]))
        tensor = np.moveaxis(tensor, 0, axis)
    return np.ascontiguousarray(tensor).reshape(-1)


def _project_to_simplex(quasi: np.ndarray) -> np.ndarray:
    """Closest probability vector in Euclidean distance (Held et al.)."""
    n = quasi.size
    sorted_q = np.sort(quasi)[::-1]
    cumulative = np.cumsum(sorted_q)
    rho = np.nonzero(sorted_q + (1.0 - cumulative) / np.arange(1, n + 1) > 0)[0][-1]
    tau = (cumulative[rho] - 1.0) / (rho + 1.0)
    return np.clip(quasi - tau, 0.0, None)


def mitigate_readout(
    probabilities: np.ndarray,
    errors: Sequence[Optional[ReadoutError]],
) -> np.ndarray:
    """Readout mitigation: inversion followed by simplex projection."""
    quasi = invert_readout(probabilities, errors)
    if (quasi >= -1e-12).all():
        out = np.clip(quasi, 0.0, None)
        return out / out.sum()
    return _project_to_simplex(quasi)


def richardson_extrapolate(
    scales: Sequence[float], values: Sequence[float]
) -> float:
    """Richardson extrapolation of ``values(scale)`` to ``scale = 0``.

    With ``k`` points this fits the unique degree ``k-1`` polynomial and
    evaluates it at zero — the standard ZNE estimator.
    """
    scales = np.asarray(scales, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if scales.size != values.size or scales.size < 2:
        raise ValueError("need >= 2 (scale, value) pairs")
    if len(set(scales.tolist())) != scales.size:
        raise ValueError("scales must be distinct")
    # Lagrange basis evaluated at 0.
    total = 0.0
    for i in range(scales.size):
        weight = 1.0
        for j in range(scales.size):
            if i != j:
                weight *= scales[j] / (scales[j] - scales[i])
        total += weight * values[i]
    return float(total)


def zne_observable(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    observable: Callable[[np.ndarray], float],
    *,
    scales: Sequence[float] = (1.0, 1.5, 2.0),
    with_readout_error: bool = True,
) -> float:
    """Zero-noise extrapolation of an observable under a noise model.

    Runs the circuit under ``noise_model.scaled(s)`` for each ``s`` and
    Richardson-extrapolates the observable to ``s = 0``. Depolarizing
    components scale linearly with ``s``; thermal and readout components
    are held fixed (they are not controllable by gate-level noise scaling
    on hardware either).
    """
    from ..sim.density_matrix import DensityMatrixSimulator

    values: List[float] = []
    for scale in scales:
        if scale <= 0:
            raise ValueError("scales must be positive")
        model = noise_model.scaled(scale)
        sim = DensityMatrixSimulator(model)
        probs = sim.probabilities(
            circuit, with_readout_error=with_readout_error
        )
        values.append(observable(probs))
    return richardson_extrapolate(list(scales), values)
