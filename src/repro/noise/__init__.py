"""Noise channels, device noise models and calibration snapshots."""

from .channels import (
    KrausChannel,
    ReadoutError,
    identity_channel,
    depolarizing_channel,
    bit_flip_channel,
    phase_flip_channel,
    pauli_channel,
    amplitude_damping_channel,
    phase_damping_channel,
    thermal_relaxation_channel,
    compose_channels,
    apply_readout_errors,
)
from .model import GateError, NoiseModel
from .devices import (
    DeviceSnapshot,
    get_device,
    available_devices,
    TABLE1_CNOT_ERRORS,
)
from .sweep import (
    cnot_error_sweep,
    sweep_map,
    sweep_pool_distributions,
    PAPER_SWEEP_LEVELS,
)
from .tomography import (
    state_tomography,
    process_tomography,
    choi_matrix,
    process_fidelity_to_channel,
)
from .mitigation import (
    invert_readout,
    mitigate_readout,
    richardson_extrapolate,
    zne_observable,
)

__all__ = [
    "KrausChannel",
    "ReadoutError",
    "identity_channel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "pauli_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "compose_channels",
    "apply_readout_errors",
    "GateError",
    "NoiseModel",
    "DeviceSnapshot",
    "get_device",
    "available_devices",
    "TABLE1_CNOT_ERRORS",
    "cnot_error_sweep",
    "sweep_map",
    "sweep_pool_distributions",
    "PAPER_SWEEP_LEVELS",
    "invert_readout",
    "mitigate_readout",
    "richardson_extrapolate",
    "zne_observable",
    "state_tomography",
    "process_tomography",
    "choi_matrix",
    "process_fidelity_to_channel",
]
