"""Snapshots of the five IBM Q devices the paper evaluates on.

Table 1 of the paper publishes one number per device — the average CNOT
error on the calibration date (2021/01/18) — together with the device
sizes. The real topologies are public (Falcon/Hummingbird heavy-hex maps
and the 5-qubit T/line layouts). Per-edge CNOT rates, per-qubit readout
errors and coherence times are *not* published in the paper, so they are
synthesised here from seeded lognormal spreads rescaled so the per-device
CNOT averages match Table 1 exactly. The paper's conclusions depend only on
(a) the relative ordering of device noise levels and (b) heterogeneity
across qubits/edges within a device — both preserved by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .channels import ReadoutError
from .model import GateError, NoiseModel

__all__ = [
    "DeviceSnapshot",
    "get_device",
    "available_devices",
    "TABLE1_CNOT_ERRORS",
]

Edge = Tuple[int, int]

#: Published Table 1 values: device -> (num_qubits, average CNOT error).
TABLE1_CNOT_ERRORS: Dict[str, Tuple[int, float]] = {
    "manhattan": (65, 0.01578),
    "toronto": (27, 0.01377),
    "santiago": (5, 0.01131),
    "rome": (5, 0.02965),
    "ourense": (5, 0.00767),
}

#: Physically-pulsed one-qubit gates (virtual-Z gates are error free on IBM).
PULSED_1Q_GATES = ("u2", "u3", "x", "y", "sx", "h", "rx", "ry", "s", "sdg", "t", "tdg")
VIRTUAL_1Q_GATES = ("u1", "rz", "z", "id")

# Typical per-device characteristics used to synthesise calibrations.
# (readout error mean, 1q gate error mean, T1 mean us, T2 mean us, cx ns)
_DEVICE_PROFILE = {
    "manhattan": (0.022, 4.2e-4, 60.0, 75.0, 480.0),
    "toronto": (0.030, 3.5e-4, 90.0, 95.0, 420.0),
    "santiago": (0.015, 3.0e-4, 95.0, 110.0, 380.0),
    "rome": (0.025, 5.5e-4, 50.0, 60.0, 500.0),
    "ourense": (0.018, 3.2e-4, 100.0, 70.0, 390.0),
}

_SEEDS = {"manhattan": 65, "toronto": 27, "santiago": 5, "rome": 55, "ourense": 50}


def _line_edges(n: int) -> List[Edge]:
    return [(i, i + 1) for i in range(n - 1)]


#: ibmq_ourense / valencia T-shaped 5-qubit layout.
_OURENSE_EDGES: List[Edge] = [(0, 1), (1, 2), (1, 3), (3, 4)]

#: ibmq_toronto (27-qubit Falcon heavy-hex).
_TORONTO_EDGES: List[Edge] = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]

#: ibmq_manhattan (65-qubit Hummingbird heavy-hex).
_MANHATTAN_EDGES: List[Edge] = (
    _line_edges(10)
    + [(0, 10), (4, 11), (8, 12), (10, 13), (11, 17), (12, 21)]
    + [(i, i + 1) for i in range(13, 23)]
    + [(15, 24), (19, 25), (23, 26), (24, 29), (25, 33), (26, 37)]
    + [(i, i + 1) for i in range(27, 37)]
    + [(27, 38), (31, 39), (35, 40), (38, 41), (39, 45), (40, 49)]
    + [(i, i + 1) for i in range(41, 51)]
    + [(43, 52), (47, 53), (51, 54), (52, 56), (53, 60), (54, 64)]
    + [(i, i + 1) for i in range(55, 64)]
)

_EDGE_LISTS: Dict[str, List[Edge]] = {
    "manhattan": _MANHATTAN_EDGES,
    "toronto": _TORONTO_EDGES,
    "santiago": _line_edges(5),
    "rome": _line_edges(5),
    "ourense": _OURENSE_EDGES,
}


@dataclass
class DeviceSnapshot:
    """A device calibration snapshot: topology plus error rates.

    All durations are nanoseconds; coherence times are nanoseconds too.
    """

    name: str
    num_qubits: int
    edges: List[Edge]
    cnot_errors: Dict[Edge, float]
    readout_errors: Dict[int, Tuple[float, float]]
    single_qubit_errors: Dict[int, float]
    t1: Dict[int, float]
    t2: Dict[int, float]
    cx_duration: float = 400.0
    sq_duration: float = 35.0
    calibration_date: str = "2021-01-18"

    def coupling_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_qubits))
        g.add_edges_from(self.edges)
        return g

    def edge_error(self, a: int, b: int) -> float:
        key = (a, b) if (a, b) in self.cnot_errors else (b, a)
        if key not in self.cnot_errors:
            raise KeyError(f"({a}, {b}) is not a coupler on {self.name}")
        return self.cnot_errors[key]

    def average_cnot_error(self) -> float:
        return float(np.mean(list(self.cnot_errors.values())))

    def average_readout_error(self) -> float:
        vals = [(p01 + p10) / 2.0 for p01, p10 in self.readout_errors.values()]
        return float(np.mean(vals))

    def has_edge(self, a: int, b: int) -> bool:
        return (a, b) in self.cnot_errors or (b, a) in self.cnot_errors

    # ------------------------------------------------------------------
    # Noise-model construction
    # ------------------------------------------------------------------
    def noise_model(
        self,
        qubits: Optional[Sequence[int]] = None,
        *,
        include_thermal: bool = True,
        include_readout: bool = True,
    ) -> NoiseModel:
        """Build a :class:`NoiseModel` over a subset of physical qubits.

        ``qubits[i]`` is the physical qubit playing local role ``i``; the
        default is the first five qubits (the paper transpiles "with
        mappings to qubits 0, 1, 2, 3, and 4" for simulator runs). Edges
        with both endpoints in the subset keep their calibrated rates;
        a ``cx`` on any other local pair falls back to the device-average
        error so unrouted circuits still see noise.
        """
        if qubits is None:
            qubits = list(range(min(5, self.num_qubits)))
        qubits = [int(q) for q in qubits]
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"physical qubit {q} outside {self.name}")
        model = NoiseModel(name=f"{self.name}[{','.join(map(str, qubits))}]")

        def thermal(qs: Sequence[int], duration: float) -> dict:
            if not include_thermal:
                return {}
            return {
                "t1s": tuple(self.t1[q] for q in qs),
                "t2s": tuple(self.t2[q] for q in qs),
                "duration": duration,
            }

        # Two-qubit errors for in-subset couplers.
        local_of = {phys: local for local, phys in enumerate(qubits)}
        for (a, b), err in self.cnot_errors.items():
            if a in local_of and b in local_of:
                model.add_gate_error(
                    GateError(depolarizing=err, **thermal((a, b), self.cx_duration)),
                    "cx",
                    (local_of[a], local_of[b]),
                )
        # Fallback for CNOTs on non-coupled local pairs.
        avg = self.average_cnot_error()
        mean_t1 = float(np.mean([self.t1[q] for q in qubits]))
        mean_t2 = float(np.mean([self.t2[q] for q in qubits]))
        fallback_thermal = (
            {"t1s": (mean_t1, mean_t1), "t2s": (mean_t2, mean_t2),
             "duration": self.cx_duration}
            if include_thermal
            else {}
        )
        model.add_gate_error(
            GateError(depolarizing=avg, **fallback_thermal), "cx", None
        )

        # One-qubit errors.
        for local, phys in enumerate(qubits):
            err = GateError(
                depolarizing=self.single_qubit_errors[phys],
                **thermal((phys,), self.sq_duration),
            )
            for gate_name in PULSED_1Q_GATES:
                model.add_gate_error(err, gate_name, (local,))

        # Idle decoherence: ``delay`` gates relax with the qubit's T1/T2
        # (see repro.transpile.scheduling.insert_idle_delays).
        if include_thermal:
            for local, phys in enumerate(qubits):
                model.set_idle_relaxation(local, self.t1[phys], self.t2[phys])

        # Readout confusion.
        if include_readout:
            for local, phys in enumerate(qubits):
                p01, p10 = self.readout_errors[phys]
                model.add_readout_error(ReadoutError(p01, p10), local)
        return model

    def noise_report(self) -> str:
        """Figure 16-style plain-text calibration report."""
        lines = [
            f"device {self.name} ({self.num_qubits} qubits), "
            f"calibrated {self.calibration_date}",
            f"average CNOT error: {self.average_cnot_error():.5f}",
            f"average readout error: {self.average_readout_error():.5f}",
            "qubit  readout(p01/p10)   T1(us)   T2(us)   1q err",
        ]
        for q in range(self.num_qubits):
            p01, p10 = self.readout_errors[q]
            lines.append(
                f"  q{q:<3} {p01:.4f}/{p10:.4f}      "
                f"{self.t1[q] / 1000.0:6.1f}   {self.t2[q] / 1000.0:6.1f}   "
                f"{self.single_qubit_errors[q]:.2e}"
            )
        lines.append("coupler    CNOT error")
        for (a, b), err in sorted(self.cnot_errors.items()):
            lines.append(f"  {a:>2}-{b:<2}     {err:.5f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeviceSnapshot({self.name!r}, {self.num_qubits}q, "
            f"avg_cx={self.average_cnot_error():.5f})"
        )


def _build_device(name: str) -> DeviceSnapshot:
    num_qubits, avg_cx = TABLE1_CNOT_ERRORS[name]
    edges = _EDGE_LISTS[name]
    ro_mean, sq_mean, t1_us, t2_us, cx_ns = _DEVICE_PROFILE[name]
    rng = np.random.default_rng(_SEEDS[name])

    # Per-edge CNOT errors: lognormal spread rescaled to the exact Table 1
    # average (real calibrations show a similar long right tail).
    raw = rng.lognormal(mean=0.0, sigma=0.45, size=len(edges))
    scaled = raw * (avg_cx / raw.mean())
    cnot_errors = {edge: float(min(0.35, e)) for edge, e in zip(edges, scaled)}

    # Readout errors follow a long-tailed lognormal like real calibration
    # snapshots (Fig 16 of the paper shows outlier qubits with several-x
    # worse readout than the device median).
    readout = {}
    for q in range(num_qubits):
        p01 = float(np.clip(rng.lognormal(np.log(ro_mean), 0.6), 0.002, 0.35))
        p10 = float(np.clip(rng.lognormal(np.log(ro_mean * 1.3), 0.6), 0.002, 0.4))
        readout[q] = (p01, p10)

    single_q = {
        q: float(np.clip(rng.normal(sq_mean, sq_mean * 0.4), 5e-5, 5e-3))
        for q in range(num_qubits)
    }

    t1 = {
        q: float(np.clip(rng.normal(t1_us, t1_us * 0.25), 15.0, 250.0)) * 1000.0
        for q in range(num_qubits)
    }
    t2 = {}
    for q in range(num_qubits):
        val = float(np.clip(rng.normal(t2_us, t2_us * 0.3), 10.0, 300.0)) * 1000.0
        t2[q] = min(val, 2.0 * t1[q])

    return DeviceSnapshot(
        name=name,
        num_qubits=num_qubits,
        edges=list(edges),
        cnot_errors=cnot_errors,
        readout_errors=readout,
        single_qubit_errors=single_q,
        t1=t1,
        t2=t2,
        cx_duration=cx_ns,
    )


_DEVICE_CACHE: Dict[str, DeviceSnapshot] = {}


def get_device(name: str) -> DeviceSnapshot:
    """Return the (cached, deterministic) snapshot for an IBM device name.

    Accepts bare names (``"toronto"``) or prefixed (``"ibmq_toronto"``).
    """
    key = name.lower().removeprefix("ibmq_")
    if key not in TABLE1_CNOT_ERRORS:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(TABLE1_CNOT_ERRORS)}"
        )
    if key not in _DEVICE_CACHE:
        _DEVICE_CACHE[key] = _build_device(key)
    return _DEVICE_CACHE[key]


def available_devices() -> List[str]:
    return sorted(TABLE1_CNOT_ERRORS)
