"""Quantum noise channels in Kraus form, plus classical readout error.

These are the same channels Qiskit Aer builds its device noise models from
(the paper's simulation substrate): depolarizing errors attached to gates,
thermal relaxation from ``T1``/``T2`` and gate duration, and a classical
readout confusion matrix per qubit.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..linalg.unitary import apply_matrix_to_state

__all__ = [
    "KrausChannel",
    "identity_channel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "pauli_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "compose_channels",
    "ReadoutError",
]

_PAULIS = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def pauli_matrix(label: str) -> np.ndarray:
    """Tensor product of single-qubit Paulis; rightmost letter = qubit 0."""
    out = np.array([[1.0]], dtype=np.complex128)
    for ch in label:
        out = np.kron(out, _PAULIS[ch])
    return out


class KrausChannel:
    """A CPTP map given by Kraus operators ``rho -> sum_i K_i rho K_i^+``."""

    def __init__(self, kraus_ops: Sequence[np.ndarray], name: str = "kraus") -> None:
        ops = [np.asarray(k, dtype=np.complex128) for k in kraus_ops]
        if not ops:
            raise ValueError("channel needs at least one Kraus operator")
        dim = ops[0].shape[0]
        for k in ops:
            if k.shape != (dim, dim):
                raise ValueError("all Kraus operators must share a square shape")
        self.kraus = np.stack(ops)
        self.name = name
        self._superop: Optional[np.ndarray] = None
        n = int(round(math.log2(dim)))
        if 2**n != dim:
            raise ValueError(f"Kraus dimension {dim} is not a power of two")
        self.num_qubits = n

    @property
    def dim(self) -> int:
        return self.kraus.shape[1]

    def is_trace_preserving(self, atol: float = 1e-9) -> bool:
        """Check the completeness relation ``sum_i K_i^+ K_i = I``."""
        acc = np.einsum("kij,kil->jl", self.kraus.conj(), self.kraus)
        return bool(np.allclose(acc, np.eye(self.dim), atol=atol))

    def is_unital(self, atol: float = 1e-9) -> bool:
        """Check ``sum_i K_i K_i^+ = I`` (identity is a fixed point)."""
        acc = np.einsum("kij,klj->il", self.kraus, self.kraus.conj())
        return bool(np.allclose(acc, np.eye(self.dim), atol=atol))

    def superoperator(self) -> np.ndarray:
        """The channel's local superoperator ``S = sum_i K_i (x) K_i^*``.

        Acting on the column-stacked local density matrix:
        ``S[(a,b),(c,d)] = sum_i K_i[a,c] conj(K_i)[b,d]`` with row-major
        pair flattening. Cached — building it once turns every later
        ``apply`` into a single matmul.
        """
        if self._superop is None:
            d = self.dim
            s = np.einsum("kac,kbd->abcd", self.kraus, self.kraus.conj())
            self._superop = np.ascontiguousarray(s.reshape(d * d, d * d))
        return self._superop

    def apply(
        self, rho: np.ndarray, qubits: Sequence[int], num_qubits: int
    ) -> np.ndarray:
        """Apply the channel to ``qubits`` of an ``n``-qubit density matrix.

        One matmul with the cached local superoperator, independent of the
        number of Kraus operators (a 2-qubit depolarizing channel has 16).
        """
        k = self.num_qubits
        if len(qubits) != k:
            raise ValueError(f"channel is {k}-qubit, got qubits {qubits}")
        n = num_qubits
        dim = 2**n
        if rho.shape != (dim, dim):
            raise ValueError("density matrix shape mismatch")
        tensor = rho.reshape((2,) * (2 * n))
        # Local row/col axes in superoperator bit order (high bit first).
        row_axes = [n - 1 - qubits[k - 1 - j] for j in range(k)]
        col_axes = [2 * n - 1 - qubits[k - 1 - j] for j in range(k)]
        moved = np.moveaxis(tensor, row_axes + col_axes, list(range(2 * k)))
        flat = np.ascontiguousarray(moved).reshape(4**k, -1)
        flat = self.superoperator() @ flat
        moved = flat.reshape((2,) * (2 * k) + moved.shape[2 * k :])
        tensor = np.moveaxis(moved, list(range(2 * k)), row_axes + col_axes)
        return np.ascontiguousarray(tensor).reshape(dim, dim)

    def apply_reference(
        self, rho: np.ndarray, qubits: Sequence[int], num_qubits: int
    ) -> np.ndarray:
        """Direct Kraus-sum implementation (kept to validate ``apply``)."""
        out = np.zeros_like(rho)
        for k in self.kraus:
            left = apply_matrix_to_state(k, rho, qubits, num_qubits)
            # Right-multiply by K^dagger: X K^+ = (K X^+)^+.
            term = apply_matrix_to_state(
                k, left.conj().T, qubits, num_qubits
            ).conj().T
            out += term
        return out

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """The channel "self then other" on the same qubits."""
        if self.dim != other.dim:
            raise ValueError("channel dimension mismatch")
        ops = [k2 @ k1 for k2 in other.kraus for k1 in self.kraus]
        return KrausChannel(ops, name=f"{other.name}({self.name})")

    def expand(self, other: "KrausChannel") -> "KrausChannel":
        """Tensor product with ``other`` acting on *higher* qubits."""
        ops = [np.kron(k2, k1) for k2 in other.kraus for k1 in self.kraus]
        return KrausChannel(ops, name=f"{other.name}⊗{self.name}")

    def average_fidelity(self) -> float:
        """Average gate fidelity to the identity channel.

        ``F_avg = (sum_i |Tr K_i|^2 / d + d) / (d^2 + d)`` — the standard
        entanglement-fidelity relation.
        """
        d = self.dim
        f_e = sum(abs(np.trace(k)) ** 2 for k in self.kraus) / d**2
        return float((d * f_e + 1) / (d + 1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KrausChannel({self.name!r}, {self.num_qubits}q, {len(self.kraus)} ops)"


def identity_channel(num_qubits: int = 1) -> KrausChannel:
    return KrausChannel([np.eye(2**num_qubits)], name="id")


def depolarizing_channel(p: float, num_qubits: int = 1) -> KrausChannel:
    """The depolarizing channel ``rho -> (1-p) rho + p I/d``.

    ``p`` is the *depolarizing probability* (Qiskit's convention); ``p = 0``
    is the identity and ``p = 1`` fully mixes.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"depolarizing probability {p} outside [0, 1]")
    d = 2**num_qubits
    labels = ["".join(s) for s in _pauli_labels(num_qubits)]
    coeff_id = math.sqrt(1.0 - p * (d**2 - 1) / d**2)
    coeff_p = math.sqrt(p) / d
    ops = [coeff_id * pauli_matrix(labels[0])]
    ops += [coeff_p * pauli_matrix(lbl) for lbl in labels[1:]]
    return KrausChannel(ops, name=f"depol({p:.4g},{num_qubits}q)")


def _pauli_labels(num_qubits: int) -> List[str]:
    labels = [""]
    for _ in range(num_qubits):
        labels = [l + ch for l in labels for ch in "IXYZ"]
    # Identity first regardless of construction order.
    ident = "I" * num_qubits
    labels.remove(ident)
    return [ident] + labels


def bit_flip_channel(p: float) -> KrausChannel:
    """Flip ``|0> <-> |1>`` with probability ``p``."""
    return pauli_channel({"I": 1 - p, "X": p})


def phase_flip_channel(p: float) -> KrausChannel:
    """Apply ``Z`` with probability ``p``."""
    return pauli_channel({"I": 1 - p, "Z": p})


def pauli_channel(probabilities: dict) -> KrausChannel:
    """A general Pauli channel from ``{label: probability}``."""
    total = sum(probabilities.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"Pauli probabilities sum to {total}, expected 1")
    ops = []
    for label, prob in probabilities.items():
        if prob < 0:
            raise ValueError("negative probability")
        if prob > 0:
            ops.append(math.sqrt(prob) * pauli_matrix(label))
    return KrausChannel(ops, name="pauli")


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Energy relaxation ``|1> -> |0>`` with probability ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma {gamma} outside [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]])
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]])
    return KrausChannel([k0, k1], name=f"amp_damp({gamma:.4g})")


def phase_damping_channel(lam: float) -> KrausChannel:
    """Pure dephasing: off-diagonals shrink by ``sqrt(1 - lam)``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lambda {lam} outside [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]])
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]])
    return KrausChannel([k0, k1], name=f"phase_damp({lam:.4g})")


def thermal_relaxation_channel(
    t1: float, t2: float, gate_time: float
) -> KrausChannel:
    """Combined T1/T2 relaxation over ``gate_time`` (same units as T1/T2).

    Implemented as amplitude damping with ``gamma = 1 - exp(-t/T1)``
    followed by the extra pure dephasing needed so total coherence decay is
    ``exp(-t/T2)``. Requires the physical constraint ``T2 <= 2 T1``.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-9:
        raise ValueError(f"unphysical T2 {t2} > 2*T1 {2 * t1}")
    if gate_time < 0:
        raise ValueError("gate_time must be non-negative")
    gamma = 1.0 - math.exp(-gate_time / t1)
    # Amplitude damping already decays coherence by exp(-t / 2 T1); add
    # dephasing for the remaining exp(-t (1/T2 - 1/(2 T1))).
    residual = math.exp(-gate_time * (1.0 / t2 - 1.0 / (2.0 * t1)))
    residual = min(1.0, residual)
    lam = 1.0 - residual**2
    channel = amplitude_damping_channel(gamma).compose(
        phase_damping_channel(lam)
    )
    channel.name = f"thermal(t1={t1:.4g},t2={t2:.4g},t={gate_time:.4g})"
    return channel


def compose_channels(*channels: KrausChannel) -> KrausChannel:
    """Left-to-right composition: the first channel acts first."""
    if not channels:
        raise ValueError("need at least one channel")
    out = channels[0]
    for ch in channels[1:]:
        out = out.compose(ch)
    return out


class ReadoutError:
    """Classical measurement confusion for one qubit.

    ``p01`` = P(read 1 | prepared 0), ``p10`` = P(read 0 | prepared 1).
    The confusion matrix ``A`` maps true probabilities to observed ones:
    ``A[i, j] = P(observe i | true j)``.
    """

    def __init__(self, p01: float, p10: float) -> None:
        for name, p in (("p01", p01), ("p10", p10)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        self.p01 = float(p01)
        self.p10 = float(p10)
        self.matrix = np.array(
            [[1.0 - p01, p10], [p01, 1.0 - p10]], dtype=np.float64
        )

    @property
    def assignment_fidelity(self) -> float:
        """Average probability of a correct readout."""
        return 1.0 - 0.5 * (self.p01 + self.p10)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReadoutError(p01={self.p01:.4g}, p10={self.p10:.4g})"


def apply_readout_errors(
    probabilities: np.ndarray,
    errors: Sequence[Optional[ReadoutError]],
) -> np.ndarray:
    """Apply per-qubit confusion matrices to a basis-state distribution.

    ``errors[q]`` is the readout error of qubit ``q`` (``None`` = ideal).
    Fully vectorised: one small tensordot per noisy qubit.
    """
    num_qubits = len(errors)
    if probabilities.size != 2**num_qubits:
        raise ValueError("distribution size does not match error list")
    tensor = probabilities.reshape((2,) * num_qubits)
    for q, err in enumerate(errors):
        if err is None:
            continue
        axis = num_qubits - 1 - q
        tensor = np.tensordot(err.matrix, tensor, axes=([1], [axis]))
        tensor = np.moveaxis(tensor, 0, axis)
    return np.ascontiguousarray(tensor).reshape(-1)
