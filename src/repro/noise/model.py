"""Device noise models: structured per-gate errors plus readout confusion.

A :class:`NoiseModel` mirrors what Qiskit Aer builds from IBM calibration
data (the paper's §4 "noise models created using error data collected from
IBM's own physical machines"):

* a depolarizing error per gate, with per-qubit / per-edge rates,
* thermal relaxation over each gate's duration from per-qubit ``T1``/``T2``,
* a readout confusion matrix per qubit.

Errors are stored *structurally* (rates, not Kraus matrices) so the §6.2
sensitivity sweeps can rescale the CNOT error component alone; Kraus
compilation is cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import Gate
from .channels import (
    KrausChannel,
    ReadoutError,
    depolarizing_channel,
    thermal_relaxation_channel,
)

__all__ = ["GateError", "NoiseModel"]


@dataclass(frozen=True)
class GateError:
    """Structured error attached to one gate type on specific qubits.

    Attributes
    ----------
    depolarizing:
        Depolarizing probability over the gate's full width.
    t1s, t2s:
        Per-qubit relaxation times (ns); ``None`` disables thermal noise.
    duration:
        Gate duration in ns, used for thermal relaxation.
    """

    depolarizing: float = 0.0
    t1s: Optional[Tuple[float, ...]] = None
    t2s: Optional[Tuple[float, ...]] = None
    duration: float = 0.0

    def compile(self, num_qubits: int) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        """Kraus operations as ``(channel, local_qubit_indices)`` pairs."""
        ops: List[Tuple[KrausChannel, Tuple[int, ...]]] = []
        if self.depolarizing > 0.0:
            ops.append(
                (depolarizing_channel(self.depolarizing, num_qubits),
                 tuple(range(num_qubits)))
            )
        if self.t1s is not None and self.duration > 0.0:
            if self.t2s is None or len(self.t1s) != num_qubits:
                raise ValueError("thermal error needs t1/t2 per gate qubit")
            for local_q in range(num_qubits):
                ops.append(
                    (
                        thermal_relaxation_channel(
                            self.t1s[local_q], self.t2s[local_q], self.duration
                        ),
                        (local_q,),
                    )
                )
        return ops

    def with_depolarizing(self, p: float) -> "GateError":
        return replace(self, depolarizing=p)

    @property
    def is_trivial(self) -> bool:
        return self.depolarizing == 0.0 and (
            self.t1s is None or self.duration == 0.0
        )


class NoiseModel:
    """Per-gate and per-qubit noise description for a simulated device."""

    def __init__(self, name: str = "noise_model") -> None:
        self.name = name
        #: exact (gate_name, qubits) -> GateError
        self._local: Dict[Tuple[str, Tuple[int, ...]], GateError] = {}
        #: gate_name -> GateError fallback for any qubits
        self._default: Dict[str, GateError] = {}
        #: qubit -> ReadoutError
        self._readout: Dict[int, ReadoutError] = {}
        #: qubit -> (T1, T2) used to translate ``delay`` gates into
        #: thermal relaxation over the idle window.
        self._idle: Dict[int, Tuple[float, float]] = {}
        self._compiled: Dict[
            Tuple[str, Tuple[int, ...]],
            List[Tuple[KrausChannel, Tuple[int, ...]]],
        ] = {}
        self._resolved: Dict[
            Tuple[str, Tuple[int, ...]],
            List[Tuple[KrausChannel, Tuple[int, ...]]],
        ] = {}
        self._idle_cache: Dict[Tuple[int, float], KrausChannel] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate_error(
        self,
        error: GateError,
        gate_name: str,
        qubits: Optional[Sequence[int]] = None,
    ) -> "NoiseModel":
        """Attach ``error`` to ``gate_name``; ``qubits=None`` sets the default.

        Two-qubit errors are direction-insensitive: an error registered for
        ``(a, b)`` also fires for ``cx b, a`` unless ``(b, a)`` is registered
        explicitly (matching how IBM reports one rate per coupler).
        """
        if qubits is None:
            self._default[gate_name] = error
        else:
            self._local[(gate_name, tuple(qubits))] = error
        self._compiled.clear()
        self._resolved.clear()
        return self

    def add_readout_error(self, error: ReadoutError, qubit: int) -> "NoiseModel":
        self._readout[int(qubit)] = error
        return self

    def set_idle_relaxation(self, qubit: int, t1: float, t2: float) -> "NoiseModel":
        """Register T1/T2 for ``delay`` gates on ``qubit`` (idle decoherence)."""
        if t1 <= 0 or t2 <= 0:
            raise ValueError("T1 and T2 must be positive")
        self._idle[int(qubit)] = (float(t1), float(t2))
        self._idle_cache.clear()
        return self

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def gate_error(self, gate: Gate) -> Optional[GateError]:
        key = (gate.name, gate.qubits)
        if key in self._local:
            return self._local[key]
        if len(gate.qubits) == 2:
            rev = (gate.name, gate.qubits[::-1])
            if rev in self._local:
                return self._local[rev]
        return self._default.get(gate.name)

    def operations_for(
        self, gate: Gate
    ) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        """Compiled Kraus ops for ``gate`` as ``(channel, global_qubits)``."""
        if gate.name == "delay":
            qubit = gate.qubits[0]
            if qubit not in self._idle:
                return []
            duration = round(float(gate.params[0]), 6)
            if duration <= 0.0:
                return []
            key = (qubit, duration)
            if key not in self._idle_cache:
                t1, t2 = self._idle[qubit]
                self._idle_cache[key] = thermal_relaxation_channel(
                    t1, t2, duration
                )
            return [(self._idle_cache[key], (qubit,))]
        key = (gate.name, gate.qubits)
        resolved = self._resolved.get(key)
        if resolved is None:
            error = self.gate_error(gate)
            if error is None or error.is_trivial:
                resolved = self._resolved[key] = []
            else:
                if key not in self._compiled:
                    self._compiled[key] = error.compile(len(gate.qubits))
                # The global-qubit mapping depends only on the key, so
                # cache the materialised list too (callers must not
                # mutate it).
                resolved = self._resolved[key] = [
                    (channel, tuple(gate.qubits[i] for i in local))
                    for channel, local in self._compiled[key]
                ]
        return resolved

    def readout_error(self, qubit: int) -> Optional[ReadoutError]:
        return self._readout.get(qubit)

    def readout_errors(self, num_qubits: int) -> List[Optional[ReadoutError]]:
        return [self._readout.get(q) for q in range(num_qubits)]

    @property
    def has_readout_error(self) -> bool:
        return bool(self._readout)

    # ------------------------------------------------------------------
    # Introspection / transformation
    # ------------------------------------------------------------------
    def cnot_error_rates(self) -> Dict[Tuple[int, ...], float]:
        """Depolarizing rate per registered CNOT coupling."""
        out = {}
        for (name, qubits), err in self._local.items():
            if name == "cx":
                out[qubits] = err.depolarizing
        if "cx" in self._default:
            out[()] = self._default["cx"].depolarizing
        return out

    def average_cnot_error(self) -> float:
        rates = [v for k, v in self.cnot_error_rates().items() if k != ()]
        if not rates:
            default = self.cnot_error_rates().get(())
            return default if default is not None else 0.0
        return float(np.mean(rates))

    def copy(self, name: Optional[str] = None) -> "NoiseModel":
        out = NoiseModel(name or self.name)
        out._local = dict(self._local)
        out._default = dict(self._default)
        out._readout = dict(self._readout)
        out._idle = dict(self._idle)
        return out

    def with_cnot_depolarizing(self, p: float) -> "NoiseModel":
        """Copy with every CNOT depolarizing rate replaced by ``p`` (§6.2).

        Thermal and readout components are untouched — the paper's sweeps
        vary *only* the two-qubit gate error.
        """
        out = self.copy(name=f"{self.name}[cx={p:.4g}]")
        for key, err in list(out._local.items()):
            if key[0] == "cx":
                out._local[key] = err.with_depolarizing(p)
        if "cx" in out._default:
            out._default["cx"] = out._default["cx"].with_depolarizing(p)
        return out

    def scaled(self, factor: float) -> "NoiseModel":
        """Copy with every depolarizing rate multiplied by ``factor``."""
        out = self.copy(name=f"{self.name}[x{factor:.3g}]")

        def scale(err: GateError) -> GateError:
            return err.with_depolarizing(min(1.0, err.depolarizing * factor))

        out._local = {k: scale(v) for k, v in out._local.items()}
        out._default = {k: scale(v) for k, v in out._default.items()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NoiseModel({self.name!r}, local={len(self._local)}, "
            f"default={sorted(self._default)}, readout={len(self._readout)})"
        )
