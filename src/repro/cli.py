"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig02 --scale smoke
    python -m repro all --scale quick --output results/
    python -m repro ablations
    python -m repro devices

With a run store (``--store DIR`` or ``REPRO_STORE=DIR``) every experiment
runs as a resumable campaign: units of work checkpoint into the store as
they complete, an interrupted invocation (``--max-units`` or a crash)
leaves a store a re-invocation resumes from, and each run records a
provenance manifest. The store registry is inspected with::

    python -m repro runs list --store DIR
    python -m repro runs show <run_id> --store DIR
    python -m repro runs diff <run_a> <run_b> --store DIR
    python -m repro runs gc [--dry-run] [--force] --store DIR
    python -m repro runs retry <run_id> --store DIR

Fault injection (``--faults SPEC`` or ``REPRO_FAULTS``) runs the same
campaign under a deterministic schedule of transient failures — see
:mod:`repro.faults` for the grammar — to exercise the retry, quarantine
and degradation paths; activations are logged to ``<store>/faults.log``.

Exit codes: 0 success, 2 usage error, 3 campaign interrupted by the unit
budget (the store holds the completed units; re-run to resume), 4
campaign completed with quarantined or degraded units (``repro runs
retry <run_id>`` re-executes exactly those units).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from . import __version__, experiments
from .experiments import get_scale
from .experiments.ablations import (
    mitigation_ablation,
    objective_ablation,
    selection_ablation,
    toffoli_suite_ablation,
    warm_start_ablation,
)

__all__ = ["main", "EXPERIMENTS", "ABLATIONS", "EXIT_INTERRUPTED", "EXIT_PARTIAL"]

#: Exit code when a campaign stops at its ``--max-units`` budget.
EXIT_INTERRUPTED = 3

#: Exit code when a campaign completes but some units were quarantined or
#: degraded; ``repro runs retry <run_id>`` re-executes exactly those units.
EXIT_PARTIAL = 4


def _render(result) -> str:
    if isinstance(result, str):
        return result
    return result.rows()


#: name -> (driver, description)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (lambda scale: experiments.table1_rows(), "average CNOT errors per machine"),
    "fig02": (experiments.fig02, "3q TFIM, Toronto model (selected series)"),
    "fig03": (experiments.fig03, "3q TFIM, Toronto model (all circuits)"),
    "fig04": (experiments.fig04, "4q TFIM, Santiago model"),
    "fig05": (experiments.fig05, "3q Grover, Toronto model"),
    "fig06": (experiments.fig06, "4q Toffoli JS, Manhattan model"),
    "fig07": (experiments.fig07, "5q Toffoli JS, Manhattan model"),
    "fig07b": (experiments.fig07b, "3q Toffoli negative result"),
    "fig08": (experiments.fig08, "TFIM sweep, CNOT error 0"),
    "fig09": (experiments.fig09, "TFIM sweep, CNOT error 0.12"),
    "fig10": (experiments.fig10, "TFIM sweep, CNOT error 0.24"),
    "fig11": (experiments.fig11, "best-circuit depth vs error level"),
    "fig12": (experiments.fig12, "3q TFIM on emulated Manhattan hardware"),
    "fig13": (experiments.fig13, "4q TFIM on emulated Manhattan hardware"),
    "fig14": (experiments.fig14, "3q Grover on emulated Rome hardware"),
    "fig15": (experiments.fig15, "4q Toffoli on emulated Manhattan hardware"),
    "fig16": (lambda scale: experiments.fig16(), "Toronto calibration report"),
    "fig17": (experiments.fig17, "best manual mapping (Toronto hardware)"),
    "fig18": (experiments.fig18, "worst manual mapping (Toronto hardware)"),
    "fig19": (experiments.fig19, "automatic level-3 mapping"),
}

ABLATIONS: Dict[str, Callable] = {
    "selection": lambda scale: selection_ablation(scale),
    "objective": lambda scale: objective_ablation(),
    "warmstart": lambda scale: warm_start_ablation(),
    "suite": lambda scale: toffoli_suite_ablation(scale),
    "mitigation": lambda scale: mitigation_ablation(scale),
}


def _campaign_registry() -> Dict[str, Callable]:
    """Every runnable target as ``name -> driver(scale)``."""
    registry = {name: driver for name, (driver, _desc) in EXPERIMENTS.items()}
    registry.update(
        {f"ablations:{name}": driver for name, driver in ABLATIONS.items()}
    )
    return registry


def _artifact_stem(name: str) -> str:
    """Output file stem for a target (``ablations:x`` -> ``ablation_x``)."""
    if name.startswith("ablations:"):
        return "ablation_" + name.split(":", 1)[1]
    return name


def _write_outputs(output: Optional[Path], name: str, result, scale) -> None:
    """Write ``<stem>.txt`` and ``<stem>.json`` renders of a result."""
    if output is None:
        return
    from .store.serialize import dumps_payload, result_to_payload

    output.mkdir(parents=True, exist_ok=True)
    stem = _artifact_stem(name)
    (output / f"{stem}.txt").write_text(_render(result) + "\n")
    payload = result_to_payload(result, name=name, scale=scale.name)
    (output / f"{stem}.json").write_text(dumps_payload(payload) + "\n")


def _run_one(name: str, scale, output: Optional[Path]) -> str:
    driver, _desc = EXPERIMENTS[name]
    started = time.time()
    result = driver(scale)
    text = _render(result)
    elapsed = time.time() - started
    _write_outputs(output, name, result, scale)
    return f"{text}\n[{name} completed in {elapsed:.1f}s]"


def _run_campaign(targets: List[str], scale, store, args) -> int:
    """Run ``targets`` as resumable campaigns against ``store``."""
    from .experiments.figures import clear_memo
    from .store import CampaignRunner

    runner = CampaignRunner(
        store,
        targets,
        scale,
        registry=_campaign_registry(),
        run_id=args.run_id,
        max_units=args.max_units,
        reset=clear_memo,
    )
    results = runner.run()
    for item in results:
        if item.result is not None:
            print(item.text, end="\n\n" if len(results) > 1 else "\n")
            _write_outputs(args.output, item.name, item.result, scale)
        print(item.summary())
    _report_fault_activations(store)
    if results and results[-1].interrupted:
        print(
            "campaign interrupted at the unit budget; re-run the same "
            f"command against {store.root} to resume"
        )
        return EXIT_INTERRUPTED
    degraded_runs = [
        item
        for item in results
        if item.partial or item.manifest.failed_units or item.manifest.degraded_units
    ]
    if degraded_runs:
        for item in degraded_runs:
            print(
                f"run {item.manifest.run_id}: "
                f"{len(item.manifest.failed_units)} quarantined / "
                f"{len(item.manifest.degraded_units)} degraded unit(s); "
                f"re-execute with 'repro runs retry {item.manifest.run_id} "
                f"--store {store.root}'"
            )
        return EXIT_PARTIAL
    return 0


def _report_fault_activations(store) -> None:
    """Print the per-kind fault activation counts after a fault campaign."""
    from .faults import FAULTS_LOG_ENV, activation_counts, active_plan

    if active_plan() is None:
        return
    log = os.environ.get(FAULTS_LOG_ENV)
    counts = activation_counts(log)
    if not counts and log:
        # The shared log may lag this process's in-memory record.
        counts = activation_counts()
    rendered = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"[faults] activations: {rendered or 'none'}")


def _runs_retry(rest: List[str], store, args, parser) -> int:
    """``repro runs retry <run_id>``: re-execute a run's failed units.

    Loads the manifest, prunes any store objects belonging to quarantined
    or degraded units, then re-runs the same target at the recorded scale
    under the same run id. Every unit that succeeded resumes from its
    checkpoint, so the retried artifact is byte-identical to what an
    unfaulted run would have produced.
    """
    if len(rest) != 1:
        parser.exit(2, "usage: repro runs retry <run_id> [--store DIR]\n")
    run_id = rest[0]
    from .store import load_manifest, prune_for_retry

    manifest = load_manifest(store, run_id)
    if manifest is None:
        parser.exit(2, f"repro runs retry: no run {run_id!r} in {store.root}\n")
    if manifest.status == "corrupt":
        parser.exit(
            2,
            f"repro runs retry: manifest {run_id!r} is corrupt "
            f"({manifest.error}); cannot determine what to re-run\n",
        )
    registry = _campaign_registry()
    if manifest.experiment not in registry:
        parser.exit(
            2,
            f"repro runs retry: run {run_id!r} targets unknown experiment "
            f"{manifest.experiment!r}\n",
        )
    try:
        scale = get_scale(manifest.scale)
    except (KeyError, ValueError) as exc:
        parser.exit(2, f"repro runs retry: {exc}\n")
    pruned = prune_for_retry(store, manifest)
    if pruned:
        print(f"[retry] pruned {pruned} stale store object(s)")
    retriable = len(manifest.failed_units) + len(manifest.degraded_units)
    print(
        f"[retry] {run_id}: re-running {manifest.experiment} at scale "
        f"{manifest.scale} ({retriable} quarantined/degraded unit(s) to "
        "recompute)"
    )
    args.run_id = run_id
    return _run_campaign([manifest.experiment], scale, store, args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures of 'Empirical Evaluation of Circuit "
            "Approximations on Noisy Quantum Devices' (SC 2021)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "target",
        help=(
            "experiment name, 'all', 'list', 'devices', 'ablations', "
            "'campaign', or 'runs'"
        ),
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "quick", "paper"],
        help="experiment scale (default: REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write <name>.txt/<name>.json result files into",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        help=(
            "worker processes for pool building and sweeps "
            "(0 or 'auto' = all cores; default: REPRO_JOBS or 1)"
        ),
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help=(
            "run-store root for checkpointing/resume and 'runs' "
            "(default: REPRO_STORE)"
        ),
    )
    parser.add_argument(
        "--max-units",
        type=int,
        default=None,
        help=(
            "stop after computing this many new campaign units (exit code "
            f"{EXIT_INTERRUPTED}); requires a store"
        ),
    )
    parser.add_argument(
        "--run-id",
        default=None,
        help="explicit run id for the campaign manifest (default: generated)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault-injection spec, e.g. "
            "'seed=11,job=0.4,crash=0.5,store=0.6,degrade=1' "
            "(kinds: job, timeout, drift, crash, store; default: REPRO_FAULTS)"
        ),
    )
    args, extra = parser.parse_known_args(argv)

    if args.jobs is not None:
        from .parallel import effective_jobs

        try:
            effective_jobs(args.jobs)
        except ValueError as exc:
            parser.error(str(exc))
        os.environ["REPRO_JOBS"] = str(args.jobs)

    from .store import open_store

    store = open_store(args.store)

    if args.faults is not None:
        from .faults import FaultPlan

        try:
            plan = FaultPlan.parse(args.faults)
        except ValueError as exc:
            parser.error(str(exc))
        os.environ["REPRO_FAULTS"] = plan.format()
    if os.environ.get("REPRO_FAULTS") and store is not None:
        # Default the shared activation log next to the store so worker
        # processes append to the same file; truncate per invocation.
        from .faults import FAULTS_LOG_ENV

        if not os.environ.get(FAULTS_LOG_ENV):
            log_path = store.root / "faults.log"
            log_path.parent.mkdir(parents=True, exist_ok=True)
            log_path.write_text("")
            os.environ[FAULTS_LOG_ENV] = str(log_path)

    if args.target == "runs":
        if store is None:
            parser.exit(
                2, "repro runs: no store; pass --store DIR or set REPRO_STORE\n"
            )
        if extra and extra[0] == "retry":
            return _runs_retry(extra[1:], store, args, parser)
        from .store.registry import runs_main

        return runs_main(extra, store)

    if args.target != "campaign" and extra:
        parser.error(f"unrecognized arguments: {' '.join(extra)}")

    if args.max_units is not None and store is None:
        parser.error("--max-units requires a store (--store or REPRO_STORE)")

    if args.target == "list":
        for name, (_driver, desc) in EXPERIMENTS.items():
            print(f"{name:<8} {desc}")
        for name in ABLATIONS:
            print(f"ablations:{name}")
        return 0

    if args.target == "devices":
        from .noise import available_devices, get_device

        for name in available_devices():
            device = get_device(name)
            print(
                f"{name:<10} {device.num_qubits:>3} qubits, "
                f"avg CNOT err {device.average_cnot_error():.5f}, "
                f"avg readout err {device.average_readout_error():.5f}"
            )
        return 0

    scale = get_scale(args.scale)
    registry = _campaign_registry()

    if args.target == "campaign":
        if store is None:
            parser.exit(
                2,
                "repro campaign: no store; pass --store DIR or set "
                "REPRO_STORE\n",
            )
        targets = extra or list(EXPERIMENTS)
        unknown = [t for t in targets if t not in registry]
        if unknown:
            parser.error(
                f"unknown campaign target(s): {', '.join(unknown)}; "
                "run 'python -m repro list'"
            )
        return _run_campaign(targets, scale, store, args)

    if args.target == "ablations":
        if store is not None:
            return _run_campaign(
                [f"ablations:{name}" for name in ABLATIONS], scale, store, args
            )
        for name, driver in ABLATIONS.items():
            result = driver(scale)
            print(_render(result), end="\n\n")
            _write_outputs(args.output, f"ablations:{name}", result, scale)
        return 0

    if args.target == "all":
        if store is not None:
            return _run_campaign(list(EXPERIMENTS), scale, store, args)
        for name in EXPERIMENTS:
            print(_run_one(name, scale, args.output), end="\n\n")
        return 0

    if args.target in EXPERIMENTS:
        if store is not None:
            return _run_campaign([args.target], scale, store, args)
        print(_run_one(args.target, scale, args.output))
        return 0

    if args.target.startswith("ablations:"):
        key = args.target.split(":", 1)[1]
        if key in ABLATIONS:
            if store is not None:
                return _run_campaign([args.target], scale, store, args)
            result = ABLATIONS[key](scale)
            print(_render(result))
            _write_outputs(args.output, args.target, result, scale)
            return 0

    valid = ", ".join(
        ["list", "devices", "all", "ablations", "campaign", "runs"]
        + list(EXPERIMENTS)
        + [f"ablations:{name}" for name in ABLATIONS]
    )
    parser.exit(
        2,
        f"{parser.prog}: error: unknown target {args.target!r}; "
        f"valid targets: {valid}\n",
    )
    return 2  # pragma: no cover - parser.exit raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
