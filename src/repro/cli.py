"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig02 --scale smoke
    python -m repro all --scale quick --output results/
    python -m repro ablations
    python -m repro devices
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from . import experiments
from .experiments import get_scale
from .experiments.ablations import (
    mitigation_ablation,
    objective_ablation,
    selection_ablation,
    toffoli_suite_ablation,
    warm_start_ablation,
)

__all__ = ["main", "EXPERIMENTS"]


def _render(result) -> str:
    if isinstance(result, str):
        return result
    return result.rows()


#: name -> (driver, description)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (lambda scale: experiments.table1_rows(), "average CNOT errors per machine"),
    "fig02": (experiments.fig02, "3q TFIM, Toronto model (selected series)"),
    "fig03": (experiments.fig03, "3q TFIM, Toronto model (all circuits)"),
    "fig04": (experiments.fig04, "4q TFIM, Santiago model"),
    "fig05": (experiments.fig05, "3q Grover, Toronto model"),
    "fig06": (experiments.fig06, "4q Toffoli JS, Manhattan model"),
    "fig07": (experiments.fig07, "5q Toffoli JS, Manhattan model"),
    "fig07b": (experiments.fig07b, "3q Toffoli negative result"),
    "fig08": (experiments.fig08, "TFIM sweep, CNOT error 0"),
    "fig09": (experiments.fig09, "TFIM sweep, CNOT error 0.12"),
    "fig10": (experiments.fig10, "TFIM sweep, CNOT error 0.24"),
    "fig11": (experiments.fig11, "best-circuit depth vs error level"),
    "fig12": (experiments.fig12, "3q TFIM on emulated Manhattan hardware"),
    "fig13": (experiments.fig13, "4q TFIM on emulated Manhattan hardware"),
    "fig14": (experiments.fig14, "3q Grover on emulated Rome hardware"),
    "fig15": (experiments.fig15, "4q Toffoli on emulated Manhattan hardware"),
    "fig16": (lambda scale: experiments.fig16(), "Toronto calibration report"),
    "fig17": (experiments.fig17, "best manual mapping (Toronto hardware)"),
    "fig18": (experiments.fig18, "worst manual mapping (Toronto hardware)"),
    "fig19": (experiments.fig19, "automatic level-3 mapping"),
}

ABLATIONS: Dict[str, Callable] = {
    "selection": lambda scale: selection_ablation(scale),
    "objective": lambda scale: objective_ablation(),
    "warmstart": lambda scale: warm_start_ablation(),
    "suite": lambda scale: toffoli_suite_ablation(scale),
    "mitigation": lambda scale: mitigation_ablation(scale),
}


def _run_one(name: str, scale, output: Optional[Path]) -> str:
    driver, _desc = EXPERIMENTS[name]
    started = time.time()
    result = driver(scale)
    text = _render(result)
    elapsed = time.time() - started
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(text + "\n")
    return f"{text}\n[{name} completed in {elapsed:.1f}s]"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures of 'Empirical Evaluation of Circuit "
            "Approximations on Noisy Quantum Devices' (SC 2021)."
        ),
    )
    parser.add_argument(
        "target",
        help="experiment name, 'all', 'list', 'devices', or 'ablations'",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "quick", "paper"],
        help="experiment scale (default: REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write <name>.txt result files into",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        help=(
            "worker processes for pool building and sweeps "
            "(0 or 'auto' = all cores; default: REPRO_JOBS or 1)"
        ),
    )
    args = parser.parse_args(argv)

    if args.jobs is not None:
        from .parallel import effective_jobs

        try:
            effective_jobs(args.jobs)
        except ValueError as exc:
            parser.error(str(exc))
        os.environ["REPRO_JOBS"] = str(args.jobs)

    if args.target == "list":
        for name, (_driver, desc) in EXPERIMENTS.items():
            print(f"{name:<8} {desc}")
        for name in ABLATIONS:
            print(f"ablations:{name}")
        return 0

    if args.target == "devices":
        from .noise import available_devices, get_device

        for name in available_devices():
            device = get_device(name)
            print(
                f"{name:<10} {device.num_qubits:>3} qubits, "
                f"avg CNOT err {device.average_cnot_error():.5f}, "
                f"avg readout err {device.average_readout_error():.5f}"
            )
        return 0

    scale = get_scale(args.scale)

    if args.target == "ablations":
        for name, driver in ABLATIONS.items():
            result = driver(scale)
            text = _render(result)
            print(text, end="\n\n")
            if args.output is not None:
                args.output.mkdir(parents=True, exist_ok=True)
                (args.output / f"ablation_{name}.txt").write_text(text + "\n")
        return 0

    if args.target == "all":
        for name in EXPERIMENTS:
            print(_run_one(name, scale, args.output), end="\n\n")
        return 0

    if args.target in EXPERIMENTS:
        print(_run_one(args.target, scale, args.output))
        return 0

    if args.target.startswith("ablations:"):
        key = args.target.split(":", 1)[1]
        if key in ABLATIONS:
            print(_render(ABLATIONS[key](scale)))
            return 0

    parser.error(
        f"unknown target {args.target!r}; run 'python -m repro list'"
    )
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
